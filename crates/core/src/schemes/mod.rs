//! The certification schemes of the paper.
//!
//! * [`tree_base`] — the spanning-tree certificate component (root id,
//!   parent pointer, hop distance, subtree count) used since the early
//!   self-stabilization literature; substrate of several schemes here.
//! * [`path`] — the Section 2 warm-up: certifying that the network is a
//!   path.
//! * [`spanning_tree`] — standalone scheme exposing the tree component.
//! * [`path_outerplanar`] — Lemma 2: the 1-round PLS for
//!   path-outerplanarity with `O(log n)`-bit certificates (Algorithm 1).
//! * [`planarity`] — Theorem 1: the 1-round PLS for planarity with
//!   `O(log n)`-bit certificates (Algorithm 2).
//! * [`non_planarity`] — the folklore scheme certifying the presence of
//!   a subdivided `K5`/`K3,3` (Section 2).
//! * [`bipartite`] / [`tree_class`] — further §2-style warm-ups (1-bit
//!   2-coloring; trees via the shared substrate).
//! * [`universal`] — the `O(m log n)`-bit universal baseline (ship the
//!   whole graph to everyone).

pub mod bipartite;
pub mod non_planarity;
pub mod path;
pub mod path_outerplanar;
pub mod planarity;
pub mod spanning_tree;
pub mod tree_base;
pub mod tree_class;
pub mod universal;
