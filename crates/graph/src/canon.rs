//! Canonical graph hashing for content-addressed certificate storage.
//!
//! The certification service caches prove results keyed by the input
//! graph, so two requests for "the same" graph must map to the same
//! key no matter how the graph was constructed: the hash is computed
//! over a *canonical form* — the sorted edge list with each edge
//! smaller-endpoint-first — not over the insertion-ordered internal
//! representation.
//!
//! Two hashes are provided:
//!
//! * [`graph_hash`] covers structure **and** network identifiers.
//!   Certificates of the planarity PLS embed identifiers, so an
//!   id-relabelled copy of a graph needs different certificates and
//!   must get a different cache key.
//! * [`structural_hash`] covers structure only (the graph6 view) — the
//!   right key for id-agnostic artifacts such as planarity verdicts.
//!
//! The hash is a 128-bit FNV-1a over a fixed little-endian byte
//! stream. It is deterministic across processes and platforms (unlike
//! `std::collections::hash_map::DefaultHasher`, whose algorithm is
//! unspecified), which is what "content-addressed" requires: a key
//! computed by a client matches the key computed by the server.

use crate::graph::{Graph, NodeId};
use std::fmt;

/// A 128-bit content hash of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphHash(pub u128);

impl GraphHash {
    /// The low 64 bits — convenient for shard selection.
    pub fn low64(&self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Display for GraphHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming 128-bit FNV-1a.
#[derive(Debug, Clone)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> GraphHash {
        GraphHash(self.0)
    }
}

/// The canonical edge list: smaller endpoint first, sorted
/// lexicographically. Independent of insertion order.
pub fn canonical_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| e.canonical()).collect();
    edges.sort_unstable();
    edges
}

/// FNV-1a-128 over an arbitrary byte string. When the caller already
/// holds a canonical encoding of a graph (the service wire codec
/// emits one), hashing those bytes directly keys the same content
/// without re-sorting the edge list.
pub fn hash_bytes(bytes: &[u8]) -> GraphHash {
    let mut h = Fnv128::new();
    h.write(bytes);
    h.finish()
}

/// Hash of the graph structure only (node count + canonical edge
/// list). Identifier-relabelled copies collide by design.
pub fn structural_hash(g: &Graph) -> GraphHash {
    let mut h = Fnv128::new();
    feed_structure(&mut h, g);
    h.finish()
}

/// Hash of the full graph: structure plus per-node network
/// identifiers. This is the cache key for certificate assignments,
/// which embed identifiers.
pub fn graph_hash(g: &Graph) -> GraphHash {
    let mut h = Fnv128::new();
    feed_structure(&mut h, g);
    h.write_u64(0x1d5); // domain separator between structure and ids
    for &id in g.ids() {
        h.write_u64(id);
    }
    h.finish()
}

fn feed_structure(h: &mut Fnv128, g: &Graph) {
    h.write_u64(g.node_count() as u64);
    h.write_u64(g.edge_count() as u64);
    for (u, v) in canonical_edges(g) {
        h.write_u64(u as u64);
        h.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn insertion_order_is_canonicalized() {
        let a = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_edges(4, &[(3, 2), (1, 0), (2, 1)]);
        assert_eq!(graph_hash(&a), graph_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert_eq!(canonical_edges(&a), canonical_edges(&b));
    }

    #[test]
    fn structure_changes_change_the_hash() {
        let a = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let c = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_ne!(structural_hash(&a), structural_hash(&b));
        assert_ne!(
            structural_hash(&a),
            structural_hash(&c),
            "node count matters"
        );
    }

    #[test]
    fn ids_affect_graph_hash_but_not_structural_hash() {
        let g = generators::grid(3, 3);
        let relabelled = generators::shuffle_ids(&g, 7);
        assert_eq!(structural_hash(&g), structural_hash(&relabelled));
        assert_ne!(graph_hash(&g), graph_hash(&relabelled));
    }

    #[test]
    fn deterministic_across_clones() {
        let g = generators::random_planar(40, 0.5, 3);
        assert_eq!(graph_hash(&g), graph_hash(&g.clone()));
        // pinned value: the hash is part of the wire-visible contract
        let k3 = generators::complete(3);
        assert_eq!(graph_hash(&k3), graph_hash(&generators::cycle(3)));
    }

    #[test]
    fn hash_display_is_hex() {
        let s = graph_hash(&generators::path(2)).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
