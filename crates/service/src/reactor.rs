//! The readiness-driven event-loop front end (`dpc serve
//! --event-loop`, the default where epoll exists).
//!
//! ```text
//!                      ┌───────────────── reactor loop ─────────────────┐
//!   TCP ──▶ listener ──▶ accept → register                              │
//!                      │    epoll_wait ──▶ per-connection state machine │
//!                      │      read ▶ decode ▶ try_push ──────────┐      │
//!                      │      ▲                                  ▼      │
//!                      │      │ eventfd wake            bounded queue   │
//!                      │  completion inbox ◀── reply ──── worker pool   │
//!                      │      │                          (threads,      │
//!                      │      ▼                           BatchRunner)  │
//!                      │  reorder by seq ▶ batched writev flush ──▶ TCP │
//!                      └────────────────────────────────────────────────┘
//! ```
//!
//! One loop (or a small `--event-loops N` set, loop 0 owning the
//! listener and dealing new connections round-robin) multiplexes
//! every connection over a single [`epoll::Epoll`] set. Proving work
//! never runs on the loop: decoded requests go to the same bounded
//! [`JobQueue`](crate::server) the threaded front end uses, and
//! workers hand finished `(conn, seq, body)` triples to the loop's
//! [`Inbox`], whose eventfd waker is registered in the same epoll
//! set — the wakeup path from the worker pool is just another
//! readable fd.
//!
//! Per-connection state machine (all stages explicit, no thread
//! parks):
//!
//! * **read** — drain the socket into `rbuf` until `EAGAIN` (bounded
//!   per wakeup so one firehose cannot starve its neighbors);
//! * **decode** — peel every complete length-prefixed frame: this is
//!   where pipelining falls out, a single read can yield many
//!   requests, each tagged with the connection's next sequence
//!   number;
//! * **respond** — completions land in a `seq → body` reorder map
//!   and move to the write queue strictly in sequence order, exactly
//!   the contract the threaded writer enforces;
//! * **write** — everything ready is coalesced into one vectored
//!   (`writev`-style) flush per wakeup; a short write arms
//!   `EPOLLOUT` and the flush resumes when the socket drains.
//!
//! Back-pressure: when the job queue is full the decoded job parks in
//! the connection's `stalled` slot and the loop drops read interest
//! for that connection — bytes pile up in the kernel socket buffer
//! and TCP flow control pushes back on the client, mirroring the
//! blocking `push` of the threaded front end. Idle connections
//! (no bytes, no responses owed) are reaped after
//! [`ServeConfig::idle_timeout`](crate::ServeConfig).

use crate::metrics::{Metrics, Trace};
use crate::server::{
    count_request, duration_us, trace_written, ChunkSessions, ChunkStep, InteractiveSessions,
    InteractiveStep, Job, ReplyTo, Shared, NEXT_CONN_ID,
};
use crate::wire::{self, Request, Response, WireError};
use epoll::{Epoll, Events, Waker, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Read granularity, and the per-wakeup read bound (one connection
/// may consume at most `READ_BURST` chunks per readiness event; the
/// level-triggered set re-reports it immediately if more is pending).
const READ_CHUNK: usize = 16 * 1024;
const READ_BURST: usize = 4;

/// Max frames folded into one vectored flush call.
const MAX_FLUSH_SLICES: usize = 64;

/// Events drained per `epoll_wait`.
const WAIT_BATCH: usize = 1024;

/// One finished response on its way back to a connection.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) body: Vec<u8>,
    /// When the worker finished building the body (reorder-wait
    /// starts here).
    pub(crate) finished: Instant,
    pub(crate) trace: Option<Trace>,
}

/// The worker → reactor handoff: completions (and, between loops,
/// freshly accepted sockets) guarded by a mutex, plus the eventfd
/// that makes the owning loop's `epoll_wait` return.
pub(crate) struct Inbox {
    waker: Waker,
    completions: Mutex<Vec<Completion>>,
    incoming: Mutex<Vec<TcpStream>>,
    /// Counts eventfd wakeups; Arc'd (not reached through `Shared`)
    /// because jobs hold the inbox while `Shared` holds the queue.
    metrics: Arc<Metrics>,
}

impl Inbox {
    fn new(metrics: Arc<Metrics>) -> io::Result<Inbox> {
        Ok(Inbox {
            waker: Waker::new()?,
            completions: Mutex::new(Vec::new()),
            incoming: Mutex::new(Vec::new()),
            metrics,
        })
    }

    /// Queues a finished response and wakes the loop (only the first
    /// completion after a drain pays the eventfd write — the waker
    /// stays readable until drained, so later sends just append).
    pub(crate) fn send(&self, conn: u64, seq: u64, body: Vec<u8>, trace: Option<Trace>) {
        let mut q = self.completions.lock().expect("inbox poisoned");
        let was_empty = q.is_empty();
        q.push(Completion {
            conn,
            seq,
            body,
            finished: Instant::now(),
            trace,
        });
        drop(q);
        if was_empty {
            self.metrics.inbox_wakeups.fetch_add(1, Ordering::Relaxed);
            let _ = self.waker.wake();
        }
    }

    /// Makes the owning loop spin one iteration (shutdown nudge).
    pub(crate) fn wake(&self) {
        let _ = self.waker.wake();
    }

    /// Hands an accepted socket to the owning loop (cross-loop deal
    /// from the listener-owning loop 0).
    fn hand_off(&self, stream: TcpStream) {
        self.incoming.lock().expect("inbox poisoned").push(stream);
        let _ = self.waker.wake();
    }
}

/// What [`spawn`] hands back: one join handle and one inbox per loop.
pub(crate) type ReactorHandles = (Vec<JoinHandle<()>>, Vec<Arc<Inbox>>);

/// Starts `cfg.event_loops` reactor threads sharing one nonblocking
/// listener (owned by loop 0). Fails — before any thread spawns — on
/// targets without epoll, which the caller treats as "use the
/// threaded front end".
pub(crate) fn spawn(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<ReactorHandles> {
    listener.set_nonblocking(true)?;
    let n = shared.cfg.event_loops.max(1);
    let mut epolls = Vec::with_capacity(n);
    let mut inboxes = Vec::with_capacity(n);
    for _ in 0..n {
        let epoll = Epoll::new()?;
        let inbox = Arc::new(Inbox::new(Arc::clone(&shared.metrics))?);
        inbox.waker.register(&epoll, TOKEN_WAKER)?;
        epolls.push(epoll);
        inboxes.push(inbox);
    }
    epolls[0].add(&listener, TOKEN_LISTENER, EPOLLIN)?;
    let mut listener = Some(listener);
    let threads = epolls
        .into_iter()
        .enumerate()
        .map(|(idx, epoll)| {
            let lp = EventLoop {
                idx,
                epoll,
                listener: listener.take(),
                inboxes: inboxes.clone(),
                shared: Arc::clone(shared),
                conns: HashMap::new(),
                stalled: Vec::new(),
                next_token: FIRST_CONN_TOKEN,
                dealt: 0,
            };
            std::thread::Builder::new()
                .name(format!("dpc-reactor-{idx}"))
                .spawn(move || lp.run())
                .expect("spawn reactor loop")
        })
        .collect();
    Ok((threads, inboxes))
}

/// Why a connection is being torn down (metrics accounting differs).
enum Close {
    /// Clean or errored teardown.
    Gone,
    /// Reaped by the idle timeout.
    Idle,
}

/// A frame in the write queue, carrying what its trace still needs:
/// when it became write-eligible (write-flush starts there) and the
/// reorder-wait it already paid.
struct OutFrame {
    bytes: Vec<u8>,
    queued_at: Instant,
    reorder_us: u64,
    trace: Option<Trace>,
}

struct Conn {
    stream: TcpStream,
    /// Trace-id prefix: process-wide connection id (epoll tokens are
    /// per-loop and collide across loops, so they cannot be it).
    id: u64,
    /// Unparsed inbound bytes (`roff..` is live).
    rbuf: Vec<u8>,
    roff: usize,
    /// Sequence number the next decoded request gets.
    next_seq: u64,
    /// Sequence number the next written response must carry.
    next_write: u64,
    /// Finished responses that arrived out of order.
    pending: HashMap<u64, Completion>,
    /// Encoded frames ready to write (front may be partially sent).
    wqueue: VecDeque<OutFrame>,
    woff: usize,
    /// Decoded job waiting for queue space (connection stops reading
    /// while set — kernel-buffer back-pressure).
    stalled: Option<Job>,
    /// Requests decoded whose responses are not yet in `wqueue`.
    awaiting: u64,
    /// Read side saw EOF: no new requests, drain what is owed.
    peer_closed: bool,
    /// Fatal framing error: answer what we can, then drop.
    closing: bool,
    /// Interest bits currently registered in the epoll set.
    interest: u32,
    last_activity: Instant,
    /// Chunked-upload reassembly state (at most one open session).
    chunks: ChunkSessions,
    /// Interactive-verification state (at most one open session).
    interactive: InteractiveSessions,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            rbuf: Vec::new(),
            roff: 0,
            next_seq: 0,
            next_write: 0,
            pending: HashMap::new(),
            wqueue: VecDeque::new(),
            woff: 0,
            stalled: None,
            awaiting: 0,
            peer_closed: false,
            closing: false,
            interest: EPOLLIN | EPOLLRDHUP,
            last_activity: Instant::now(),
            chunks: ChunkSessions::default(),
            interactive: InteractiveSessions::default(),
        }
    }

    /// Files one finished response and promotes every response that
    /// is now in sequence order into the write queue — the same
    /// reorder-by-seq contract as the threaded connection writer.
    /// Promotion is where a response becomes write-eligible, so the
    /// reorder-wait stage closes here.
    fn deliver(&mut self, c: Completion, metrics: &Metrics) {
        self.last_activity = Instant::now();
        self.pending.insert(c.seq, c);
        while let Some(c) = self.pending.remove(&self.next_write) {
            debug_assert!(c.body.len() <= wire::MAX_FRAME_BYTES);
            let now = Instant::now();
            let reorder = now.saturating_duration_since(c.finished);
            metrics.stages.reorder_wait.record(reorder);
            let mut bytes = Vec::with_capacity(4 + c.body.len());
            bytes.extend_from_slice(&(c.body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&c.body);
            self.wqueue.push_back(OutFrame {
                bytes,
                queued_at: now,
                reorder_us: duration_us(reorder),
                trace: c.trace,
            });
            self.next_write += 1;
            self.awaiting -= 1;
        }
    }

    /// One vectored flush: every queued frame (up to
    /// [`MAX_FLUSH_SLICES`] per call) rides a single `writev`-style
    /// write. Returns without error on `EAGAIN`; the caller arms
    /// `EPOLLOUT` if frames remain. A frame fully handed to the
    /// kernel closes its write-flush stage (and its whole trace).
    fn flush(&mut self, shared: &Shared) -> io::Result<()> {
        while !self.wqueue.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.wqueue.len().min(MAX_FLUSH_SLICES));
            let mut frames = self.wqueue.iter();
            let front = frames.next().expect("non-empty queue");
            slices.push(IoSlice::new(&front.bytes[self.woff..]));
            slices.extend(
                frames
                    .take(MAX_FLUSH_SLICES - 1)
                    .map(|f| IoSlice::new(&f.bytes)),
            );
            match self.stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(mut n) => {
                    self.last_activity = Instant::now();
                    while n > 0 {
                        let left = self
                            .wqueue
                            .front()
                            .expect("bytes imply a frame")
                            .bytes
                            .len()
                            - self.woff;
                        if n >= left {
                            let fr = self.wqueue.pop_front().expect("bytes imply a frame");
                            let write_flush = fr.queued_at.elapsed();
                            shared.metrics.stages.write_flush.record(write_flush);
                            if let Some(trace) = fr.trace {
                                trace_written(
                                    shared,
                                    &trace,
                                    fr.reorder_us,
                                    duration_us(write_flush),
                                );
                            }
                            self.woff = 0;
                            n -= left;
                        } else {
                            self.woff += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Everything owed has been written and no more can arrive.
    fn drained(&self) -> bool {
        (self.peer_closed || self.closing)
            && self.awaiting == 0
            && self.wqueue.is_empty()
            && self.stalled.is_none()
    }

    /// The interest bits this connection's state wants.
    fn desired_interest(&self) -> u32 {
        let mut want = EPOLLRDHUP;
        if !self.peer_closed && !self.closing && self.stalled.is_none() {
            want |= EPOLLIN;
        }
        if !self.wqueue.is_empty() {
            want |= EPOLLOUT;
        }
        want
    }
}

struct EventLoop {
    idx: usize,
    epoll: Epoll,
    /// Loop 0 owns the listener; the others accept nothing.
    listener: Option<TcpListener>,
    /// Every loop's inbox; `inboxes[idx]` is ours.
    inboxes: Vec<Arc<Inbox>>,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    /// Tokens of connections holding a stalled (queue-full) job.
    stalled: Vec<u64>,
    next_token: u64,
    /// Round-robin position for dealing accepted sockets to loops.
    dealt: u64,
}

impl EventLoop {
    fn run(mut self) {
        let idle = self.shared.cfg.idle_timeout;
        // the wait timeout bounds three latencies: shutdown response,
        // stalled-job retry when *other* loops freed queue space, and
        // idle-scan resolution
        let tick = if idle.is_zero() {
            Duration::from_millis(500)
        } else {
            (idle / 4).clamp(Duration::from_millis(10), Duration::from_millis(500))
        };
        let mut events = Events::with_capacity(WAIT_BATCH);
        let mut last_scan = Instant::now();
        // connections touched this wakeup, flushed together at the end
        let mut dirty: Vec<u64> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                self.drain_for_shutdown();
                return;
            }
            if self.epoll.wait(&mut events, Some(tick)).is_err() {
                // a broken epoll fd cannot make progress; re-check
                // shutdown at tick cadence instead of spinning
                std::thread::sleep(tick);
                continue;
            }
            dirty.clear();
            let mut accept_ready = false;
            let mut wake_ready = false;
            for ev in events.iter() {
                match ev.token {
                    TOKEN_WAKER => wake_ready = true,
                    TOKEN_LISTENER => accept_ready = true,
                    token => {
                        if ev.readable() && !self.on_readable(token) {
                            self.close(token, Close::Gone);
                            continue;
                        }
                        if self.conns.contains_key(&token) {
                            dirty.push(token);
                        }
                    }
                }
            }
            if wake_ready {
                self.inboxes[self.idx].waker.drain();
            }
            if accept_ready {
                self.on_accept();
            }
            // drain the inbox every pass (not only on a waker event:
            // a completion racing the drain just means one spurious
            // extra wakeup later, never a lost response)
            self.adopt_incoming();
            self.route_completions(&mut dirty);
            self.retry_stalled(&mut dirty);
            dirty.sort_unstable();
            dirty.dedup();
            for token in dirty.drain(..) {
                self.finalize(token);
            }
            if last_scan.elapsed() >= tick {
                last_scan = Instant::now();
                self.scan_idle(idle);
            }
        }
    }

    /// Accepts until `EAGAIN`, dealing sockets round-robin across
    /// loops.
    fn on_accept(&mut self) {
        loop {
            let accepted = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    let m = &self.shared.metrics;
                    m.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    m.conns_open.fetch_add(1, Ordering::Relaxed);
                    let target = (self.dealt % self.inboxes.len() as u64) as usize;
                    self.dealt += 1;
                    if target == self.idx {
                        self.register_conn(stream);
                    } else {
                        self.inboxes[target].hand_off(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.shared
                        .metrics
                        .accept_eagain
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // transient accept failure (e.g. fd exhaustion):
                    // yield this burst, the level-triggered listener
                    // re-reports pending connections next wait
                    return;
                }
            }
        }
    }

    /// Adopts sockets dealt to this loop by the accepting loop.
    fn adopt_incoming(&mut self) {
        let incoming = std::mem::take(
            &mut *self.inboxes[self.idx]
                .incoming
                .lock()
                .expect("inbox poisoned"),
        );
        for stream in incoming {
            self.register_conn(stream);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if stream.set_nonblocking(true).is_err()
            || self
                .epoll
                .add(&stream, token, EPOLLIN | EPOLLRDHUP)
                .is_err()
        {
            self.shared
                .metrics
                .conns_open
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.conns.insert(token, Conn::new(stream));
    }

    /// Routes finished responses to their connections' reorder maps.
    fn route_completions(&mut self, dirty: &mut Vec<u64>) {
        let completions = std::mem::take(
            &mut *self.inboxes[self.idx]
                .completions
                .lock()
                .expect("inbox poisoned"),
        );
        for c in completions {
            // a connection that died with requests in flight simply
            // drops its late completions here
            if let Some(conn) = self.conns.get_mut(&c.conn) {
                let token = c.conn;
                conn.deliver(c, &self.shared.metrics);
                dirty.push(token);
            }
        }
    }

    /// Reads until `EAGAIN` (bounded), then decodes and dispatches
    /// every complete frame. `false` means the connection broke.
    fn on_readable(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        if conn.peer_closed || conn.closing || conn.stalled.is_some() {
            return true;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut bursts = 0;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    bursts += 1;
                    if bursts >= READ_BURST {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        self.decode_frames(token);
        true
    }

    /// Peels complete frames off the read buffer: each one becomes a
    /// sequence-numbered job for the worker queue (or an immediate
    /// error response). Stops at a partial frame, a stall, or a
    /// framing error. This loop *is* request pipelining — nothing
    /// waits for a response before the next frame is decoded.
    fn decode_frames(&mut self, token: u64) {
        let shared = Arc::clone(&self.shared);
        let inbox = Arc::clone(&self.inboxes[self.idx]);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.stalled.is_none() && !conn.closing {
            let avail = conn.rbuf.len() - conn.roff;
            if avail < 4 {
                break;
            }
            let header: [u8; 4] = conn.rbuf[conn.roff..conn.roff + 4]
                .try_into()
                .expect("4 bytes");
            let len = u32::from_le_bytes(header) as usize;
            if len > wire::MAX_FRAME_BYTES {
                // same contract as the threaded reader: answer once,
                // then drop — the stream cannot be resynchronized
                let msg = WireError::Protocol(format!("frame of {len} bytes exceeds the limit"))
                    .to_string();
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.awaiting += 1;
                conn.deliver(
                    Completion {
                        conn: token,
                        seq,
                        body: Response::Error(msg).encode(),
                        finished: Instant::now(),
                        trace: None,
                    },
                    &shared.metrics,
                );
                conn.closing = true;
                break;
            }
            if avail < 4 + len {
                break;
            }
            let body = &conn.rbuf[conn.roff + 4..conn.roff + 4 + len];
            let seq = conn.next_seq;
            let decode_start = Instant::now();
            match Request::decode(body) {
                Ok(req) => {
                    // capture the wire kind before the chunk filter
                    // consumes the request: a certify born from a
                    // GraphChunkEnd keeps "chunkend" in its trace
                    let kind = req.kind_tag();
                    let scheme = req.scheme().map(|s| s.0).unwrap_or(0);
                    let req = match conn.chunks.step(req, &shared.metrics) {
                        ChunkStep::Reply(resp) => {
                            // chunk acks and chunk protocol errors are
                            // answered on the loop, never queued; they
                            // still occupy a sequence slot so the
                            // reorder contract holds
                            shared.metrics.stats.fetch_add(1, Ordering::Relaxed);
                            conn.next_seq += 1;
                            conn.awaiting += 1;
                            conn.roff += 4 + len;
                            conn.deliver(
                                Completion {
                                    conn: token,
                                    seq,
                                    body: resp.encode(),
                                    finished: Instant::now(),
                                    trace: None,
                                },
                                &shared.metrics,
                            );
                            continue;
                        }
                        ChunkStep::Pass(req) => match conn.interactive.step(req, &shared) {
                            // interactive rounds are answered on the
                            // loop as well, so the session transcript
                            // is byte-identical to the threaded front
                            // end's by construction
                            InteractiveStep::Reply(resp) => {
                                conn.next_seq += 1;
                                conn.awaiting += 1;
                                conn.roff += 4 + len;
                                conn.deliver(
                                    Completion {
                                        conn: token,
                                        seq,
                                        body: resp.encode(),
                                        finished: Instant::now(),
                                        trace: None,
                                    },
                                    &shared.metrics,
                                );
                                continue;
                            }
                            InteractiveStep::Pass(req) => {
                                count_request(&shared.metrics, &req);
                                req
                            }
                        },
                        ChunkStep::Certify {
                            graph,
                            bypass_cache,
                            scheme,
                        } => {
                            shared.metrics.certify.fetch_add(1, Ordering::Relaxed);
                            Request::Certify {
                                graph,
                                bypass_cache,
                                cached_only: false,
                                summary: true,
                                scheme,
                            }
                        }
                    };
                    let read_decode = decode_start.elapsed();
                    shared.metrics.stages.read_decode.record(read_decode);
                    let mut trace = Trace::new((conn.id << 32) | (seq & 0xffff_ffff), kind, scheme);
                    trace.read_decode_us = duration_us(read_decode);
                    let received = Instant::now();
                    let job = Job {
                        req,
                        seq,
                        reply: ReplyTo::Reactor {
                            conn: token,
                            inbox: Arc::clone(&inbox),
                        },
                        received,
                        dequeued: received,
                        trace,
                    };
                    conn.next_seq += 1;
                    conn.awaiting += 1;
                    conn.roff += 4 + len;
                    if let Err(job) = shared.queue.try_push(job) {
                        // queue full: park the job, stop reading; the
                        // retry runs on completion wakeups and ticks
                        let m = &shared.metrics;
                        m.queue_full_stalls.fetch_add(1, Ordering::Relaxed);
                        m.read_interest_drops.fetch_add(1, Ordering::Relaxed);
                        conn.stalled = Some(job);
                        self.stalled.push(token);
                    }
                }
                Err(e) => {
                    // request-level decode error: a normal answer on
                    // a healthy connection (framing is intact)
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    conn.next_seq += 1;
                    conn.awaiting += 1;
                    conn.roff += 4 + len;
                    conn.deliver(
                        Completion {
                            conn: token,
                            seq,
                            body: Response::Error(e.to_string()).encode(),
                            finished: Instant::now(),
                            trace: None,
                        },
                        &shared.metrics,
                    );
                }
            }
        }
        if conn.roff > 0 {
            conn.rbuf.drain(..conn.roff);
            conn.roff = 0;
        }
    }

    /// Re-offers stalled jobs to the queue; on success the connection
    /// resumes decoding right where it stopped.
    fn retry_stalled(&mut self, dirty: &mut Vec<u64>) {
        if self.stalled.is_empty() {
            return;
        }
        let candidates = std::mem::take(&mut self.stalled);
        for token in candidates {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(job) = conn.stalled.take() else {
                continue;
            };
            match self.shared.queue.try_push(job) {
                Ok(()) => {
                    self.shared
                        .metrics
                        .read_interest_restores
                        .fetch_add(1, Ordering::Relaxed);
                    self.decode_frames(token);
                    dirty.push(token);
                }
                Err(job) => {
                    conn.stalled = Some(job);
                    self.stalled.push(token);
                }
            }
        }
    }

    /// End-of-wakeup settling: one batched flush, interest re-arm,
    /// and teardown once a finished connection has drained.
    fn finalize(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.flush(&self.shared).is_err() {
            self.close(token, Close::Gone);
            return;
        }
        if conn.drained() {
            self.close(token, Close::Gone);
            return;
        }
        let want = conn.desired_interest();
        if want != conn.interest && self.epoll.modify(&conn.stream, token, want).is_ok() {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = want;
            }
        }
    }

    /// Reaps connections idle past the timeout. A connection with a
    /// response still owed (in-flight prove or queued write) is
    /// working, not idle — only truly quiet sockets are reaped, so a
    /// prove outlasting the timeout cannot kill its own client.
    fn scan_idle(&mut self, idle: Duration) {
        if idle.is_zero() {
            return;
        }
        let now = Instant::now();
        let reap: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.awaiting == 0
                    && c.stalled.is_none()
                    && c.wqueue.is_empty()
                    && now.duration_since(c.last_activity) >= idle
            })
            .map(|(&t, _)| t)
            .collect();
        for token in reap {
            self.close(token, Close::Idle);
        }
    }

    fn close(&mut self, token: u64, why: Close) {
        if let Some(mut conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(&conn.stream);
            let m = &self.shared.metrics;
            conn.chunks.abandon(m);
            conn.interactive.abandon();
            m.conns_open.fetch_sub(1, Ordering::Relaxed);
            if matches!(why, Close::Idle) {
                m.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stalled.retain(|&t| t != token);
    }

    /// Best-effort final delivery at shutdown: responses already
    /// finished by workers get one last routed flush before the fds
    /// drop (mirrors the threaded writer draining its channel).
    fn drain_for_shutdown(&mut self) {
        let mut dirty = Vec::new();
        self.route_completions(&mut dirty);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = conn.flush(&self.shared);
            }
        }
    }
}
