//! Polynomial fingerprints over the Mersenne prime `p = 2^61 − 1`.
//!
//! `fingerprint(xs, r) = Σ xs[i] · r^i mod p` — two different sequences
//! evaluate equally at a random `r` with probability at most
//! `len / p` (Schwartz–Zippel), the standard equality-testing tool of
//! randomized distributed proofs.

/// The Mersenne prime `2^61 − 1`.
pub const P: u64 = (1 << 61) - 1;

/// Reduction of a 128-bit product modulo `2^61 − 1`.
fn reduce(x: u128) -> u64 {
    let lo = (x & P as u128) as u64;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= P {
        s -= P;
    }
    s
}

/// Modular multiplication.
pub fn mul(a: u64, b: u64) -> u64 {
    reduce(a as u128 * b as u128)
}

/// Modular addition.
pub fn add(a: u64, b: u64) -> u64 {
    let s = a % P + b % P;
    if s >= P {
        s - P
    } else {
        s
    }
}

/// Horner evaluation of `Σ xs[i] · r^i mod p`.
pub fn fingerprint(xs: &[u64], r: u64) -> u64 {
    let mut acc = 0u64;
    for &x in xs.iter().rev() {
        acc = add(mul(acc, r), x % P);
    }
    acc
}

/// Product fingerprint `Π (r − xs[i]) mod p` — multiset equality.
pub fn product_fingerprint(xs: &[u64], r: u64) -> u64 {
    let r = r % P;
    xs.iter().fold(1u64, |acc, &x| {
        let term = if r >= x % P { r - x % P } else { r + P - x % P };
        mul(acc, term)
    })
}

/// A tiny splittable hash for deriving per-node challenges from the
/// public coin (`splitmix64` finalizer).
pub fn derive(r: u64, salt: u64) -> u64 {
    let mut z = r ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(mul(2, P / 2 + 1), 1); // 2 * (p+1)/2 = p + 1 ≡ 1
        assert_eq!(mul(P - 1, P - 1), 1); // (-1)^2
    }

    #[test]
    fn fingerprint_distinguishes_sequences() {
        let a = [1u64, 2, 3, 4];
        let b = [1u64, 2, 4, 3];
        let mut collisions = 0;
        for r in 1..200u64 {
            if fingerprint(&a, r) == fingerprint(&b, r) {
                collisions += 1;
            }
        }
        assert!(collisions <= 4, "degree-4 polynomials agree on ≤ 4 points");
        assert_eq!(fingerprint(&a, 7), fingerprint(&a, 7));
    }

    #[test]
    fn product_fingerprint_is_order_invariant() {
        let a = [10u64, 20, 30];
        let b = [30u64, 10, 20];
        for r in [3u64, 1234, 99999] {
            assert_eq!(product_fingerprint(&a, r), product_fingerprint(&b, r));
        }
        let c = [10u64, 20, 31];
        let differs = (1..100u64)
            .filter(|&r| product_fingerprint(&a, r) != product_fingerprint(&c, r))
            .count();
        assert!(differs >= 97);
    }

    #[test]
    fn horner_matches_naive() {
        let xs = [5u64, 0, 7, 11];
        let r = 1_000_003u64;
        let mut naive = 0u64;
        let mut pw = 1u64;
        for &x in &xs {
            naive = add(naive, mul(x, pw));
            pw = mul(pw, r);
        }
        assert_eq!(fingerprint(&xs, r), naive);
    }

    #[test]
    fn derive_spreads() {
        let mut seen = std::collections::HashSet::new();
        for salt in 0..1000u64 {
            seen.insert(derive(42, salt));
        }
        assert_eq!(seen.len(), 1000, "no collisions on small salt range");
    }
}
