//! Theorem 1: the 1-round proof-labeling scheme for **planarity** with
//! `O(log n)`-bit certificates — the paper's main contribution
//! (Algorithm 2).
//!
//! # Prover (Section 3.3)
//!
//! On a planar graph the prover computes a combinatorial embedding (our
//! left-right test), a spanning tree `T`, the DFS mapping `f` and the
//! path-outerplanar graph `G_{T,f}` (Lemma 3, [`dpc_planar::tembed`]).
//! It then distributes, per **edge** of `G`:
//!
//! * for a tree edge `{x, c}` (`c` the child): the interval labels of the
//!   four spine positions `fmin(c)−1, fmin(c), fmax(c), fmax(c)+1` — the
//!   two spine edges the tree edge maps to;
//! * for a cotree edge: its chord `{i, j}` with the labels `I(i), I(j)`.
//!
//! Each edge-certificate is stored at one endpoint, chosen by a
//! 5-degeneracy ordering so every node stores **at most five** of them;
//! the other endpoint hears it in the verification round. Each node also
//! carries the spanning-tree component and its own `fmin/fmax`.
//!
//! # Verifier (Algorithm 2)
//!
//! Phase 1 reconstructs the copies `f⁻¹(x)` and their `G_{T,f}`
//! neighborhoods from the certificates heard in one round. Phase 2
//! checks the spanning tree (root agreement, distances, subtree counts)
//! and that `f` is a DFS mapping (the `fmin/fmax` recurrences of §3.3).
//! Phase 3 simulates Algorithm 1 ([`crate::alg1`]) at every copy; the
//! root simulates the two virtual spine ends `0` and `2n`.
//!
//! Soundness: all nodes accepting forces `T` spanning, `f` a DFS mapping
//! and `G_{T,f}` path-outerplanar (Lemma 2), hence `G` planar (Lemma 4).

use crate::alg1::{verify_spine_node, virtual_interval, SpineView};
use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use crate::schemes::tree_base::{build_tree_certs, check_tree, TreeCert};
use dpc_graph::degeneracy::{assign_edges_by_degeneracy, assign_edges_naive, degeneracy_order};
use dpc_graph::Graph;
use dpc_planar::tembed::t_embedding;
use dpc_runtime::bits::{BitReader, BitWriter, DecodeError};
use dpc_runtime::{NodeCtx, Payload};
use std::collections::HashMap;

type Iv = (u64, u64);

/// One edge-certificate (the `c(e)` of Section 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
enum EdgeKind {
    /// Tree edge: interval labels at `fmin(c)−1, fmin(c), fmax(c),
    /// fmax(c)+1` where `c` is the child endpoint (positions are implied
    /// by the endpoints' `fmin/fmax`, so only intervals are shipped).
    Tree([Iv; 4]),
    /// Cotree edge: its chord `{i, j}` (`i < j`) with interval labels.
    Cotree { i: u64, ii: Iv, j: u64, ij: Iv },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EdgeCert {
    id_a: u64,
    id_b: u64,
    kind: EdgeKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PlanCert {
    tree: TreeCert,
    fmin: u64,
    fmax: u64,
    edges: Vec<EdgeCert>,
}

fn write_iv(w: &mut BitWriter, iv: Iv) {
    w.write_varint(iv.0);
    w.write_varint(iv.1);
}

fn read_iv(r: &mut BitReader<'_>) -> Result<Iv, DecodeError> {
    Ok((r.read_varint()?, r.read_varint()?))
}

impl PlanCert {
    fn encode(&self) -> Payload {
        let mut w = BitWriter::new();
        self.tree.encode(&mut w);
        w.write_varint(self.fmin);
        w.write_varint(self.fmax);
        w.write_varint(self.edges.len() as u64);
        for e in &self.edges {
            w.write_varint(e.id_a);
            w.write_varint(e.id_b);
            match &e.kind {
                EdgeKind::Tree(ivs) => {
                    w.write_bool(true);
                    for &iv in ivs {
                        write_iv(&mut w, iv);
                    }
                }
                EdgeKind::Cotree { i, ii, j, ij } => {
                    w.write_bool(false);
                    w.write_varint(*i);
                    write_iv(&mut w, *ii);
                    w.write_varint(*j);
                    write_iv(&mut w, *ij);
                }
            }
        }
        Payload::from_writer(w)
    }

    fn decode(p: &Payload) -> Option<PlanCert> {
        let mut r = p.reader();
        let tree = TreeCert::decode(&mut r).ok()?;
        let fmin = r.read_varint().ok()?;
        let fmax = r.read_varint().ok()?;
        let count = r.read_varint().ok()?;
        if count > 10_000 {
            return None; // sanity cap against absurd forgeries
        }
        let mut edges = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id_a = r.read_varint().ok()?;
            let id_b = r.read_varint().ok()?;
            let kind = if r.read_bool().ok()? {
                let mut ivs = [(0, 0); 4];
                for iv in &mut ivs {
                    *iv = read_iv(&mut r).ok()?;
                }
                EdgeKind::Tree(ivs)
            } else {
                let i = r.read_varint().ok()?;
                let ii = read_iv(&mut r).ok()?;
                let j = r.read_varint().ok()?;
                let ij = read_iv(&mut r).ok()?;
                EdgeKind::Cotree { i, ii, j, ij }
            };
            edges.push(EdgeCert { id_a, id_b, kind });
        }
        (r.remaining() == 0).then_some(PlanCert {
            tree,
            fmin,
            fmax,
            edges,
        })
    }
}

/// How edge-certificates are assigned to endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeAssignment {
    /// By a degeneracy ordering (≤ 5 certificates per node on planar
    /// graphs — the paper's choice).
    #[default]
    Degeneracy,
    /// Naive smaller-endpoint assignment (up to Δ certificates per node)
    /// — the ablation baseline of experiment E12.
    Naive,
}

/// The planarity PLS of Theorem 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanarityScheme {
    assignment: EdgeAssignment,
}

impl PlanarityScheme {
    /// Scheme with the paper's degeneracy-based certificate placement.
    pub fn new() -> Self {
        PlanarityScheme::default()
    }

    /// Scheme with an explicit placement policy (for the ablation).
    pub fn with_assignment(assignment: EdgeAssignment) -> Self {
        PlanarityScheme { assignment }
    }
}

impl ProofLabelingScheme for PlanarityScheme {
    fn name(&self) -> &'static str {
        "planarity"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        let n = g.node_count();
        if n == 1 {
            let cert = PlanCert {
                tree: TreeCert {
                    root_id: g.id_of(0),
                    n: 1,
                    dist: 0,
                    parent_id: g.id_of(0),
                    subtree: 1,
                },
                fmin: 1,
                fmax: 1,
                edges: Vec::new(),
            };
            return Ok(Assignment {
                certs: vec![cert.encode()],
            });
        }
        let rot = dpc_planar::lr::planarity(g)
            .into_embedding()
            .ok_or(ProveError::NotInClass("planar graphs"))?;
        let tree = dpc_graph::traversal::bfs_spanning_tree(g, 0);
        let te = t_embedding(g, &rot, &tree)
            .expect("planar rotation system yields laminar chords (Lemma 3)");
        let tree_certs = build_tree_certs(g, &tree);
        let owners = match self.assignment {
            EdgeAssignment::Degeneracy => {
                let d = degeneracy_order(g);
                assign_edges_by_degeneracy(g, &d)
            }
            EdgeAssignment::Naive => assign_edges_naive(g),
        };
        let tree_mask = tree.tree_edge_mask(g);
        let iv = |x: u64| -> Iv {
            let (a, b) = te.interval(x as u32);
            (a as u64, b as u64)
        };
        let mut edge_lists: Vec<Vec<EdgeCert>> = vec![Vec::new(); n];
        for (eid, e) in g.edges().iter().enumerate() {
            let kind = if tree_mask[eid] {
                let c = if tree.parent[e.u as usize] == Some(e.v) {
                    e.u
                } else {
                    e.v
                };
                let (cmin, cmax) = (te.fmin(c) as u64, te.fmax(c) as u64);
                EdgeKind::Tree([iv(cmin - 1), iv(cmin), iv(cmax), iv(cmax + 1)])
            } else {
                let chord = te.chords[te.chord_of[eid] as usize];
                EdgeKind::Cotree {
                    i: chord.a as u64,
                    ii: iv(chord.a as u64),
                    j: chord.b as u64,
                    ij: iv(chord.b as u64),
                }
            };
            edge_lists[owners[eid] as usize].push(EdgeCert {
                id_a: g.id_of(e.u),
                id_b: g.id_of(e.v),
                kind,
            });
        }
        let certs = g
            .nodes()
            .map(|v| {
                PlanCert {
                    tree: tree_certs[v as usize],
                    fmin: te.fmin(v) as u64,
                    fmax: te.fmax(v) as u64,
                    edges: std::mem::take(&mut edge_lists[v as usize]),
                }
                .encode()
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        verify_impl(ctx, own, neighbors).is_some()
    }
}

/// The whole verifier; `None` = reject. Written with `?` so any missing
/// or inconsistent piece rejects.
fn verify_impl(ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> Option<()> {
    let own = PlanCert::decode(own)?;
    let nbs: Vec<PlanCert> = neighbors
        .iter()
        .map(PlanCert::decode)
        .collect::<Option<Vec<_>>>()?;

    // ---- Phase 2a: spanning tree ----------------------------------------
    let tree_nbs: Vec<TreeCert> = nbs.iter().map(|c| c.tree).collect();
    let info = check_tree(ctx, &own.tree, &tree_nbs)?;
    let n = own.tree.n;
    let spine = 2 * n - 1; // N
    let is_root = info.parent_port.is_none();

    if n == 1 {
        return (own.fmin == 1 && own.fmax == 1).then_some(());
    }

    // ---- Phase 2b: DFS mapping ------------------------------------------
    if own.fmin < 1 || own.fmin > own.fmax || own.fmax > spine {
        return None;
    }
    if is_root && (own.fmin != 1 || own.fmax != spine) {
        return None;
    }
    // children sorted by fmin
    let mut children = info.children_ports.clone();
    children.sort_by_key(|&p| nbs[p].fmin);
    if children.is_empty() {
        if own.fmax != own.fmin {
            return None;
        }
    } else {
        if nbs[children[0]].fmin != own.fmin + 1 {
            return None;
        }
        for w in children.windows(2) {
            if nbs[w[1]].fmin != nbs[w[0]].fmax + 2 {
                return None;
            }
        }
        if own.fmax != nbs[*children.last().unwrap()].fmax + 1 {
            return None;
        }
    }
    // copies of x on the spine
    let mut copies: Vec<u64> = vec![own.fmin];
    for &p in &children {
        copies.push(nbs[p].fmax + 1);
    }
    let copy_set: std::collections::HashSet<u64> = copies.iter().copied().collect();

    // ---- Phase 1: resolve one edge-certificate per incident edge --------
    let mut resolved: Vec<EdgeCert> = Vec::with_capacity(ctx.degree());
    for (p, &nid) in ctx.neighbor_ids.iter().enumerate() {
        let matches = |e: &EdgeCert| {
            (e.id_a == ctx.id && e.id_b == nid) || (e.id_a == nid && e.id_b == ctx.id)
        };
        let mut found: Option<&EdgeCert> = None;
        for e in own.edges.iter().chain(nbs[p].edges.iter()) {
            if matches(e) {
                match found {
                    None => found = Some(e),
                    Some(prev) if prev == e => {}
                    Some(_) => return None, // two different certificates
                }
            }
        }
        let e = found?;
        let should_be_tree = info.parent_port == Some(p) || info.children_ports.contains(&p);
        if matches!(e.kind, EdgeKind::Tree(_)) != should_be_tree {
            return None;
        }
        resolved.push(e.clone());
    }

    // ---- Phase 1b: interval map + H-adjacency of the copies -------------
    let mut interval_of: HashMap<u64, Iv> = HashMap::new();
    let insert_iv = |pos: u64, iv: Iv, map: &mut HashMap<u64, Iv>| -> Option<()> {
        if pos < 1 || pos > spine || iv.1 > spine + 1 || iv.0 >= iv.1 {
            return None;
        }
        match map.insert(pos, iv) {
            None => Some(()),
            Some(prev) if prev == iv => Some(()),
            Some(_) => None, // inconsistent interval claims
        }
    };
    // adjacency: copy position -> neighbor positions
    let mut h_adj: HashMap<u64, Vec<u64>> = copies.iter().map(|&c| (c, Vec::new())).collect();
    let add_edge = |a: u64, b: u64, adj: &mut HashMap<u64, Vec<u64>>| {
        if let Some(l) = adj.get_mut(&a) {
            l.push(b);
        }
        if let Some(l) = adj.get_mut(&b) {
            l.push(a);
        }
    };
    for (p, e) in resolved.iter().enumerate() {
        match &e.kind {
            EdgeKind::Tree(ivs) => {
                let child_is_self = info.parent_port == Some(p);
                let (cmin, cmax) = if child_is_self {
                    (own.fmin, own.fmax)
                } else {
                    (nbs[p].fmin, nbs[p].fmax)
                };
                if cmin < 2 || cmax + 1 > spine {
                    return None; // child occupies interior spine positions
                }
                let pos = [cmin - 1, cmin, cmax, cmax + 1];
                for (q, &iv) in pos.iter().zip(ivs.iter()) {
                    insert_iv(*q, iv, &mut interval_of)?;
                }
                add_edge(pos[0], pos[1], &mut h_adj);
                add_edge(pos[2], pos[3], &mut h_adj);
                // parent-side positions must be copies of the parent node
                if child_is_self {
                    // x is the child: nothing more to check here; the
                    // parent checks its own copy membership
                } else {
                    // x is the parent: pos[0], pos[3] must be copies of x
                    if !copy_set.contains(&pos[0]) || !copy_set.contains(&pos[3]) {
                        return None;
                    }
                }
            }
            EdgeKind::Cotree { i, ii, j, ij } => {
                if i >= j {
                    return None;
                }
                insert_iv(*i, *ii, &mut interval_of)?;
                insert_iv(*j, *ij, &mut interval_of)?;
                let mine_i = copy_set.contains(i);
                let mine_j = copy_set.contains(j);
                if mine_i == mine_j {
                    return None; // exactly one endpoint is a copy of x
                }
                // the other endpoint must lie in the neighbor's range
                let (other, _mine) = if mine_i { (*j, *i) } else { (*i, *j) };
                if other < nbs[p].fmin || other > nbs[p].fmax {
                    return None;
                }
                add_edge(*i, *j, &mut h_adj);
            }
        }
    }

    // ---- Phase 3: Algorithm 1 at every copy ------------------------------
    for &c in &copies {
        let mut nb_positions = h_adj.get(&c).cloned().unwrap_or_default();
        nb_positions.sort_unstable();
        nb_positions.dedup();
        let mut view_nbs: Vec<(i64, (i64, i64))> = Vec::with_capacity(nb_positions.len() + 1);
        for q in nb_positions {
            let iv = *interval_of.get(&q)?;
            view_nbs.push((q as i64, (iv.0 as i64, iv.1 as i64)));
        }
        if c == 1 {
            view_nbs.push((0, virtual_interval(spine as i64)));
        }
        if c == spine {
            view_nbs.push((spine as i64 + 1, virtual_interval(spine as i64)));
        }
        let iv = *interval_of.get(&c)?;
        let view = SpineView {
            x: c as i64,
            n: spine as i64,
            interval: (iv.0 as i64, iv.1 as i64),
            neighbors: view_nbs,
        };
        if !verify_spine_node(&view) {
            return None;
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_planar_families() {
        let graphs = vec![
            generators::path(1),
            generators::path(2),
            generators::path(20),
            generators::cycle(15),
            generators::star(12),
            generators::grid(5, 6),
            generators::wheel(10),
            generators::complete(4),
            generators::random_tree(60, 1),
            generators::random_maximal_outerplanar(25, 2),
            generators::random_series_parallel(40, 3),
        ];
        for g in graphs {
            let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
            assert!(out.all_accept(), "graph {g:?} must be fully accepted");
            assert_eq!(out.rounds, 1);
        }
    }

    /// Helper for the rejection-path matrix: mutate node `v`'s decoded
    /// certificate and assert at least one node rejects.
    fn assert_mutation_caught(
        g: &Graph,
        v: usize,
        name: &str,
        mutate: impl FnOnce(&mut PlanCert) -> bool,
    ) {
        let scheme = PlanarityScheme::new();
        let honest = scheme.prove(g).unwrap();
        let mut cert = PlanCert::decode(&honest.certs[v]).unwrap();
        if !mutate(&mut cert) {
            return; // mutation not applicable at this node
        }
        let mut forged = honest;
        forged.certs[v] = cert.encode();
        let out = run_with_assignment(&scheme, g, &forged);
        assert!(
            !out.all_accept(),
            "mutation `{name}` at node {v} went unnoticed"
        );
    }

    /// Every targeted certificate mutation must trip a distinct check of
    /// Algorithm 2 — a rejection-path matrix for the verifier.
    #[test]
    fn rejection_path_matrix() {
        let g = generators::stacked_triangulation(30, 13);
        for v in [1usize, 5, 12] {
            assert_mutation_caught(&g, v, "root-id lie", |c| {
                c.tree.root_id ^= 1;
                true
            });
            assert_mutation_caught(&g, v, "distance bump", |c| {
                c.tree.dist += 1;
                true
            });
            assert_mutation_caught(&g, v, "subtree count", |c| {
                c.tree.subtree += 1;
                true
            });
            assert_mutation_caught(&g, v, "n inflation", |c| {
                c.tree.n += 1;
                true
            });
            assert_mutation_caught(&g, v, "fmin shift", |c| {
                c.fmin += 1;
                true
            });
            assert_mutation_caught(&g, v, "fmax shrink", |c| {
                if c.fmax > c.fmin {
                    c.fmax -= 1;
                    true
                } else {
                    c.fmax += 1;
                    true
                }
            });
            assert_mutation_caught(&g, v, "drop an edge certificate", |c| {
                if c.edges.is_empty() {
                    false
                } else {
                    c.edges.remove(0);
                    true
                }
            });
            assert_mutation_caught(&g, v, "tree/cotree flag flip", |c| {
                match c.edges.first_mut() {
                    Some(e) => {
                        e.kind = match &e.kind {
                            EdgeKind::Tree(ivs) => EdgeKind::Cotree {
                                i: 2,
                                ii: ivs[0],
                                j: 4,
                                ij: ivs[1],
                            },
                            EdgeKind::Cotree { ii, ij, .. } => EdgeKind::Tree([*ii, *ij, *ii, *ij]),
                        };
                        true
                    }
                    None => false,
                }
            });
            assert_mutation_caught(&g, v, "chord endpoint moved", |c| {
                for e in &mut c.edges {
                    if let EdgeKind::Cotree { j, .. } = &mut e.kind {
                        *j += 1;
                        return true;
                    }
                }
                false
            });
            assert_mutation_caught(&g, v, "edge cert retargeted", |c| {
                match c.edges.first_mut() {
                    Some(e) => {
                        e.id_b ^= 1;
                        true
                    }
                    None => false,
                }
            });
        }
    }

    #[test]
    fn conflicting_interval_claims_across_certs_rejected() {
        // two certificates visible to the same node claiming different
        // intervals for the same spine position: the consistency map
        // must reject. Mutate every cotree interval of one node's certs
        // in a way that keeps each cert locally plausible.
        let g = generators::stacked_triangulation(24, 3);
        let scheme = PlanarityScheme::new();
        let honest = scheme.prove(&g).unwrap();
        let mut caught = false;
        'victims: for v in 0..g.node_count() {
            let mut cert = PlanCert::decode(&honest.certs[v]).unwrap();
            for e in &mut cert.edges {
                if let EdgeKind::Cotree { ii, .. } = &mut e.kind {
                    // widen the claimed interval of endpoint i while the
                    // same position keeps its honest interval elsewhere
                    if ii.0 > 0 {
                        ii.0 -= 1;
                        let mut forged = honest.clone();
                        forged.certs[v] = cert.encode();
                        let out = run_with_assignment(&scheme, &g, &forged);
                        if !out.all_accept() {
                            caught = true;
                        }
                        break 'victims;
                    }
                }
            }
        }
        assert!(caught, "interval conflict must be rejected");
    }

    #[test]
    fn duplicated_conflicting_edge_cert_rejected() {
        // the same edge described twice with different content
        let g = generators::stacked_triangulation(20, 8);
        let scheme = PlanarityScheme::new();
        let honest = scheme.prove(&g).unwrap();
        for v in 0..g.node_count() {
            let mut cert = PlanCert::decode(&honest.certs[v]).unwrap();
            if let Some(first) = cert.edges.first().cloned() {
                let mut dup = first.clone();
                if let EdgeKind::Tree(ivs) = &mut dup.kind {
                    ivs[0].1 += 1;
                } else if let EdgeKind::Cotree { ii, .. } = &mut dup.kind {
                    ii.1 += 1;
                }
                cert.edges.push(dup);
                let mut forged = honest.clone();
                forged.certs[v] = cert.encode();
                let out = run_with_assignment(&scheme, &g, &forged);
                assert!(!out.all_accept(), "conflicting duplicate at node {v}");
                return;
            }
        }
        panic!("no node with edge certificates");
    }

    #[test]
    fn accepts_triangulations_many_seeds() {
        for seed in 0..10u64 {
            let g = generators::stacked_triangulation(80, seed);
            let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
            assert!(out.all_accept(), "seed {seed}");
        }
    }

    #[test]
    fn accepts_random_planar_with_shuffled_ids() {
        for seed in 0..8u64 {
            let g =
                generators::shuffle_ids(&generators::random_planar(70, 0.5, seed), seed ^ 0xabcd);
            let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
            assert!(out.all_accept(), "seed {seed}");
        }
    }

    #[test]
    fn prover_declines_nonplanar() {
        assert_eq!(
            PlanarityScheme::new()
                .prove(&generators::complete(5))
                .unwrap_err(),
            ProveError::NotInClass("planar graphs")
        );
        assert!(PlanarityScheme::new()
            .prove(&generators::k33_subdivision(2))
            .is_err());
        assert!(PlanarityScheme::new()
            .prove(&generators::planted_kuratowski(25, true, 1, 7))
            .is_err());
    }

    #[test]
    fn certificate_size_is_logarithmic() {
        // certificates grow like log n: compare growth against 4x size
        let g1 = generators::stacked_triangulation(100, 5);
        let g2 = generators::stacked_triangulation(6_400, 5);
        let a1 = PlanarityScheme::new().prove(&g1).unwrap();
        let a2 = PlanarityScheme::new().prove(&g2).unwrap();
        // 64x more nodes must cost far less than 64x certificate bits
        assert!(
            a2.max_bits() < 3 * a1.max_bits(),
            "max bits {} vs {}",
            a1.max_bits(),
            a2.max_bits()
        );
        assert!(a2.max_bits() < 2500);
    }

    #[test]
    fn soundness_replay_planar_subgraph_certs() {
        // Strongest attack: G = maximal planar + one edge (non-planar).
        // Replay honest certificates of the planar part on G.
        let g = generators::stacked_triangulation(30, 7);
        let n = g.node_count() as u32;
        let mut extra = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    extra = Some((u, v));
                    break 'outer;
                }
            }
        }
        let (u, v) = extra.unwrap();
        let mut b = dpc_graph::GraphBuilder::new(n);
        for e in g.edges() {
            b.add_edge(e.u, e.v).unwrap();
        }
        b.add_edge(u, v).unwrap();
        let bad = b.build();
        assert!(!dpc_planar::lr::is_planar(&bad));
        let honest_on_sub = PlanarityScheme::new().prove(&g).unwrap();
        let out = run_with_assignment(&PlanarityScheme::new(), &bad, &honest_on_sub);
        assert!(
            !out.all_accept(),
            "the endpoints of the extra edge find no certificate for it"
        );
    }

    #[test]
    fn soundness_garbage_and_shuffle() {
        let g = generators::planted_kuratowski(20, false, 1, 3);
        let out = run_with_assignment(
            &PlanarityScheme::new(),
            &g,
            &Assignment::empty(g.node_count()),
        );
        assert!(out.reject_count() > 0);
    }

    #[test]
    fn naive_assignment_also_works_but_bigger() {
        let g = generators::star(40); // hub = node 0, degree 39: the naive
                                      // smaller-endpoint rule dumps every
                                      // edge-certificate on the hub
        let smart = PlanarityScheme::new().prove(&g).unwrap();
        let naive = PlanarityScheme::with_assignment(EdgeAssignment::Naive)
            .prove(&g)
            .unwrap();
        let out = run_with_assignment(
            &PlanarityScheme::with_assignment(EdgeAssignment::Naive),
            &g,
            &naive,
        );
        assert!(out.all_accept(), "naive placement is still a valid proof");
        assert!(
            naive.max_bits() > 2 * smart.max_bits(),
            "naive {} vs degeneracy {}",
            naive.max_bits(),
            smart.max_bits()
        );
    }

    #[test]
    fn mutated_interval_rejected() {
        let g = generators::stacked_triangulation(25, 9);
        let honest = PlanarityScheme::new().prove(&g).unwrap();
        // decode node 3's certificate, shift a cotree interval, re-encode
        let mut cert = PlanCert::decode(&honest.certs[3]).unwrap();
        let mut mutated = false;
        for e in &mut cert.edges {
            if let EdgeKind::Cotree { ii, .. } = &mut e.kind {
                ii.1 += 1;
                mutated = true;
                break;
            }
        }
        if !mutated {
            for e in &mut cert.edges {
                if let EdgeKind::Tree(ivs) = &mut e.kind {
                    ivs[1].1 = ivs[1].1.saturating_sub(1).max(ivs[1].0 + 1);
                    mutated = true;
                    break;
                }
            }
        }
        assert!(mutated, "node 3 should own at least one edge certificate");
        let mut forged = honest.clone();
        forged.certs[3] = cert.encode();
        let out = run_with_assignment(&PlanarityScheme::new(), &g, &forged);
        assert!(!out.all_accept(), "interval tampering must be caught");
    }

    #[test]
    fn single_node_accepts() {
        let g = generators::path(1);
        let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
        assert!(out.all_accept());
    }
}
