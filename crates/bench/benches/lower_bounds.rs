//! E7/E8 bench: constructing and certifying the Lemma 5 instances, and
//! the pigeonhole forgery end to end — single-instance and batched
//! across the worker pool (the lower-bound pipeline is not a PLS run,
//! so it goes through [`BatchRunner::map`] rather than the PLS front
//! end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_core::batch::BatchRunner;
use dpc_lowerbounds::blocks::{
    certify_cycle_has_kk, certify_path_kfree, cycle_of_blocks, path_of_blocks,
};
use dpc_lowerbounds::counting::{forge_cycle, ModCounterScheme};

fn bench_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bounds");
    group.sample_size(10);
    for &p in &[50usize, 500] {
        let perm: Vec<usize> = (1..=p).collect();
        group.bench_with_input(
            BenchmarkId::new("path_of_blocks_k5", p),
            &perm,
            |b, perm| {
                b.iter(|| {
                    let inst = path_of_blocks(5, std::hint::black_box(perm));
                    assert!(certify_path_kfree(&inst));
                    inst.graph.node_count()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("cycle_witness_k5", p), &perm, |b, perm| {
            b.iter(|| {
                let inst = cycle_of_blocks(5, std::hint::black_box(perm));
                assert!(certify_cycle_has_kk(&inst));
                inst.graph.node_count()
            })
        });
    }
    for &g in &[3u32, 6] {
        group.bench_with_input(BenchmarkId::new("forge_cycle", g), &g, |b, &g| {
            b.iter(|| {
                let f = forge_cycle(&ModCounterScheme::new(4, g));
                assert!(f.fully_accepted);
                f.cycle.graph.node_count()
            })
        });
    }
    // 40 permutations certified across the worker pool in one call
    let perms: Vec<Vec<usize>> = (0..40usize)
        .map(|i| {
            let mut perm: Vec<usize> = (1..=120).collect();
            perm.rotate_left(i);
            perm
        })
        .collect();
    let runner = BatchRunner::new();
    group.bench_with_input(
        BenchmarkId::new("batch_certify_paths_k5", perms.len()),
        &perms,
        |b, perms| {
            b.iter(|| {
                let ok = runner.map(perms, |perm| {
                    certify_path_kfree(&path_of_blocks(5, std::hint::black_box(perm)))
                });
                assert!(ok.iter().all(|&b| b));
                ok.len()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_lower_bounds);
criterion_main!(benches);
