//! Named graph families used across the experiments.

use dpc_graph::{generators, Graph};

/// A named family: `make(n, seed)` returns a connected graph with about
/// `n` nodes.
#[derive(Clone, Copy)]
pub struct Family {
    /// Display name.
    pub name: &'static str,
    /// Generator.
    pub make: fn(u32, u64) -> Graph,
    /// Whether members are planar.
    pub planar: bool,
}

/// The planar families of the scaling experiments.
pub fn planar_families() -> Vec<Family> {
    vec![
        Family {
            name: "tree",
            make: |n, s| generators::random_tree(n, s),
            planar: true,
        },
        Family {
            name: "cycle",
            make: |n, _| generators::cycle(n.max(3)),
            planar: true,
        },
        Family {
            name: "grid",
            make: |n, _| {
                let side = (n as f64).sqrt().ceil() as u32;
                generators::grid(side.max(2), side.max(2))
            },
            planar: true,
        },
        Family {
            name: "triangulation",
            make: |n, s| generators::stacked_triangulation(n.max(3), s),
            planar: true,
        },
        Family {
            name: "random-planar",
            make: |n, s| generators::random_planar(n.max(3), 0.5, s),
            planar: true,
        },
        Family {
            name: "outerplanar",
            make: |n, s| generators::random_maximal_outerplanar(n.max(3), s),
            planar: true,
        },
    ]
}

/// Non-planar families for the soundness experiments.
pub fn nonplanar_families() -> Vec<Family> {
    vec![
        Family {
            name: "planted-K5",
            make: |n, s| generators::planted_kuratowski(n.max(10), true, 1, s),
            planar: false,
        },
        Family {
            name: "planted-K33",
            make: |n, s| generators::planted_kuratowski(n.max(10), false, 1, s),
            planar: false,
        },
        Family {
            name: "dense-gnm",
            make: |n, s| {
                let n = n.max(10);
                generators::gnm_connected(n, 3 * n, s)
            },
            planar: false,
        },
        Family {
            name: "K33-subdiv",
            make: |n, _| generators::k33_subdivision((n / 9).max(1)),
            planar: false,
        },
        Family {
            name: "K5-subdiv",
            make: |n, _| generators::k5_subdivision((n / 10).max(1)),
            planar: false,
        },
        Family {
            // Q_d is non-planar from d = 4 (it contains a K_{3,3} minor)
            name: "hypercube",
            make: |n, _| {
                let d = (31 - n.max(16).leading_zeros()).clamp(4, 16);
                generators::hypercube(d)
            },
            planar: false,
        },
        Family {
            // deeper subdivisions hide the witness behind long paths —
            // the harder end of the soundness sweep
            name: "planted-K33-deep",
            make: |n, s| generators::planted_kuratowski(n.max(16), false, 3, s),
            planar: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_match_their_label() {
        for f in planar_families() {
            let g = (f.make)(60, 1);
            assert!(g.is_connected(), "{}", f.name);
            assert!(dpc_planar::lr::is_planar(&g), "{} must be planar", f.name);
        }
        for f in nonplanar_families() {
            let g = (f.make)(40, 2);
            assert!(g.is_connected(), "{}", f.name);
            assert!(
                !dpc_planar::lr::is_planar(&g),
                "{} must be non-planar",
                f.name
            );
        }
    }
}
