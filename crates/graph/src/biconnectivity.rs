//! Biconnectivity: articulation points, bridges, and biconnected
//! components (iterative Tarjan DFS).
//!
//! Planarity is a per-biconnected-component property, and the
//! lower-bound constructions splice instances at connection boundaries;
//! this module provides the decomposition plus the structural predicates
//! used in tests and experiments.

use crate::graph::{EdgeId, Graph, NodeId};

/// Result of the biconnectivity computation.
#[derive(Debug, Clone)]
pub struct Biconnectivity {
    /// Nodes whose removal disconnects their component.
    pub articulation_points: Vec<NodeId>,
    /// Edges whose removal disconnects their component.
    pub bridges: Vec<EdgeId>,
    /// `component[e]` = biconnected-component index of edge `e`.
    pub component: Vec<u32>,
    /// Number of biconnected components.
    pub component_count: u32,
}

/// Computes articulation points, bridges, and biconnected components.
pub fn biconnectivity(g: &Graph) -> Biconnectivity {
    let n = g.node_count();
    let m = g.edge_count();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut is_art = vec![false; n];
    let mut is_bridge = vec![false; m];
    let mut component = vec![u32::MAX; m];
    let mut comp_count = 0u32;
    let mut timer = 0u32;
    let mut edge_stack: Vec<EdgeId> = Vec::new();

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        // iterative DFS: (node, adjacency index)
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let adj = g.adjacency(v);
            if *i < adj.len() {
                let (w, e) = adj[*i];
                *i += 1;
                if Some(e) == parent_edge[v as usize] {
                    continue;
                }
                if disc[w as usize] == u32::MAX {
                    // tree edge
                    parent_edge[w as usize] = Some(e);
                    edge_stack.push(e);
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, 0));
                } else if disc[w as usize] < disc[v as usize] {
                    // back edge (to an ancestor)
                    edge_stack.push(e);
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    let pe = parent_edge[v as usize].unwrap();
                    if low[v as usize] >= disc[p as usize] {
                        // p is an articulation point (or the root, handled
                        // after the loop); pop one biconnected component
                        if p != root {
                            is_art[p as usize] = true;
                        }
                        while let Some(&top) = edge_stack.last() {
                            edge_stack.pop();
                            component[top as usize] = comp_count;
                            if top == pe {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                    if low[v as usize] > disc[p as usize] {
                        is_bridge[pe as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_art[root as usize] = true;
        }
    }
    Biconnectivity {
        articulation_points: (0..n as u32).filter(|&v| is_art[v as usize]).collect(),
        bridges: (0..m as u32).filter(|&e| is_bridge[e as usize]).collect(),
        component,
        component_count: comp_count,
    }
}

/// True if the connected graph has no articulation point (and ≥ 3 nodes
/// or is an edge).
pub fn is_biconnected(g: &Graph) -> bool {
    if !g.is_connected() {
        return false;
    }
    match g.node_count() {
        0 | 1 => true,
        2 => g.edge_count() == 1,
        _ => biconnectivity(g).articulation_points.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_is_biconnected() {
        let g = generators::cycle(10);
        let b = biconnectivity(&g);
        assert!(b.articulation_points.is_empty());
        assert!(b.bridges.is_empty());
        assert_eq!(b.component_count, 1);
        assert!(is_biconnected(&g));
    }

    #[test]
    fn path_is_all_bridges() {
        let g = generators::path(6);
        let b = biconnectivity(&g);
        assert_eq!(b.bridges.len(), 5, "every path edge is a bridge");
        assert_eq!(
            b.articulation_points,
            vec![1, 2, 3, 4],
            "interior nodes are articulation points"
        );
        assert_eq!(b.component_count, 5, "each edge its own component");
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        // bowtie: triangles {0,1,2} and {2,3,4}
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let b = biconnectivity(&g);
        assert_eq!(b.articulation_points, vec![2]);
        assert!(b.bridges.is_empty());
        assert_eq!(b.component_count, 2);
        // edges of the same triangle share a component
        let c01 = b.component[g.find_edge(0, 1).unwrap() as usize];
        let c02 = b.component[g.find_edge(0, 2).unwrap() as usize];
        let c34 = b.component[g.find_edge(3, 4).unwrap() as usize];
        assert_eq!(c01, c02);
        assert_ne!(c01, c34);
    }

    #[test]
    fn bridge_between_cliques() {
        // K4 - bridge - K4
        let mut b = crate::graph::GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v).unwrap();
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v).unwrap();
            }
        }
        let bridge = b.add_edge(0, 4).unwrap();
        let g = b.build();
        let bc = biconnectivity(&g);
        assert_eq!(bc.bridges, vec![bridge]);
        let mut arts = bc.articulation_points.clone();
        arts.sort_unstable();
        assert_eq!(arts, vec![0, 4]);
        assert_eq!(bc.component_count, 3);
    }

    #[test]
    fn triangulations_are_biconnected() {
        for seed in 0..5u64 {
            let g = generators::stacked_triangulation(60, seed);
            assert!(is_biconnected(&g), "seed {seed}");
        }
    }

    #[test]
    fn trees_have_only_bridges() {
        let g = generators::random_tree(40, 3);
        let b = biconnectivity(&g);
        assert_eq!(b.bridges.len(), g.edge_count());
        assert_eq!(b.component_count as usize, g.edge_count());
    }

    #[test]
    fn disconnected_graphs_handled() {
        let g = generators::cycle(4).disjoint_union(&generators::path(3));
        let b = biconnectivity(&g);
        assert_eq!(b.component_count, 3, "one cycle component + two path edges");
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn every_edge_gets_a_component() {
        let g = generators::random_planar(80, 0.5, 7);
        let b = biconnectivity(&g);
        assert!(b.component.iter().all(|&c| c != u32::MAX));
        assert!(b.component.iter().all(|&c| c < b.component_count));
    }
}
