//! E13 prover-side bench: the full pipeline (left-right embedding,
//! T-embedding, degeneracy assignment, certificate encoding) and its
//! pieces in isolation, plus the batch engine amortizing the pipeline
//! over many graphs in parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_core::batch::BatchRunner;
use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::generators;
use dpc_graph::traversal::bfs_spanning_tree;

fn bench_prover(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover");
    group.sample_size(10);
    for &n in &[1024u32, 8192] {
        let g = generators::stacked_triangulation(n, 7);
        group.bench_with_input(BenchmarkId::new("lr_planarity", n), &g, |b, g| {
            b.iter(|| dpc_planar::lr::planarity(std::hint::black_box(g)).is_planar())
        });
        let rot = dpc_planar::lr::planarity(&g).into_embedding().unwrap();
        let tree = bfs_spanning_tree(&g, 0);
        group.bench_with_input(BenchmarkId::new("t_embedding", n), &g, |b, g| {
            b.iter(|| {
                dpc_planar::tembed::t_embedding(std::hint::black_box(g), &rot, &tree)
                    .unwrap()
                    .chords
                    .len()
            })
        });
        let scheme = PlanarityScheme::new();
        group.bench_with_input(BenchmarkId::new("full_prove", n), &g, |b, g| {
            b.iter(|| scheme.prove(std::hint::black_box(g)).unwrap().total_bits())
        });
    }
    // the prove pipeline alone (no verification round, matching
    // full_prove) fanned over a batch of 32 graphs via the worker pool
    let scheme = PlanarityScheme::new();
    let batch: Vec<_> = (0..32u64)
        .map(|s| generators::stacked_triangulation(1024, s))
        .collect();
    let runner = BatchRunner::new();
    group.bench_with_input(
        BenchmarkId::new("batch_full_prove", batch.len()),
        &batch,
        |b, batch| {
            b.iter(|| {
                runner
                    .map(std::hint::black_box(batch), |g| {
                        scheme.prove(g).unwrap().total_bits()
                    })
                    .iter()
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_prover);
criterion_main!(benches);
