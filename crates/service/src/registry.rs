//! The scheme registry: stable wire identifiers for every
//! [`ProofLabelingScheme`] the service can run, with per-scheme
//! capabilities.
//!
//! The PR 2 service hard-wired `PlanarityScheme`; the paper frames
//! planarity as one instance of a general proof-labeling framework, and
//! the registry is that framework's serving surface. Every scheme gets
//! a stable [`SchemeId`] (a `u16` that appears on the wire and in cache
//! keys — never reuse or renumber one), a human name (the CLI handle),
//! and a capability record: the class it certifies, the certificate
//! size bound the paper gives for it, and whether the adversarial
//! soundness battery applies.
//!
//! ```
//! use dpc_service::registry::{SchemeId, SchemeRegistry};
//!
//! let reg = SchemeRegistry::standard();
//! let bip = reg.by_name("bipartite").unwrap();
//! assert_eq!(bip.id, SchemeId::BIPARTITE);
//! let a = bip.scheme().prove(&dpc_graph::generators::grid(3, 4)).unwrap();
//! assert_eq!(a.max_bits(), 1);
//! ```

use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::bipartite::BipartiteScheme;
use dpc_core::schemes::non_planarity::NonPlanarityScheme;
use dpc_core::schemes::path::PathScheme;
use dpc_core::schemes::path_outerplanar::PathOuterplanarScheme;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_core::schemes::spanning_tree::SpanningTreeScheme;
use dpc_core::schemes::tree_class::TreeScheme;
use dpc_core::schemes::universal::UniversalScheme;
use dpc_lowerbounds::counting::BlockPathScheme;
use std::fmt;

/// Stable wire identifier of a registered scheme.
///
/// Ids are part of the wire protocol *and* of cache keys: they must
/// never be renumbered or reused. `SchemeId(0)` is planarity, the
/// protocol default — a request without an explicit scheme-id
/// extension means planarity, which is what every pre-registry client
/// sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SchemeId(pub u16);

impl SchemeId {
    /// Theorem 1: 1-round planarity PLS (the wire default).
    pub const PLANARITY: SchemeId = SchemeId(0);
    /// 1-bit bipartiteness PLS.
    pub const BIPARTITE: SchemeId = SchemeId(1);
    /// PLS for the class of trees.
    pub const TREE: SchemeId = SchemeId(2);
    /// Folklore spanning-tree substrate as a standalone scheme.
    pub const SPANNING_TREE: SchemeId = SchemeId(3);
    /// §2 warm-up: the network is a path.
    pub const PATH: SchemeId = SchemeId(4);
    /// Lemma 2: path-outerplanarity.
    pub const PATH_OUTERPLANAR: SchemeId = SchemeId(5);
    /// Folklore non-planarity scheme (subdivided K5 / K3,3 witness).
    pub const NON_PLANARITY: SchemeId = SchemeId(6);
    /// O(m log n)-bit universal baseline (ship the whole graph).
    pub const UNIVERSAL: SchemeId = SchemeId(7);
    /// Lemma 5's mod-2^g counter scheme on paths of blocks.
    pub const MOD_COUNTER: SchemeId = SchemeId(8);
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What a registered scheme supports, surfaced by `dpc schemes`.
#[derive(Debug, Clone, Copy)]
pub struct SchemeCapabilities {
    /// The graph class the scheme certifies (its yes-instances).
    pub class: &'static str,
    /// Certificate-size bound, as stated in the paper.
    pub cert_bound: &'static str,
    /// Whether the adversarial soundness battery
    /// ([`dpc_core::adversary`]) applies: the replay attacks forge from
    /// a planarized subgraph, which is only a meaningful "best lie"
    /// for planarity-shaped classes — and classes with no no-instances
    /// (spanning-tree) have nothing to probe.
    pub soundness_probe: bool,
    /// Whether the scheme reads the network identifiers themselves
    /// (mod-counter's verifier does id arithmetic over the Lemma 5
    /// blocks). Such schemes can only be served meaningfully over the
    /// binary wire protocol — the graph6 exchange format drops
    /// identifiers, so `dpc query --scheme <name>` refuses up front.
    pub needs_ids: bool,
    /// Whether an interactive (dMAM) wire protocol is wired for the
    /// scheme — the paper's randomized three-interaction exchange
    /// ([`dpc_interactive::dmam`]). Only such schemes accept
    /// `InteractiveBegin` sessions; everything else is declined with
    /// a clean error before any state is kept.
    pub interactive: bool,
}

/// One registered scheme: stable id, CLI name, capabilities, and the
/// scheme object itself.
pub struct SchemeEntry {
    /// Stable wire id.
    pub id: SchemeId,
    /// Human name (`dpc query --scheme <name>`; also
    /// [`ProofLabelingScheme::name`] of the entry).
    pub name: &'static str,
    /// Capability record.
    pub caps: SchemeCapabilities,
    scheme: Box<dyn ProofLabelingScheme + Send + Sync>,
}

impl SchemeEntry {
    /// The scheme object.
    pub fn scheme(&self) -> &(dyn ProofLabelingScheme + Send + Sync) {
        self.scheme.as_ref()
    }
}

impl fmt::Debug for SchemeEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("caps", &self.caps)
            .finish_non_exhaustive()
    }
}

/// The registry: `SchemeId` / name → scheme, in stable id order.
#[derive(Debug)]
pub struct SchemeRegistry {
    entries: Vec<SchemeEntry>,
}

fn entry(
    id: SchemeId,
    name: &'static str,
    class: &'static str,
    cert_bound: &'static str,
    soundness_probe: bool,
    scheme: Box<dyn ProofLabelingScheme + Send + Sync>,
) -> SchemeEntry {
    debug_assert_eq!(scheme.name(), name, "registry name must match the scheme");
    SchemeEntry {
        id,
        name,
        caps: SchemeCapabilities {
            class,
            cert_bound,
            soundness_probe,
            // set after construction for the (single) id-reading
            // scheme and the (single) interactive-capable scheme, so
            // this builder keeps one signature
            needs_ids: false,
            interactive: false,
        },
        scheme,
    }
}

impl SchemeRegistry {
    /// Every scheme this workspace implements with a generic prover.
    pub fn standard() -> SchemeRegistry {
        let entries = vec![
            entry(
                SchemeId::PLANARITY,
                "planarity",
                "planar connected graphs",
                "O(log n) bits (Theorem 1)",
                true,
                Box::new(PlanarityScheme::new()),
            ),
            entry(
                SchemeId::BIPARTITE,
                "bipartite",
                "bipartite connected graphs",
                "1 bit (folklore)",
                false,
                Box::new(BipartiteScheme::new()),
            ),
            entry(
                SchemeId::TREE,
                "tree",
                "trees",
                "O(log n) bits (folklore)",
                false,
                Box::new(TreeScheme::new()),
            ),
            entry(
                SchemeId::SPANNING_TREE,
                "spanning-tree",
                "all connected graphs (tree substrate)",
                "O(log n) bits (folklore)",
                false,
                Box::new(SpanningTreeScheme::new()),
            ),
            entry(
                SchemeId::PATH,
                "path",
                "path graphs",
                "O(log n) bits (Section 2 warm-up)",
                false,
                Box::new(PathScheme::new()),
            ),
            entry(
                SchemeId::PATH_OUTERPLANAR,
                "path-outerplanar",
                "path-outerplanar graphs",
                "O(log n) bits (Lemma 2)",
                true,
                Box::new(PathOuterplanarScheme::new()),
            ),
            entry(
                SchemeId::NON_PLANARITY,
                "non-planarity",
                "non-planar connected graphs",
                "O(log n) bits (Section 2 folklore)",
                false,
                Box::new(NonPlanarityScheme::new()),
            ),
            entry(
                SchemeId::UNIVERSAL,
                "universal",
                "planar connected graphs (whole-graph baseline)",
                "O(m log n) bits (universal scheme)",
                true,
                Box::new(UniversalScheme::new()),
            ),
            entry(
                SchemeId::MOD_COUNTER,
                "mod-counter",
                "paths of blocks, k = 4 (Lemma 5 instances)",
                "g = 8 bits (mod-2^g counter)",
                false,
                Box::new(BlockPathScheme::new(4, 8)),
            ),
        ];
        let mut entries = entries;
        // mod-counter reconstructs the block chain from identifiers
        entries
            .iter_mut()
            .filter(|e| e.id == SchemeId::MOD_COUNTER)
            .for_each(|e| e.caps.needs_ids = true);
        // planarity is the scheme the dMAM protocol is built for
        // (dpc_interactive::dmam::DmamPlanarity)
        entries
            .iter_mut()
            .filter(|e| e.id == SchemeId::PLANARITY)
            .for_each(|e| e.caps.interactive = true);
        debug_assert!(entries.windows(2).all(|w| w[0].id < w[1].id));
        SchemeRegistry { entries }
    }

    /// A registry restricted to the named schemes (`dpc serve
    /// --schemes a,b,c`). Errors on an unknown name.
    pub fn with_schemes(names: &[&str]) -> Result<SchemeRegistry, String> {
        let all = SchemeRegistry::standard();
        if names.is_empty() {
            return Err("at least one scheme name is required".into());
        }
        for name in names {
            if all.by_name(name).is_none() {
                return Err(format!(
                    "unknown scheme {name:?} (expected one of: {})",
                    all.entries
                        .iter()
                        .map(|e| e.name)
                        .collect::<Vec<_>>()
                        .join("|")
                ));
            }
        }
        let entries = all
            .entries
            .into_iter()
            .filter(|e| names.contains(&e.name))
            .collect();
        Ok(SchemeRegistry { entries })
    }

    /// Looks up a scheme by wire id.
    pub fn get(&self, id: SchemeId) -> Option<&SchemeEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Looks up a scheme by CLI name.
    pub fn by_name(&self, name: &str) -> Option<&SchemeEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The dense registry slot of an id (per-scheme metrics index).
    pub fn slot(&self, id: SchemeId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// All entries, in stable id order.
    pub fn entries(&self) -> &[SchemeEntry] {
        &self.entries
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no scheme is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for SchemeRegistry {
    fn default() -> Self {
        SchemeRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;

    #[test]
    fn standard_registry_is_consistent() {
        let reg = SchemeRegistry::standard();
        assert!(reg.len() >= 9);
        for (slot, e) in reg.entries().iter().enumerate() {
            assert_eq!(e.scheme().name(), e.name, "{}", e.name);
            assert_eq!(reg.by_name(e.name).unwrap().id, e.id);
            assert_eq!(reg.get(e.id).unwrap().name, e.name);
            assert_eq!(reg.slot(e.id), Some(slot));
        }
        assert_eq!(reg.get(SchemeId::PLANARITY).unwrap().name, "planarity");
        assert!(reg.get(SchemeId(999)).is_none());
        assert!(reg.by_name("nosuch").is_none());
    }

    #[test]
    fn every_registered_scheme_proves_some_yes_instance() {
        let reg = SchemeRegistry::standard();
        for e in reg.entries() {
            let g = match e.name {
                "planarity" | "universal" => generators::grid(4, 4),
                "bipartite" => generators::cycle(8),
                "tree" => generators::random_tree(12, 3),
                "spanning-tree" => generators::complete(5),
                "path" | "path-outerplanar" => generators::path(8),
                "non-planarity" => generators::complete(5),
                "mod-counter" => dpc_lowerbounds::blocks::path_of_blocks(4, &[1, 2, 3]).graph,
                other => panic!("no yes-instance wired for {other}"),
            };
            let a = e
                .scheme()
                .prove(&g)
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            let out = dpc_core::harness::run_with_assignment(&e.scheme(), &g, &a);
            assert!(out.all_accept(), "{}", e.name);
        }
    }

    #[test]
    fn only_mod_counter_needs_identifiers() {
        let reg = SchemeRegistry::standard();
        for e in reg.entries() {
            assert_eq!(
                e.caps.needs_ids,
                e.name == "mod-counter",
                "{}: identifier capability",
                e.name
            );
        }
    }

    #[test]
    fn only_planarity_is_interactive() {
        let reg = SchemeRegistry::standard();
        for e in reg.entries() {
            assert_eq!(
                e.caps.interactive,
                e.name == "planarity",
                "{}: interactive capability",
                e.name
            );
        }
    }

    #[test]
    fn restricted_registry() {
        let reg = SchemeRegistry::with_schemes(&["bipartite", "tree"]).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get(SchemeId::PLANARITY).is_none());
        assert!(SchemeRegistry::with_schemes(&["nosuch"]).is_err());
        assert!(SchemeRegistry::with_schemes(&[]).is_err());
    }
}
