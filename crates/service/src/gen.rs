//! Named graph families servable through the Gen request (and shared
//! with the `dpc gen` CLI subcommand).
//!
//! The special family [`DEFAULT_FAMILY`] (`"default"`) routes through
//! the Gen request's scheme id to that scheme's canonical
//! yes-instance generator — `--scheme mod-counter` yields a Lemma 5
//! path of blocks, `--scheme bipartite` a grid, and so on (see
//! [`default_family`]). Concrete family names stay
//! scheme-independent.

use crate::registry::SchemeId;
use dpc_graph::{generators, Graph};

/// Family names accepted by [`make`].
pub const FAMILIES: &[&str] = &[
    "tree",
    "path",
    "cycle",
    "grid",
    "triangulation",
    "planar",
    "outerplanar",
    "k5sub",
    "k33sub",
    "hypercube",
    "planted-k5",
    "planted-k33",
    "gnm",
    "blocks",
];

/// The scheme-routed family name: [`make_scheme`] resolves it to
/// [`default_family`] of the request's scheme id.
pub const DEFAULT_FAMILY: &str = "default";

/// The canonical yes-instance family of a registered scheme — the
/// family whose members the scheme's honest prover always certifies.
/// `None` for ids outside the standard registry.
pub fn default_family(scheme: SchemeId) -> Option<&'static str> {
    Some(match scheme {
        SchemeId::PLANARITY | SchemeId::UNIVERSAL => "triangulation",
        SchemeId::BIPARTITE => "grid",
        SchemeId::TREE => "tree",
        SchemeId::SPANNING_TREE => "gnm",
        SchemeId::PATH | SchemeId::PATH_OUTERPLANAR => "path",
        SchemeId::NON_PLANARITY => "planted-k5",
        SchemeId::MOD_COUNTER => "blocks",
        _ => return None,
    })
}

/// Like [`make`], with the request's scheme id routing the
/// [`DEFAULT_FAMILY`]. The id is looked up in the *standard* id
/// space, not any particular server's registry, so generation keeps
/// working against registry-restricted servers.
pub fn make_scheme(family: &str, n: u32, seed: u64, scheme: SchemeId) -> Result<Graph, String> {
    if family == DEFAULT_FAMILY {
        let resolved = default_family(scheme).ok_or_else(|| {
            format!("scheme id {scheme} has no default family (see `dpc schemes`)")
        })?;
        return make(resolved, n, seed);
    }
    make(family, n, seed)
}

/// Upper bound on requested size: generation is remotely reachable
/// (the Gen request), so `n` must be bounded before any family's
/// arithmetic or allocation sees it.
pub const MAX_GEN_NODES: u32 = 1 << 20;

/// Builds a member of the named family with about `n` nodes.
pub fn make(family: &str, n: u32, seed: u64) -> Result<Graph, String> {
    if n > MAX_GEN_NODES {
        return Err(format!("n = {n} exceeds the limit of {MAX_GEN_NODES}"));
    }
    let g = match family {
        "tree" => generators::random_tree(n, seed),
        "path" => generators::path(n.max(2)),
        "cycle" => generators::cycle(n.max(3)),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as u32;
            generators::grid(side.max(2), side.max(2))
        }
        "triangulation" => generators::stacked_triangulation(n.max(3), seed),
        "planar" => generators::random_planar(n.max(3), 0.5, seed),
        "outerplanar" => generators::random_maximal_outerplanar(n.max(3), seed),
        // for the subdivision families the parameter is the per-edge
        // subdivision count, not the node count: clamp it so the
        // *output* (5 + 10·extra / 6 + 9·extra nodes) stays within the
        // same bound as every other family
        "k5sub" => generators::k5_subdivision(n.min((MAX_GEN_NODES - 5) / 10)),
        "k33sub" => generators::k33_subdivision(n.min((MAX_GEN_NODES - 6) / 9)),
        "hypercube" => {
            let d = (31 - n.max(4).leading_zeros()).clamp(2, 16);
            generators::hypercube(d)
        }
        "planted-k5" => generators::planted_kuratowski(n.max(10), true, 1, seed),
        "planted-k33" => generators::planted_kuratowski(n.max(10), false, 1, seed),
        "gnm" => {
            let n = n.max(5);
            // u64 intermediate: n*(n-1) overflows u32 from n = 65536
            let m = (3 * n as u64).min(n as u64 * (n as u64 - 1) / 2) as u32;
            generators::gnm_connected(n, m, seed)
        }
        // Lemma 5's path of blocks for k = 4 (block size 3): the
        // yes-instances of the mod-counter scheme. `n` is the target
        // node count (3 nodes per block); the seed permutes the
        // ordinary blocks, exercising non-identity identifier layouts.
        // NB the block identifiers are load-bearing (the verifier does
        // id arithmetic) and only travel over the binary wire protocol
        // — graph6 output drops them.
        "blocks" => {
            let p = (n.max(6) / 3).saturating_sub(2).max(1) as usize;
            let mut perm: Vec<usize> = (1..=p).collect();
            // splitmix64-driven Fisher–Yates, deterministic in the seed
            let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            for i in (1..perm.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            dpc_lowerbounds::blocks::path_of_blocks(4, &perm).graph
        }
        _ => {
            return Err(format!(
                "unknown family {family:?} (expected one of: {})",
                FAMILIES.join("|")
            ))
        }
    };
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_family_generates() {
        for &f in FAMILIES {
            let g = make(f, 24, 3).unwrap_or_else(|e| panic!("{f}: {e}"));
            assert!(g.node_count() > 0, "{f}");
            assert!(g.is_connected(), "{f} must be connected");
        }
        assert!(make("nosuch", 10, 0).is_err());
    }

    #[test]
    fn oversized_n_is_rejected_not_generated() {
        // remotely reachable: must error, never panic or allocate
        assert!(make("gnm", u32::MAX, 0).is_err());
        assert!(make("grid", MAX_GEN_NODES + 1, 0).is_err());
        assert!(make("triangulation", u32::MAX, 0).is_err());
    }

    #[test]
    fn subdivision_families_bound_their_output_size() {
        for family in ["k5sub", "k33sub"] {
            let g = make(family, MAX_GEN_NODES, 0).unwrap();
            assert!(
                g.node_count() as u32 <= MAX_GEN_NODES,
                "{family}: {} nodes",
                g.node_count()
            );
        }
    }

    #[test]
    fn hypercube_dimension_tracks_n() {
        assert_eq!(make("hypercube", 16, 0).unwrap().node_count(), 16);
        assert_eq!(make("hypercube", 64, 0).unwrap().node_count(), 64);
    }

    #[test]
    fn every_schemes_default_family_is_a_yes_instance() {
        // the point of per-scheme defaults: `gen default --scheme X`
        // must yield something X's honest prover actually certifies
        let reg = crate::registry::SchemeRegistry::standard();
        for e in reg.entries() {
            let fam =
                default_family(e.id).unwrap_or_else(|| panic!("{}: no default family", e.name));
            assert!(FAMILIES.contains(&fam), "{}: {fam} not listed", e.name);
            let g = make_scheme(DEFAULT_FAMILY, 24, 3, e.id)
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            e.scheme()
                .prove(&g)
                .unwrap_or_else(|err| panic!("{} declines its default family: {err}", e.name));
        }
    }

    #[test]
    fn default_family_requires_a_known_scheme() {
        let err = make_scheme(DEFAULT_FAMILY, 10, 0, SchemeId(999)).unwrap_err();
        assert!(err.contains("no default family"), "{err}");
        // concrete families ignore the scheme id entirely
        let a = make_scheme("grid", 16, 1, SchemeId(999)).unwrap();
        let b = make("grid", 16, 1).unwrap();
        assert_eq!(a.node_count(), b.node_count());
    }
}
