//! Runs proof-labeling schemes through the CONGEST simulator.
//!
//! The verification phase of a PLS is exactly one synchronous round in
//! which every node broadcasts its certificate; the harness wires a
//! [`ProofLabelingScheme`] into the simulator's [`Protocol`] interface so
//! every verification in this workspace goes through the same measured
//! execution path (rounds, message bits).

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::Graph;
use dpc_runtime::{
    get_bytes, get_uvarint, put_uvarint, run_protocol, DecodeError, NodeCtx, Payload, Protocol,
    Step,
};

/// Outcome of running a scheme on a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Per-node verdicts.
    pub verdicts: Vec<bool>,
    /// Rounds of communication used (always 1 for a PLS).
    pub rounds: usize,
    /// Largest message (= certificate) in bits.
    pub max_message_bits: usize,
    /// Total bits sent over all edges and rounds (CONGEST accounting,
    /// straight from the simulator).
    pub total_message_bits: u64,
    /// Largest certificate in bits (same as the message for a PLS).
    pub max_cert_bits: usize,
    /// Total bits across all certificates.
    pub total_cert_bits: usize,
    /// Average certificate size in bits.
    pub avg_cert_bits: f64,
}

impl Outcome {
    /// True iff every node accepted.
    pub fn all_accept(&self) -> bool {
        self.verdicts.iter().all(|&b| b)
    }

    /// Number of rejecting nodes.
    pub fn reject_count(&self) -> usize {
        self.verdicts.iter().filter(|&&b| !b).count()
    }

    /// Appends the wire encoding: scalar fields as varints, then the
    /// per-node verdicts as a packed bitmap. `avg_cert_bits` is not
    /// transmitted — it is recomputed from the totals on decode.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.verdicts.len() as u64);
        put_uvarint(out, self.rounds as u64);
        put_uvarint(out, self.max_message_bits as u64);
        put_uvarint(out, self.total_message_bits);
        put_uvarint(out, self.max_cert_bits as u64);
        put_uvarint(out, self.total_cert_bits as u64);
        let mut byte = 0u8;
        for (i, &v) in self.verdicts.iter().enumerate() {
            if v {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !self.verdicts.len().is_multiple_of(8) {
            out.push(byte);
        }
    }

    /// Decodes an outcome from the front of `buf`, advancing it.
    /// Inverse of [`Outcome::encode_into`]. The node count is bounded
    /// like [`crate::scheme::MAX_WIRE_CERTS`] so a hostile header
    /// cannot force a multi-gigabyte verdict allocation.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Outcome, DecodeError> {
        let n = get_uvarint(buf)? as usize;
        if n > crate::scheme::MAX_WIRE_CERTS {
            return Err(DecodeError::OutOfBits);
        }
        let rounds = get_uvarint(buf)? as usize;
        let max_message_bits = get_uvarint(buf)? as usize;
        let total_message_bits = get_uvarint(buf)?;
        let max_cert_bits = get_uvarint(buf)? as usize;
        let total_cert_bits = get_uvarint(buf)? as usize;
        let bitmap = get_bytes(buf, n.div_ceil(8))?;
        let verdicts = (0..n).map(|i| bitmap[i / 8] >> (i % 8) & 1 == 1).collect();
        Ok(Outcome {
            verdicts,
            rounds,
            max_message_bits,
            total_message_bits,
            max_cert_bits,
            total_cert_bits,
            avg_cert_bits: if n == 0 {
                0.0
            } else {
                total_cert_bits as f64 / n as f64
            },
        })
    }

    /// Merges per-component outcomes back into one graph-level
    /// outcome: verdicts are scattered to each node's original index,
    /// totals are summed and maxima folded with plain integer
    /// arithmetic, so the merge is order-independent and the merged
    /// outcome is byte-identical no matter which machine proved which
    /// component. `parts` must partition `0..n`: each pair carries a
    /// component's original node indices alongside the outcome
    /// measured on its induced subgraph (whose verdict `i` belongs to
    /// original node `nodes[i]`).
    ///
    /// # Panics
    /// If an index is out of range or a part's verdict count does not
    /// match its node list — both are caller bugs, not wire inputs.
    pub fn merge_components(n: usize, parts: &[(Vec<u32>, Outcome)]) -> Outcome {
        let mut merged = Outcome {
            verdicts: vec![false; n],
            rounds: 0,
            max_message_bits: 0,
            total_message_bits: 0,
            max_cert_bits: 0,
            total_cert_bits: 0,
            avg_cert_bits: 0.0,
        };
        for (nodes, outcome) in parts {
            assert_eq!(
                nodes.len(),
                outcome.verdicts.len(),
                "component outcome must cover exactly its nodes"
            );
            for (i, &node) in nodes.iter().enumerate() {
                merged.verdicts[node as usize] = outcome.verdicts[i];
            }
            merged.rounds = merged.rounds.max(outcome.rounds);
            merged.max_message_bits = merged.max_message_bits.max(outcome.max_message_bits);
            merged.total_message_bits += outcome.total_message_bits;
            merged.max_cert_bits = merged.max_cert_bits.max(outcome.max_cert_bits);
            merged.total_cert_bits += outcome.total_cert_bits;
        }
        merged.avg_cert_bits = if n == 0 {
            0.0
        } else {
            merged.total_cert_bits as f64 / n as f64
        };
        merged
    }
}

/// A prove-and-verify result that *retains* the certificate
/// assignment. [`run_pls`] discards the assignment because experiments
/// only need the measurements; the certification service serves the
/// certificates themselves, so it runs through here.
#[derive(Debug, Clone)]
pub struct Certified {
    /// The honest prover's certificate assignment.
    pub assignment: Assignment,
    /// Measured verification outcome under that assignment.
    pub outcome: Outcome,
}

struct PlsProtocol<'a, S> {
    scheme: &'a S,
    assignment: &'a Assignment,
}

struct PlsState {
    cert: Payload,
    verdict: Option<bool>,
}

impl<'a, S: ProofLabelingScheme> Protocol for PlsProtocol<'a, S> {
    type State = PlsState;

    fn init(&self, ctx: &NodeCtx) -> PlsState {
        PlsState {
            cert: self.assignment.certs[ctx.node as usize].clone(),
            verdict: None,
        }
    }

    fn message(&self, state: &PlsState, _round: usize) -> Payload {
        state.cert.clone()
    }

    fn receive(
        &self,
        state: &mut PlsState,
        ctx: &NodeCtx,
        inbox: &[Payload],
        _round: usize,
    ) -> Step {
        let v = self.scheme.verify(ctx, &state.cert, inbox);
        state.verdict = Some(v);
        Step::Output(v)
    }
}

/// Runs the honest prover and then the distributed verifier.
///
/// Returns `Err` when the prover declines (instance outside the class):
/// by soundness this is the *expected* result on no-instances.
pub fn run_pls<S: ProofLabelingScheme>(scheme: &S, g: &Graph) -> Result<Outcome, ProveError> {
    Ok(certify_pls(scheme, g)?.outcome)
}

/// Like [`run_pls`], but returns the certificate assignment alongside
/// the outcome — the entry point of the certification service, where
/// the certificates are the product.
///
/// ```
/// use dpc_core::harness::certify_pls;
/// use dpc_core::schemes::planarity::PlanarityScheme;
///
/// let g = dpc_graph::generators::grid(5, 5);
/// let certified = certify_pls(&PlanarityScheme::new(), &g).unwrap();
/// assert!(certified.outcome.all_accept());
/// assert_eq!(certified.assignment.certs.len(), g.node_count());
/// ```
pub fn certify_pls<S: ProofLabelingScheme>(scheme: &S, g: &Graph) -> Result<Certified, ProveError> {
    let assignment = scheme.prove(g)?;
    let outcome = run_with_assignment(scheme, g, &assignment);
    Ok(Certified {
        assignment,
        outcome,
    })
}

/// Runs the distributed verifier under an arbitrary (possibly forged)
/// certificate assignment — the soundness experiments live here.
pub fn run_with_assignment<S: ProofLabelingScheme>(
    scheme: &S,
    g: &Graph,
    assignment: &Assignment,
) -> Outcome {
    assert_eq!(assignment.certs.len(), g.node_count());
    let proto = PlsProtocol { scheme, assignment };
    let report = run_protocol(&proto, g, 1);
    outcome_from(report, assignment)
}

/// Like [`run_with_assignment`], but through the deep-copy reference
/// executor ([`dpc_runtime::baseline`]): one byte copy per certificate
/// per incident edge. Exists so benches can measure what the zero-copy
/// delivery path saves; results are identical.
pub fn run_with_assignment_deepcopy<S: ProofLabelingScheme>(
    scheme: &S,
    g: &Graph,
    assignment: &Assignment,
) -> Outcome {
    assert_eq!(assignment.certs.len(), g.node_count());
    let proto = PlsProtocol { scheme, assignment };
    let report = dpc_runtime::baseline::run_protocol_deepcopy(&proto, g, 1);
    outcome_from(report, assignment)
}

fn outcome_from(report: dpc_runtime::RunReport, assignment: &Assignment) -> Outcome {
    Outcome {
        verdicts: report.verdicts.iter().map(|v| v.unwrap_or(false)).collect(),
        rounds: report.rounds,
        max_message_bits: report.max_message_bits,
        total_message_bits: report.total_message_bits,
        max_cert_bits: assignment.max_bits(),
        total_cert_bits: assignment.total_bits(),
        avg_cert_bits: assignment.avg_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;
    use dpc_runtime::BitWriter;

    /// Toy scheme: class = all graphs; certificate = the node's degree;
    /// verify checks the certificate matches the observed degree.
    struct DegreeScheme;

    impl ProofLabelingScheme for DegreeScheme {
        fn name(&self) -> &'static str {
            "degree"
        }

        fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
            let certs = g
                .nodes()
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.write_varint(g.degree(v) as u64);
                    Payload::from_writer(w)
                })
                .collect();
            Ok(Assignment { certs })
        }

        fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
            let mut r = own.reader();
            match r.read_varint() {
                Ok(d) => d as usize == ctx.degree() && neighbors.len() == ctx.degree(),
                Err(_) => false,
            }
        }
    }

    #[test]
    fn honest_run_accepts_in_one_round() {
        let g = generators::grid(3, 3);
        let out = run_pls(&DegreeScheme, &g).unwrap();
        assert!(out.all_accept());
        assert_eq!(out.rounds, 1);
        assert!(out.max_cert_bits >= 8);
        assert_eq!(out.max_cert_bits, out.max_message_bits);
    }

    #[test]
    fn certify_retains_the_assignment() {
        let g = generators::grid(3, 4);
        let certified = certify_pls(&DegreeScheme, &g).unwrap();
        assert!(certified.outcome.all_accept());
        assert_eq!(certified.assignment.certs.len(), g.node_count());
        assert_eq!(
            certified.outcome.total_cert_bits,
            certified.assignment.total_bits()
        );
    }

    #[test]
    fn outcome_wire_roundtrip() {
        for n in [1u32, 8, 9, 17] {
            let g = generators::path(n);
            let mut out = run_pls(&DegreeScheme, &g).unwrap();
            if n > 2 {
                out.verdicts[1] = false; // exercise a mixed bitmap
            }
            let mut buf = Vec::new();
            out.encode_into(&mut buf);
            let mut cursor = buf.as_slice();
            let back = Outcome::decode_from(&mut cursor).unwrap();
            assert!(cursor.is_empty());
            assert_eq!(back, out);
        }
    }

    #[test]
    fn deepcopy_harness_agrees_with_zero_copy() {
        let g = generators::grid(4, 5);
        let a = DegreeScheme.prove(&g).unwrap();
        let fast = run_with_assignment(&DegreeScheme, &g, &a);
        let slow = run_with_assignment_deepcopy(&DegreeScheme, &g, &a);
        assert_eq!(fast, slow);
    }

    #[test]
    fn forged_assignment_rejected_somewhere() {
        let g = generators::grid(3, 3);
        let mut a = DegreeScheme.prove(&g).unwrap();
        // corrupt node 4's certificate (degree lie)
        let mut w = BitWriter::new();
        w.write_varint(99);
        a.certs[4] = Payload::from_writer(w);
        let out = run_with_assignment(&DegreeScheme, &g, &a);
        assert!(!out.all_accept());
        assert_eq!(out.reject_count(), 1);
    }
}
