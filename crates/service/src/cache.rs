//! Sharded, content-addressed certificate cache with LRU eviction.
//!
//! Certificates are immutable once proved, so the cache is a pure
//! content-addressed store: canonical graph hash ([`dpc_graph::canon`])
//! → `Arc`-shared prove result. A hit hands out a reference-counted
//! handle to the same `Assignment` (whose payloads are themselves
//! `Arc<[u8]>`-backed) plus the pre-encoded wire suffix — no byte of
//! certificate is ever re-proved or re-encoded for a hit.
//!
//! Concurrency: the key space is striped over `N` independently locked
//! shards (selected by the low bits of the hash), so concurrent
//! lookups of different graphs do not contend. Eviction is LRU with a
//! byte budget per shard, implemented with a lazy recency queue:
//! every touch appends `(key, tick)` and stale queue entries (older
//! ticks than the slot's) are skipped on eviction and periodically
//! compacted, keeping both touch and eviction O(1) amortized.

use crate::wire;
use dpc_core::harness::Outcome;
use dpc_core::scheme::Assignment;
use dpc_graph::canon::GraphHash;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cached prove result: either certificates or the prover's refusal.
#[derive(Debug)]
pub enum ProveResult {
    /// Yes-instance: the assignment and its measured outcome.
    Certified {
        /// The honest prover's certificates.
        assignment: Assignment,
        /// Verification outcome under that assignment.
        outcome: Outcome,
    },
    /// No-instance (or malformed network): the refusal, cached so
    /// repeated no-instance queries skip the planarity test too.
    Declined {
        /// The prover's reason.
        reason: String,
    },
}

/// An immutable cache entry: the result, its pre-encoded wire suffix
/// (what a Certified/Declined response body contains after the
/// `cached` flag), and the *keyed bytes* it was proved for — the
/// scheme id followed by the canonical wire encoding of the graph.
/// The keyed bytes are compared on every hit, so a 128-bit hash
/// collision (FNV-1a is not collision-resistant) can never serve one
/// graph's certificates for another — and, because the scheme id is
/// part of the bytes, a certificate proved under one scheme can never
/// answer a lookup under another.
#[derive(Debug)]
pub struct CacheEntry {
    /// The prove result.
    pub result: ProveResult,
    /// Pre-encoded response suffix; a hit memcpys this shared buffer.
    pub suffix: Vec<u8>,
    /// Keyed bytes: scheme id + canonical wire encoding of the proved
    /// graph (collision and cross-scheme guard).
    pub keyed: Vec<u8>,
}

impl CacheEntry {
    /// Builds an entry for the given keyed bytes (scheme id +
    /// canonically encoded graph), encoding the wire suffix once.
    pub fn new(result: ProveResult, keyed: Vec<u8>) -> Self {
        let suffix = match &result {
            ProveResult::Certified {
                assignment,
                outcome,
            } => wire::encode_certified_suffix(outcome, assignment),
            ProveResult::Declined { reason } => wire::encode_declined_suffix(reason),
        };
        CacheEntry {
            result,
            suffix,
            keyed,
        }
    }

    /// Builds an entry from an *already encoded* wire suffix (the
    /// warm-restart path: a [`crate::store::StoreRecord`] read back
    /// from disk reuses its stored suffix byte-for-byte, so a
    /// certificate served after a restart is provably the same bytes
    /// the prover produced before it). The caller is responsible for
    /// `suffix` actually being the encoding of `result`.
    pub fn with_suffix(result: ProveResult, suffix: Vec<u8>, keyed: Vec<u8>) -> Self {
        CacheEntry {
            result,
            suffix,
            keyed,
        }
    }

    /// Bytes charged against the shard budget: certificate payloads
    /// plus the real per-payload overhead (`Payload` struct in the
    /// `Vec` + `Arc<[u8]>` allocation header), the verdict vector, both
    /// encoded buffers, and fixed bookkeeping.
    pub(crate) fn cost(&self) -> usize {
        let payload = match &self.result {
            ProveResult::Certified {
                assignment,
                outcome,
            } => assignment.byte_size() + assignment.certs.len() * 56 + outcome.verdicts.len(),
            // the reason lives (only) in the pre-encoded suffix
            ProveResult::Declined { .. } => 0,
        };
        payload + self.suffix.len() + self.keyed.len() + 96
    }
}

struct Slot {
    entry: Arc<CacheEntry>,
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Slot>,
    /// Recency queue of `(key, tick)`; entries whose tick no longer
    /// matches the slot's `last_used` are stale and skipped.
    recency: VecDeque<(u128, u64)>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: u128) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.last_used = tick;
        }
        self.recency.push_back((key, tick));
        // compact when stale entries dominate the queue
        if self.recency.len() > 4 * self.map.len() + 16 {
            let map = &self.map;
            self.recency
                .retain(|&(k, t)| map.get(&k).is_some_and(|s| s.last_used == t));
        }
    }

    fn evict_to(&mut self, budget: usize, evictions: &AtomicU64) {
        while self.bytes > budget && self.map.len() > 1 {
            match self.recency.pop_front() {
                Some((key, tick)) => {
                    let live = self.map.get(&key).is_some_and(|s| s.last_used == tick);
                    if live {
                        let slot = self.map.remove(&key).expect("checked above");
                        self.bytes -= slot.cost;
                        evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }
}

/// Cache sizing.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of lock stripes (rounded up to a power of two).
    pub shards: usize,
    /// Total byte budget across all shards.
    pub byte_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            byte_budget: 256 << 20,
        }
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: u64,
    /// Bytes charged against the budget.
    pub bytes: u64,
}

/// The sharded certificate cache.
pub struct CertCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CertCache {
    /// An empty cache with the given sizing.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        CertCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (config.byte_budget / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: GraphHash) -> &Mutex<Shard> {
        &self.shards[key.low64() as usize & (self.shards.len() - 1)]
    }

    /// Looks up a prove result for the given key and keyed bytes
    /// (scheme id + canonical wire encoding), refreshing its recency.
    /// The stored bytes are compared, so a hash collision — or a
    /// lookup under a different scheme — reads as a miss rather than
    /// serving the wrong certificates. Counts a hit or a miss.
    pub fn lookup(&self, key: GraphHash, keyed: &[u8]) -> Option<Arc<CacheEntry>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.get(&key.0) {
            Some(slot) if slot.entry.keyed == keyed => {
                let entry = Arc::clone(&slot.entry);
                shard.touch(key.0);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a prove result, evicting LRU entries past the byte
    /// budget. If the key is already present with the same keyed bytes
    /// (two workers proved the same graph concurrently) the existing
    /// entry wins, so handles already given out stay canonical; on a
    /// hash collision (same key, different bytes) the incumbent also
    /// stays and the new entry is served uncached. The returned entry
    /// is the one to answer with.
    pub fn insert(&self, key: GraphHash, entry: Arc<CacheEntry>) -> Arc<CacheEntry> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(existing) = shard.map.get(&key.0) {
            return if existing.entry.keyed == entry.keyed {
                Arc::clone(&existing.entry)
            } else {
                entry // collision: serve fresh, keep the incumbent
            };
        }
        let cost = entry.cost();
        shard.map.insert(
            key.0,
            Slot {
                entry: Arc::clone(&entry),
                cost,
                last_used: 0,
            },
        );
        shard.bytes += cost;
        shard.touch(key.0);
        shard.evict_to(self.shard_budget, &self.evictions);
        entry
    }

    /// Removes an entry by key (the quarantine path of the store
    /// auditor). Stale recency-queue entries for the key are left
    /// behind; eviction and compaction already skip them. Returns
    /// true if an entry was removed.
    pub fn remove(&self, key: GraphHash) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.remove(&key.0) {
            Some(slot) => {
                shard.bytes -= slot.cost;
                true
            }
            None => false,
        }
    }

    /// A snapshot of every live entry (the hot half of
    /// [`crate::store::CertStore::iter`]); the shard locks are taken
    /// one at a time, so the snapshot is per-shard consistent only.
    pub(crate) fn entries_snapshot(&self) -> Vec<Arc<CacheEntry>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            out.extend(shard.map.values().map(|slot| Arc::clone(&slot.entry)));
        }
        out
    }

    /// Counters plus live totals.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries += shard.map.len() as u64;
            bytes += shard.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::harness::certify_pls;
    use dpc_core::schemes::planarity::PlanarityScheme;
    use dpc_graph::canon::graph_hash;
    use dpc_graph::generators;

    fn entry_for(n: u32, seed: u64) -> (GraphHash, Arc<CacheEntry>) {
        let g = generators::stacked_triangulation(n, seed);
        let certified = certify_pls(&PlanarityScheme::new(), &g).unwrap();
        let mut bytes = Vec::new();
        wire::encode_graph(&mut bytes, &g);
        let entry = CacheEntry::new(
            ProveResult::Certified {
                assignment: certified.assignment,
                outcome: certified.outcome,
            },
            bytes,
        );
        (graph_hash(&g), Arc::new(entry))
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = CertCache::new(CacheConfig::default());
        let (key, entry) = entry_for(20, 1);
        cache.insert(key, Arc::clone(&entry));
        let hit = cache.lookup(key, &entry.keyed).expect("inserted");
        assert!(Arc::ptr_eq(&hit, &entry), "a hit is a handle clone");
        assert!(cache
            .lookup(graph_hash(&generators::cycle(9)), b"")
            .is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn duplicate_insert_keeps_the_first_entry() {
        let cache = CertCache::new(CacheConfig::default());
        let (key, first) = entry_for(20, 1);
        let (_, second) = entry_for(20, 1);
        cache.insert(key, Arc::clone(&first));
        let kept = cache.insert(key, second);
        assert!(Arc::ptr_eq(&kept, &first));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // single shard, budget for ~2 entries
        let (key_a, a) = entry_for(30, 1);
        let (key_b, b) = entry_for(30, 2);
        let (key_c, c) = entry_for(30, 3);
        let budget = a.cost() + b.cost() + c.cost() / 2;
        let cache = CertCache::new(CacheConfig {
            shards: 1,
            byte_budget: budget,
        });
        let (a_graph, b_graph, c_graph) = (a.keyed.clone(), b.keyed.clone(), c.keyed.clone());
        cache.insert(key_a, a);
        cache.insert(key_b, b);
        assert!(
            cache.lookup(key_a, &a_graph).is_some(),
            "refresh a: b is now LRU"
        );
        cache.insert(key_c, c);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(key_b, &b_graph).is_none(), "b was evicted");
        assert!(cache.lookup(key_a, &a_graph).is_some());
        assert!(cache.lookup(key_c, &c_graph).is_some());
    }

    #[test]
    fn hash_collision_reads_as_a_miss_and_keeps_the_incumbent() {
        let cache = CertCache::new(CacheConfig::default());
        let (key, first) = entry_for(20, 1);
        let (_, other) = entry_for(25, 2);
        cache.insert(key, Arc::clone(&first));
        // simulate a colliding key: same hash, different graph bytes
        assert!(cache.lookup(key, &other.keyed).is_none());
        let served = cache.insert(key, Arc::clone(&other));
        assert!(Arc::ptr_eq(&served, &other), "collision served uncached");
        let kept = cache.lookup(key, &first.keyed).expect("incumbent intact");
        assert!(Arc::ptr_eq(&kept, &first));
    }

    #[test]
    fn scheme_prefix_isolates_identical_graphs() {
        // the server keys entries by (scheme id, graph): same graph,
        // different scheme prefix = different key AND different bytes,
        // so neither lookup can see the other's entry
        use dpc_graph::canon::hash_bytes;
        let cache = CertCache::new(CacheConfig::default());
        let g = generators::grid(4, 4);
        let mut graph_bytes = Vec::new();
        wire::encode_graph(&mut graph_bytes, &g);
        let keyed = |scheme: u64| {
            let mut b = Vec::new();
            dpc_runtime::put_uvarint(&mut b, scheme);
            b.extend_from_slice(&graph_bytes);
            b
        };
        let (ka, kb) = (hash_bytes(&keyed(0)), hash_bytes(&keyed(1)));
        assert_ne!(ka, kb);
        let entry = Arc::new(CacheEntry::new(
            ProveResult::Declined {
                reason: "scheme 0".into(),
            },
            keyed(0),
        ));
        cache.insert(ka, entry);
        assert!(cache.lookup(ka, &keyed(0)).is_some());
        assert!(cache.lookup(kb, &keyed(1)).is_none());
        // even a forced same-hash probe with the other scheme's bytes
        // misses on the byte guard
        assert!(cache.lookup(ka, &keyed(1)).is_none());
    }

    #[test]
    fn byte_budget_is_respected() {
        let (_, probe) = entry_for(25, 0);
        let per_entry = probe.cost();
        let cache = CertCache::new(CacheConfig {
            shards: 1,
            byte_budget: per_entry * 3,
        });
        for seed in 0..20u64 {
            let (key, entry) = entry_for(25, seed);
            cache.insert(key, entry);
        }
        let stats = cache.stats();
        assert!(
            stats.bytes <= per_entry as u64 * 4,
            "{} bytes exceeds ~3 entries of {per_entry}",
            stats.bytes
        );
        assert!(stats.evictions >= 16);
        assert!(stats.entries <= 4);
    }

    #[test]
    fn shards_spread_keys() {
        let cache = CertCache::new(CacheConfig {
            shards: 8,
            byte_budget: 1 << 30,
        });
        for seed in 0..32u64 {
            let (key, entry) = entry_for(15, seed);
            cache.insert(key, entry);
        }
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(populated >= 4, "only {populated}/8 shards populated");
    }

    #[test]
    fn recency_queue_compacts() {
        let cache = CertCache::new(CacheConfig {
            shards: 1,
            byte_budget: 1 << 30,
        });
        let (key, entry) = entry_for(15, 0);
        let graph = entry.keyed.clone();
        cache.insert(key, entry);
        for _ in 0..1000 {
            cache.lookup(key, &graph);
        }
        let shard = cache.shards[0].lock().unwrap();
        assert!(
            shard.recency.len() <= 4 * shard.map.len() + 17,
            "queue grew unboundedly: {}",
            shard.recency.len()
        );
    }
}
