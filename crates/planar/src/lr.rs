//! Left-right planarity test with embedding extraction.
//!
//! Implementation of the de Fraysseix–Rosenstiehl planarity criterion in
//! Brandes' formulation ("The left-right planarity test"), the same
//! algorithm used by mature graph libraries. Three passes, all
//! implemented **iteratively** (explicit DFS stacks) so graphs with
//! hundreds of thousands of nodes do not overflow the call stack:
//!
//! 1. *orientation*: DFS-orient the graph, computing `height`, `lowpt`,
//!    `lowpt2` and the `nesting_depth` used to order adjacency lists;
//! 2. *testing*: process back edges with a stack of conflict pairs,
//!    rejecting exactly when two return edges are forced to the same side;
//! 3. *embedding*: resolve sides via `ref` chains and build the rotation
//!    system by inserting back half-edges next to `left_ref`/`right_ref`.
//!
//! The returned [`RotationSystem`] can be independently certified planar
//! via [`RotationSystem::euler_check`] — the test-suite does this on every
//! produced embedding, so the completeness of the whole pipeline never
//! rests on trusting this module alone.

use crate::embedding::RotationSystem;
use dpc_graph::{Graph, NodeId};

/// Result of the planarity test.
#[derive(Debug, Clone)]
pub enum Planarity {
    /// The graph is planar; a combinatorial embedding is attached.
    Planar(RotationSystem),
    /// The graph contains a `K5` or `K3,3` subdivision.
    NonPlanar,
}

impl Planarity {
    /// True if planar.
    pub fn is_planar(&self) -> bool {
        matches!(self, Planarity::Planar(_))
    }

    /// The embedding, if planar.
    pub fn into_embedding(self) -> Option<RotationSystem> {
        match self {
            Planarity::Planar(r) => Some(r),
            Planarity::NonPlanar => None,
        }
    }
}

/// Convenience wrapper: just the boolean answer.
pub fn is_planar(g: &Graph) -> bool {
    planarity(g).is_planar()
}

const NONE: u32 = u32::MAX;

/// Tests planarity and extracts a combinatorial embedding.
///
/// Works on any simple graph (connected or not; each component is
/// embedded independently). `O((n + m) log n)` from adjacency sorting.
pub fn planarity(g: &Graph) -> Planarity {
    let n = g.node_count();
    let m = g.edge_count();
    if n <= 2 || m <= 2 {
        // trivially planar: any rotation works
        let rot: Vec<Vec<NodeId>> = (0..n).map(|v| g.neighbors(v as NodeId).collect()).collect();
        return Planarity::Planar(RotationSystem::new(rot, m));
    }
    if m > 3 * n - 6 {
        return Planarity::NonPlanar; // Euler bound
    }
    let mut st = LrState::new(g);
    st.orient();
    st.sort_adjacency();
    if !st.test() {
        return Planarity::NonPlanar;
    }
    Planarity::Planar(st.embed())
}

/// One conflict-pair interval: a range of back edges, identified by its
/// lowest and highest edge (or empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    low: u32,
    high: u32,
}

impl Interval {
    const EMPTY: Interval = Interval {
        low: NONE,
        high: NONE,
    };

    fn is_empty(&self) -> bool {
        self.low == NONE && self.high == NONE
    }
}

/// A conflict pair of intervals (left and right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConflictPair {
    l: Interval,
    r: Interval,
}

impl ConflictPair {
    fn swap(&mut self) {
        std::mem::swap(&mut self.l, &mut self.r);
    }
}

struct LrState<'a> {
    g: &'a Graph,
    n: usize,
    m: usize,
    /// orientation of each undirected edge: tail -> head
    tail: Vec<u32>,
    head: Vec<u32>,
    oriented: Vec<bool>,
    /// per node
    height: Vec<u32>,
    parent_edge: Vec<u32>,
    roots: Vec<u32>,
    /// per edge
    lowpt: Vec<u32>,
    lowpt2: Vec<u32>,
    nesting_depth: Vec<i64>,
    lowpt_edge: Vec<u32>,
    ref_: Vec<u32>,
    side: Vec<i8>,
    stack_bottom: Vec<usize>,
    /// ordered outgoing adjacency (edge ids), sorted by nesting depth
    out_adj: Vec<Vec<u32>>,
    /// conflict-pair stack
    s: Vec<ConflictPair>,
}

impl<'a> LrState<'a> {
    fn new(g: &'a Graph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        LrState {
            g,
            n,
            m,
            tail: vec![NONE; m],
            head: vec![NONE; m],
            oriented: vec![false; m],
            height: vec![NONE; n],
            parent_edge: vec![NONE; n],
            roots: Vec::new(),
            lowpt: vec![0; m],
            lowpt2: vec![0; m],
            nesting_depth: vec![0; m],
            lowpt_edge: vec![NONE; m],
            ref_: vec![NONE; m],
            side: vec![1; m],
            stack_bottom: vec![0; m],
            out_adj: vec![Vec::new(); n],
            s: Vec::new(),
        }
    }

    /// Phase 1: DFS orientation (iterative).
    fn orient(&mut self) {
        let mut ind = vec![0usize; self.n];
        let mut skip_init = vec![false; self.m];
        for root in 0..self.n as u32 {
            if self.height[root as usize] != NONE {
                continue;
            }
            self.height[root as usize] = 0;
            self.roots.push(root);
            let mut dfs_stack = vec![root];
            while let Some(v) = dfs_stack.pop() {
                let e = self.parent_edge[v as usize];
                let adj = self.g.adjacency(v);
                let mut descended = false;
                while ind[v as usize] < adj.len() {
                    let (w, eid) = adj[ind[v as usize]];
                    let ei = eid as usize;
                    if !skip_init[ei] {
                        if self.oriented[ei] {
                            ind[v as usize] += 1;
                            continue;
                        }
                        self.oriented[ei] = true;
                        self.tail[ei] = v;
                        self.head[ei] = w;
                        self.lowpt[ei] = self.height[v as usize];
                        self.lowpt2[ei] = self.height[v as usize];
                        if self.height[w as usize] == NONE {
                            // tree edge: descend
                            self.parent_edge[w as usize] = eid;
                            self.height[w as usize] = self.height[v as usize] + 1;
                            dfs_stack.push(v);
                            dfs_stack.push(w);
                            skip_init[ei] = true;
                            descended = true;
                            break;
                        } else {
                            // back edge
                            self.lowpt[ei] = self.height[w as usize];
                        }
                    }
                    // post-processing of edge ei (after child return or
                    // immediately for back edges)
                    self.nesting_depth[ei] = 2 * self.lowpt[ei] as i64;
                    if self.lowpt2[ei] < self.height[v as usize] {
                        self.nesting_depth[ei] += 1; // chordal
                    }
                    if e != NONE {
                        let eu = e as usize;
                        if self.lowpt[ei] < self.lowpt[eu] {
                            self.lowpt2[eu] = self.lowpt[eu].min(self.lowpt2[ei]);
                            self.lowpt[eu] = self.lowpt[ei];
                        } else if self.lowpt[ei] > self.lowpt[eu] {
                            self.lowpt2[eu] = self.lowpt2[eu].min(self.lowpt[ei]);
                        } else {
                            self.lowpt2[eu] = self.lowpt2[eu].min(self.lowpt2[ei]);
                        }
                    }
                    ind[v as usize] += 1;
                }
                let _ = descended;
            }
        }
    }

    /// Sorts outgoing adjacencies by nesting depth.
    fn sort_adjacency(&mut self) {
        for v in 0..self.n {
            self.out_adj[v].clear();
        }
        for e in 0..self.m {
            if self.oriented[e] {
                self.out_adj[self.tail[e] as usize].push(e as u32);
            }
        }
        for v in 0..self.n {
            let nd = &self.nesting_depth;
            self.out_adj[v].sort_by_key(|&e| nd[e as usize]);
        }
    }

    fn top(&self) -> &ConflictPair {
        self.s.last().expect("non-empty conflict stack")
    }

    fn conflicting(&self, i: Interval, b: u32) -> bool {
        !i.is_empty() && self.lowpt[i.high as usize] > self.lowpt[b as usize]
    }

    fn lowest(&self, p: &ConflictPair) -> u32 {
        if p.l.is_empty() {
            return self.lowpt[p.r.low as usize];
        }
        if p.r.is_empty() {
            return self.lowpt[p.l.low as usize];
        }
        self.lowpt[p.l.low as usize].min(self.lowpt[p.r.low as usize])
    }

    /// Phase 2: testing (iterative DFS).
    fn test(&mut self) -> bool {
        let mut ind = vec![0usize; self.n];
        let mut skip_init = vec![false; self.m];
        for ri in 0..self.roots.len() {
            let root = self.roots[ri];
            let mut dfs_stack = vec![root];
            while let Some(v) = dfs_stack.pop() {
                let e = self.parent_edge[v as usize];
                let mut skip_final = false;
                while ind[v as usize] < self.out_adj[v as usize].len() {
                    let eid = self.out_adj[v as usize][ind[v as usize]];
                    let ei = eid as usize;
                    let w = self.head[ei];
                    if !skip_init[ei] {
                        self.stack_bottom[ei] = self.s.len();
                        if eid == self.parent_edge[w as usize] {
                            // tree edge: descend, revisit v afterwards
                            dfs_stack.push(v);
                            dfs_stack.push(w);
                            skip_init[ei] = true;
                            skip_final = true;
                            break;
                        } else {
                            // back edge
                            self.lowpt_edge[ei] = eid;
                            self.s.push(ConflictPair {
                                l: Interval::EMPTY,
                                r: Interval {
                                    low: eid,
                                    high: eid,
                                },
                            });
                        }
                    }
                    if self.lowpt[ei] < self.height[v as usize] {
                        // ei has a return edge
                        if eid == self.out_adj[v as usize][0] {
                            debug_assert_ne!(e, NONE);
                            self.lowpt_edge[e as usize] = self.lowpt_edge[ei];
                        } else if !self.add_constraints(eid, e) {
                            return false;
                        }
                    }
                    ind[v as usize] += 1;
                }
                if !skip_final && e != NONE {
                    self.remove_back_edges(e);
                }
            }
        }
        true
    }

    /// Integrates the return edges of `ei` into the conflict stack,
    /// merging with the constraints of `e`'s earlier children.
    fn add_constraints(&mut self, eid: u32, e: u32) -> bool {
        let ei = eid as usize;
        let eu = e as usize;
        let mut p = ConflictPair {
            l: Interval::EMPTY,
            r: Interval::EMPTY,
        };
        // merge return edges of ei into p.r
        loop {
            let mut q = self.s.pop().expect("stack underflow merging returns");
            if !q.l.is_empty() {
                q.swap();
            }
            if !q.l.is_empty() {
                return false; // not planar
            }
            if self.lowpt[q.r.low as usize] > self.lowpt[eu] {
                // merge intervals
                if p.r.is_empty() {
                    p.r.high = q.r.high;
                } else {
                    self.ref_[p.r.low as usize] = q.r.high;
                }
                p.r.low = q.r.low;
            } else {
                // align
                self.ref_[q.r.low as usize] = self.lowpt_edge[eu];
            }
            if self.s.len() == self.stack_bottom[ei] {
                break;
            }
        }
        // merge conflicting return edges of e1..e_{i-1} into p.l
        while !self.s.is_empty()
            && (self.conflicting(self.top().l, eid) || self.conflicting(self.top().r, eid))
        {
            let mut q = self.s.pop().unwrap();
            if self.conflicting(q.r, eid) {
                q.swap();
            }
            if self.conflicting(q.r, eid) {
                return false; // not planar
            }
            // merge interval below lowpt(ei) into p.r
            if p.r.low != NONE {
                self.ref_[p.r.low as usize] = q.r.high;
            }
            if q.r.low != NONE {
                p.r.low = q.r.low;
            }
            if p.l.is_empty() {
                p.l.high = q.l.high;
            } else {
                self.ref_[p.l.low as usize] = q.l.high;
            }
            p.l.low = q.l.low;
        }
        if !(p.l.is_empty() && p.r.is_empty()) {
            self.s.push(p);
        }
        true
    }

    /// Trims back edges ending at the parent of `e`'s tail and assigns
    /// `ref(e)` to the highest remaining return edge.
    fn remove_back_edges(&mut self, e: u32) {
        let eu = e as usize;
        let u = self.tail[eu];
        let hu = self.height[u as usize];
        // drop entire conflict pairs whose lowest return is at u
        while let Some(top) = self.s.last() {
            if self.lowest(top) != hu {
                break;
            }
            let p = self.s.pop().unwrap();
            if p.l.low != NONE {
                self.side[p.l.low as usize] = -1;
            }
        }
        // trim one-sided intervals of the next pair
        if let Some(mut p) = self.s.pop() {
            while p.l.high != NONE && self.head[p.l.high as usize] == u {
                p.l.high = self.ref_[p.l.high as usize];
            }
            if p.l.high == NONE && p.l.low != NONE {
                self.ref_[p.l.low as usize] = p.r.low;
                self.side[p.l.low as usize] = -1;
                p.l.low = NONE;
            }
            while p.r.high != NONE && self.head[p.r.high as usize] == u {
                p.r.high = self.ref_[p.r.high as usize];
            }
            if p.r.high == NONE && p.r.low != NONE {
                self.ref_[p.r.low as usize] = p.l.low;
                self.side[p.r.low as usize] = -1;
                p.r.low = NONE;
            }
            self.s.push(p);
        }
        // side of e is the side of the highest return edge
        if self.lowpt[eu] < hu {
            // e has a return edge
            let top = self.top();
            let hl = top.l.high;
            let hr = top.r.high;
            if hl != NONE && (hr == NONE || self.lowpt[hl as usize] > self.lowpt[hr as usize]) {
                self.ref_[eu] = hl;
            } else {
                self.ref_[eu] = hr;
            }
        }
    }

    /// Resolves the side of edge `e` by following `ref` chains
    /// (iterative, memoizing by clearing refs).
    fn resolve_side(&mut self, e: u32) -> i8 {
        let mut chain = vec![e];
        while let Some(&top) = chain.last() {
            match self.ref_[top as usize] {
                r if r == NONE => break,
                r => chain.push(r),
            }
        }
        // walk back, folding signs
        let mut i = chain.len();
        while i >= 2 {
            i -= 1;
            let parent = chain[i];
            let child = chain[i - 1];
            self.side[child as usize] *= self.side[parent as usize];
            self.ref_[child as usize] = NONE;
        }
        self.side[e as usize]
    }

    /// Phase 3: builds the rotation system.
    fn embed(&mut self) -> RotationSystem {
        // apply signs to nesting depths
        for e in 0..self.m as u32 {
            if self.oriented[e as usize] {
                let s = self.resolve_side(e) as i64;
                self.nesting_depth[e as usize] *= s;
            }
        }
        self.sort_adjacency_signed();

        let mut rot = RotBuilder::new(self.n);
        // initial rotations: outgoing edges in left-right order; remember
        // the slot of each outgoing half-edge for ref-based insertion
        let mut out_slot = vec![NONE; self.m];
        for v in 0..self.n as u32 {
            let mut prev = NONE;
            for &e in &self.out_adj[v as usize] {
                let w = self.head[e as usize];
                prev = if prev == NONE {
                    rot.push_singleton_or_back(v, w)
                } else {
                    rot.insert_after(v, prev, w)
                };
                out_slot[e as usize] = prev;
            }
        }
        // DFS to place incoming half-edges. When descending from v into w
        // via tree edge e, both refs of v become e's slot: back edges
        // returning to v from the subtree of w land next to e (Brandes,
        // Algorithm 5).
        let mut left_ref = vec![NONE; self.n]; // slot ids in the owner's list
        let mut right_ref = vec![NONE; self.n];
        let mut ind = vec![0usize; self.n];
        for ri in 0..self.roots.len() {
            let root = self.roots[ri];
            let mut dfs_stack = vec![root];
            while let Some(v) = dfs_stack.pop() {
                while ind[v as usize] < self.out_adj[v as usize].len() {
                    let eid = self.out_adj[v as usize][ind[v as usize]];
                    ind[v as usize] += 1;
                    let ei = eid as usize;
                    let w = self.head[ei];
                    if eid == self.parent_edge[w as usize] {
                        // tree edge: parent half-edge becomes first at w
                        rot.insert_first(w, v);
                        left_ref[v as usize] = out_slot[ei];
                        right_ref[v as usize] = out_slot[ei];
                        dfs_stack.push(v);
                        dfs_stack.push(w);
                        break;
                    } else {
                        // back edge: insert at the ancestor w, next to the
                        // tree edge leading from w toward v
                        if self.side[ei] == 1 {
                            rot.insert_after(w, right_ref[w as usize], v);
                        } else {
                            let slot = rot.insert_before(w, left_ref[w as usize], v);
                            left_ref[w as usize] = slot;
                        }
                    }
                }
            }
        }
        RotationSystem::new(rot.into_lists(), self.m)
    }

    fn sort_adjacency_signed(&mut self) {
        for v in 0..self.n {
            let nd = &self.nesting_depth;
            self.out_adj[v].sort_by_key(|&e| nd[e as usize]);
        }
    }
}

/// Cyclic doubly-linked rotation lists with a `first` pointer per node,
/// backed by one arena.
struct RotBuilder {
    nbr: Vec<u32>,
    prev: Vec<u32>,
    next: Vec<u32>,
    first: Vec<u32>,
    count: Vec<usize>,
}

impl RotBuilder {
    fn new(n: usize) -> Self {
        RotBuilder {
            nbr: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            first: vec![NONE; n],
            count: vec![0; n],
        }
    }

    fn alloc(&mut self, w: u32) -> u32 {
        self.nbr.push(w);
        self.prev.push(NONE);
        self.next.push(NONE);
        (self.nbr.len() - 1) as u32
    }

    /// Appends `w` at the "end" of `v`'s cyclic list (just before first).
    fn push_singleton_or_back(&mut self, v: u32, w: u32) -> u32 {
        let s = self.alloc(w);
        let f = self.first[v as usize];
        if f == NONE {
            self.prev[s as usize] = s;
            self.next[s as usize] = s;
            self.first[v as usize] = s;
        } else {
            let last = self.prev[f as usize];
            self.next[last as usize] = s;
            self.prev[s as usize] = last;
            self.next[s as usize] = f;
            self.prev[f as usize] = s;
        }
        self.count[v as usize] += 1;
        s
    }

    /// Inserts `w` immediately after slot `after` in `v`'s list.
    fn insert_after(&mut self, v: u32, after: u32, w: u32) -> u32 {
        debug_assert_ne!(after, NONE);
        let s = self.alloc(w);
        let nx = self.next[after as usize];
        self.next[after as usize] = s;
        self.prev[s as usize] = after;
        self.next[s as usize] = nx;
        self.prev[nx as usize] = s;
        self.count[v as usize] += 1;
        s
    }

    /// Inserts `w` immediately before slot `before` (no `first` update).
    fn insert_before(&mut self, v: u32, before: u32, w: u32) -> u32 {
        debug_assert_ne!(before, NONE);
        let pv = self.prev[before as usize];
        self.insert_after(v, pv, w)
    }

    /// Inserts `w` before the current first slot and makes it first.
    fn insert_first(&mut self, v: u32, w: u32) -> u32 {
        let f = self.first[v as usize];
        let s = if f == NONE {
            self.push_singleton_or_back(v, w)
        } else {
            self.insert_before(v, f, w)
        };
        self.first[v as usize] = s;
        s
    }

    fn into_lists(self) -> Vec<Vec<u32>> {
        let n = self.first.len();
        let mut out = Vec::with_capacity(n);
        for v in 0..n {
            let mut l = Vec::with_capacity(self.count[v]);
            let f = self.first[v];
            if f != NONE {
                let mut s = f;
                loop {
                    l.push(self.nbr[s as usize]);
                    s = self.next[s as usize];
                    if s == f {
                        break;
                    }
                }
            }
            out.push(l);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;

    fn check_planar_with_certificate(g: &Graph) {
        match planarity(g) {
            Planarity::Planar(rot) => {
                rot.validate_against(g).expect("rotation matches graph");
                if g.is_connected() {
                    rot.euler_check().expect("Euler certificate");
                }
            }
            Planarity::NonPlanar => panic!("expected planar"),
        }
    }

    #[test]
    fn trivial_graphs_planar() {
        check_planar_with_certificate(&generators::path(1));
        check_planar_with_certificate(&generators::path(2));
        check_planar_with_certificate(&generators::path(3));
    }

    #[test]
    fn classic_planar_families() {
        check_planar_with_certificate(&generators::path(50));
        check_planar_with_certificate(&generators::cycle(50));
        check_planar_with_certificate(&generators::star(40));
        check_planar_with_certificate(&generators::grid(8, 9));
        check_planar_with_certificate(&generators::wheel(20));
        check_planar_with_certificate(&generators::complete(4));
        check_planar_with_certificate(&generators::random_tree(200, 3));
        check_planar_with_certificate(&generators::random_maximal_outerplanar(60, 5));
        check_planar_with_certificate(&generators::random_series_parallel(80, 6));
    }

    #[test]
    fn triangulations_are_planar_with_certificate() {
        for seed in 0..10u64 {
            check_planar_with_certificate(&generators::stacked_triangulation(120, seed));
        }
    }

    #[test]
    fn random_planar_subgraphs() {
        for seed in 0..10u64 {
            let d = 0.1 * (seed as f64 % 10.0);
            check_planar_with_certificate(&generators::random_planar(90, d, seed));
        }
    }

    #[test]
    fn kuratowski_graphs_rejected() {
        assert!(!is_planar(&generators::complete(5)));
        assert!(!is_planar(&generators::complete_bipartite(3, 3)));
        for extra in 0..4u32 {
            assert!(!is_planar(&generators::k5_subdivision(extra)));
            assert!(!is_planar(&generators::k33_subdivision(extra)));
        }
    }

    #[test]
    fn dense_and_structured_nonplanar() {
        assert!(!is_planar(&generators::complete(6)));
        assert!(!is_planar(&generators::complete(8)));
        assert!(!is_planar(&generators::complete_bipartite(3, 5)));
        assert!(!is_planar(&generators::hypercube(4)));
        assert!(!is_planar(&generators::hypercube(5)));
        for seed in 0..5 {
            assert!(!is_planar(&generators::planted_kuratowski(
                40,
                seed % 2 == 0,
                2,
                seed
            )));
        }
    }

    #[test]
    fn planar_plus_one_crossing_edge() {
        // take a maximal planar graph; adding any new edge breaks planarity
        let g = generators::stacked_triangulation(30, 7);
        assert!(is_planar(&g));
        let n = g.node_count() as u32;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    let mut b = dpc_graph::GraphBuilder::new(n);
                    for e in g.edges() {
                        b.add_edge(e.u, e.v).unwrap();
                    }
                    b.add_edge(u, v).unwrap();
                    assert!(!is_planar(&b.build()), "maximal + edge must be non-planar");
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn disconnected_graphs() {
        let g = generators::grid(4, 4).disjoint_union(&generators::cycle(5));
        assert!(is_planar(&g));
        let h = generators::grid(4, 4).disjoint_union(&generators::complete(5));
        assert!(!is_planar(&h));
    }

    #[test]
    fn petersen_graph_nonplanar() {
        // outer 5-cycle, inner pentagram, spokes
        let mut b = dpc_graph::GraphBuilder::new(10);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5).unwrap();
            b.add_edge(5 + i, 5 + (i + 2) % 5).unwrap();
            b.add_edge(i, 5 + i).unwrap();
        }
        assert!(!is_planar(&b.build()));
    }

    #[test]
    fn dodecahedron_planar() {
        // 20 nodes, 30 edges, 3-regular planar
        let edges: [(u32, u32); 30] = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            (5, 10),
            (6, 11),
            (7, 12),
            (8, 13),
            (9, 14),
            (10, 6),
            (11, 7),
            (12, 8),
            (13, 9),
            (14, 5),
            (10, 15),
            (11, 16),
            (12, 17),
            (13, 18),
            (14, 19),
            (15, 16),
            (16, 17),
            (17, 18),
            (18, 19),
            (19, 15),
        ];
        let g = Graph::from_edges(20, &edges);
        check_planar_with_certificate(&g);
        // faces of a dodecahedron: 12 pentagons
        if let Planarity::Planar(rot) = planarity(&g) {
            assert_eq!(rot.face_count(), 12);
            assert!(rot.faces().iter().all(|f| f.len() == 5));
        }
    }

    #[test]
    fn named_graphs_gallery() {
        // triangular prism (K3 x K2): planar, 3-regular, 5 faces
        let prism = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        );
        check_planar_with_certificate(&prism);
        if let Planarity::Planar(rot) = planarity(&prism) {
            assert_eq!(rot.face_count(), 5);
        }
        // octahedron (K2,2,2): planar, 4-regular, 8 triangular faces
        let octa = Graph::from_edges(
            6,
            &[
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 4),
                (4, 3),
                (3, 5),
                (5, 2),
            ],
        );
        check_planar_with_certificate(&octa);
        if let Planarity::Planar(rot) = planarity(&octa) {
            assert_eq!(rot.face_count(), 8);
        }
        // cube Q3: planar, 6 faces
        check_planar_with_certificate(&generators::hypercube(3));
        // Möbius–Kantor graph GP(8,3): non-planar
        let mut b = dpc_graph::GraphBuilder::new(16);
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 8).unwrap(); // outer octagon
            b.add_edge(8 + i, 8 + (i + 3) % 8).unwrap(); // inner star
            b.add_edge(i, 8 + i).unwrap(); // spokes
        }
        assert!(!is_planar(&b.build()));
        // Möbius ladder V8: cycle C8 + antipodal rungs — non-planar
        // (contains K3,3); the prism-like ladder with even crossings
        let mut b = dpc_graph::GraphBuilder::new(8);
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 8).unwrap();
        }
        for i in 0..4u32 {
            b.add_edge(i, i + 4).unwrap();
        }
        assert!(!is_planar(&b.build()), "Möbius ladder M8 is non-planar");
    }

    #[test]
    fn icosahedron_maximal_planar() {
        // icosahedron: two apexes + two 5-rings (pentagonal antiprism):
        // 12 nodes, 30 edges, 5-regular, maximal planar, 20 triangles
        let mut b = dpc_graph::GraphBuilder::new(12);
        for i in 0..5u32 {
            b.add_edge(0, 1 + i).unwrap(); // top apex to ring A
            b.add_edge(1 + i, 1 + (i + 1) % 5).unwrap(); // ring A cycle
            b.add_edge(1 + i, 6 + i).unwrap(); // antiprism struts
            b.add_edge(1 + i, 6 + (i + 1) % 5).unwrap();
            b.add_edge(6 + i, 6 + (i + 1) % 5).unwrap(); // ring B cycle
            b.add_edge(11, 6 + i).unwrap(); // bottom apex to ring B
        }
        let g = b.build();
        assert_eq!(g.edge_count(), 3 * 12 - 6, "maximal planar edge count");
        assert!(g.nodes().all(|v| g.degree(v) == 5), "5-regular");
        check_planar_with_certificate(&g);
        if let Planarity::Planar(rot) = planarity(&g) {
            assert_eq!(rot.face_count(), 20);
            assert!(rot.faces().iter().all(|f| f.len() == 3));
        }
    }

    #[test]
    fn large_triangulation_fast_and_certified() {
        let g = generators::stacked_triangulation(20_000, 42);
        check_planar_with_certificate(&g);
    }

    #[test]
    fn euler_face_counts() {
        // maximal planar graph: every face a triangle, f = 2n - 4
        let g = generators::stacked_triangulation(100, 11);
        if let Planarity::Planar(rot) = planarity(&g) {
            assert_eq!(rot.face_count(), 2 * 100 - 4);
            assert!(rot.faces().iter().all(|f| f.len() == 3));
        } else {
            panic!("triangulation must be planar");
        }
    }
}
