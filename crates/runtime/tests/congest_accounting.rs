//! Property tests pinning the CONGEST bit accounting to its definition,
//! so the zero-copy delivery path can never silently change what gets
//! counted: over every round, `total_message_bits` must equal
//! `Σ_v deg(v) · |msg_v(round)|` (a broadcast is charged once per
//! incident edge), and `max_message_bits` must be the largest single
//! payload emitted.

use dpc_graph::{generators, Graph};
use dpc_runtime::{baseline, run_protocol, BitWriter, NodeCtx, Payload, Protocol, Step};
use proptest::prelude::*;

/// Protocol with a known per-node, per-round message size: in round `r`
/// node `v` broadcasts exactly `(id % modulus) + r + 1` bits, and stops
/// after `rounds_of(v)` rounds. Nothing about the payload content
/// matters — only the sizes being charged.
struct SizedChatter {
    modulus: u64,
    max_rounds_per_node: usize,
}

impl SizedChatter {
    fn bits_for(&self, id: u64, round: usize) -> usize {
        (id % self.modulus) as usize + round + 1
    }

    fn rounds_of(&self, id: u64) -> usize {
        (id % self.max_rounds_per_node as u64) as usize + 1
    }
}

impl Protocol for SizedChatter {
    type State = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.id
    }

    fn message(&self, state: &u64, round: usize) -> Payload {
        let mut w = BitWriter::new();
        for _ in 0..self.bits_for(*state, round) {
            w.write_bool(true);
        }
        Payload::from_writer(w)
    }

    fn receive(&self, state: &mut u64, _ctx: &NodeCtx, _inbox: &[Payload], round: usize) -> Step {
        if round + 1 >= self.rounds_of(*state) {
            Step::Output(true)
        } else {
            Step::Continue
        }
    }
}

/// Reference accounting computed directly from the definition, walking
/// rounds and nodes without the simulator.
fn expected_accounting(g: &Graph, proto: &SizedChatter) -> (usize, u64, usize) {
    let n = g.node_count();
    let mut done = vec![false; n];
    let mut max_bits = 0usize;
    let mut total_bits = 0u64;
    let mut round = 0usize;
    while done.iter().any(|d| !d) {
        for (v, &d) in done.iter().enumerate() {
            let bits = if d {
                0
            } else {
                proto.bits_for(g.id_of(v as u32), round)
            };
            max_bits = max_bits.max(bits);
            total_bits += bits as u64 * g.degree(v as u32) as u64;
        }
        for (v, d) in done.iter_mut().enumerate() {
            if !*d && round + 1 >= proto.rounds_of(g.id_of(v as u32)) {
                *d = true;
            }
        }
        round += 1;
    }
    (max_bits, total_bits, round)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator's accounting equals the Σ_v deg(v)·|msg_v| fold on
    /// random connected graphs, across multi-round schedules.
    #[test]
    fn total_bits_is_degree_weighted_sum(
        n in 2u32..60,
        m_extra in 0u32..80,
        modulus in 1u64..40,
        rounds_per_node in 1usize..5,
        seed in 0u64..1000,
    ) {
        let m = (n - 1 + m_extra).min(n * (n - 1) / 2);
        let g = generators::gnm_connected(n, m, seed);
        let proto = SizedChatter { modulus, max_rounds_per_node: rounds_per_node };
        let (want_max, want_total, want_rounds) = expected_accounting(&g, &proto);
        let rep = run_protocol(&proto, &g, want_rounds + 2);
        prop_assert_eq!(rep.total_message_bits, want_total);
        prop_assert_eq!(rep.max_message_bits, want_max);
        prop_assert_eq!(rep.rounds, want_rounds);
        prop_assert!(rep.all_accept());
    }

    /// Structured families: same law (regression net for generators
    /// whose degree sequences are extreme — stars, cycles, grids).
    #[test]
    fn accounting_on_structured_families(kind in 0usize..4, n in 3u32..40, modulus in 1u64..16) {
        let g = match kind {
            0 => generators::star(n),
            1 => generators::cycle(n.max(3)),
            2 => generators::grid(n.max(2) / 2 + 1, 3),
            _ => generators::path(n),
        };
        let proto = SizedChatter { modulus, max_rounds_per_node: 3 };
        let (want_max, want_total, want_rounds) = expected_accounting(&g, &proto);
        let rep = run_protocol(&proto, &g, want_rounds + 1);
        prop_assert_eq!(rep.total_message_bits, want_total);
        prop_assert_eq!(rep.max_message_bits, want_max);
    }

    /// The zero-copy executor and the deep-copy reference executor
    /// charge identical bits on identical schedules.
    #[test]
    fn zero_copy_and_deepcopy_account_identically(
        n in 2u32..50,
        m_extra in 0u32..60,
        modulus in 1u64..32,
        seed in 0u64..1000,
    ) {
        let m = (n - 1 + m_extra).min(n * (n - 1) / 2);
        let g = generators::gnm_connected(n, m, seed);
        let proto = SizedChatter { modulus, max_rounds_per_node: 4 };
        let fast = run_protocol(&proto, &g, 16);
        let slow = baseline::run_protocol_deepcopy(&proto, &g, 16);
        prop_assert_eq!(fast.total_message_bits, slow.total_message_bits);
        prop_assert_eq!(fast.max_message_bits, slow.max_message_bits);
        prop_assert_eq!(fast.rounds, slow.rounds);
        prop_assert_eq!(fast.verdicts, slow.verdicts);
    }
}
