//! The spanning-tree certificate component.
//!
//! Folklore since the self-stabilization literature (paper §2): every
//! node receives the root identifier, a parent pointer, its hop distance
//! to the root, the total node count `n`, and its subtree size. Locally
//! checking (a) root-id agreement, (b) distance decrement toward the
//! parent, and (c) subtree counts proves globally that the parent
//! pointers form one spanning tree with the claimed `n` — the substrate
//! for "this structure exists somewhere" arguments.

use dpc_runtime::bits::{BitReader, BitWriter, DecodeError};
use dpc_runtime::NodeCtx;

/// Decoded spanning-tree certificate of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCert {
    /// Identifier of the root (agreed network-wide).
    pub root_id: u64,
    /// Claimed number of nodes.
    pub n: u64,
    /// Hop distance to the root (0 iff root).
    pub dist: u64,
    /// Identifier of the parent; by convention equal to the node's own
    /// identifier at the root.
    pub parent_id: u64,
    /// Number of nodes in this node's subtree (≥ 1).
    pub subtree: u64,
}

impl TreeCert {
    /// Serializes into a bit stream.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.root_id);
        w.write_varint(self.n);
        w.write_varint(self.dist);
        w.write_varint(self.parent_id);
        w.write_varint(self.subtree);
    }

    /// Deserializes from a bit stream.
    pub fn decode(r: &mut BitReader<'_>) -> Result<Self, DecodeError> {
        Ok(TreeCert {
            root_id: r.read_varint()?,
            n: r.read_varint()?,
            dist: r.read_varint()?,
            parent_id: r.read_varint()?,
            subtree: r.read_varint()?,
        })
    }
}

/// Result of the local spanning-tree check: the ports of the parent and
/// of the children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeInfo {
    /// Port of the parent (`None` at the root).
    pub parent_port: Option<usize>,
    /// Ports of the children (neighbors pointing here), in port order.
    pub children_ports: Vec<usize>,
}

/// Local verification of the spanning-tree component at one node.
///
/// `neighbors[p]` is the tree certificate heard on port `p`. Returns
/// `None` (reject) on any inconsistency.
pub fn check_tree(ctx: &NodeCtx, own: &TreeCert, neighbors: &[TreeCert]) -> Option<TreeInfo> {
    if neighbors.len() != ctx.degree() || own.n == 0 || own.subtree == 0 {
        return None;
    }
    // agreement on root id and n
    for nb in neighbors {
        if nb.root_id != own.root_id || nb.n != own.n {
            return None;
        }
    }
    let is_root = own.dist == 0;
    if is_root {
        // root: own id is the agreed root id; parent pointer loops
        if own.root_id != ctx.id || own.parent_id != ctx.id {
            return None;
        }
        if own.subtree != own.n {
            return None;
        }
    } else if own.parent_id == ctx.id || own.root_id == ctx.id {
        return None; // non-root cannot self-parent or carry the root id
    }
    // locate parent
    let parent_port = if is_root {
        None
    } else {
        let p = ctx
            .neighbor_ids
            .iter()
            .position(|&nid| nid == own.parent_id)?;
        if neighbors[p].dist + 1 != own.dist {
            return None;
        }
        Some(p)
    };
    // children: neighbors that point here
    let mut children_ports = Vec::new();
    let mut sum = 1u64;
    for (p, nb) in neighbors.iter().enumerate() {
        if nb.parent_id == ctx.id && Some(p) != parent_port {
            if nb.dist != own.dist + 1 {
                return None;
            }
            sum = sum.checked_add(nb.subtree)?;
            children_ports.push(p);
        }
    }
    if sum != own.subtree {
        return None;
    }
    Some(TreeInfo {
        parent_port,
        children_ports,
    })
}

/// Honest prover side: tree certificates from an actual spanning tree.
pub fn build_tree_certs(
    g: &dpc_graph::Graph,
    tree: &dpc_graph::traversal::SpanningTree,
) -> Vec<TreeCert> {
    let n = g.node_count() as u64;
    let sizes = tree.subtree_sizes();
    g.nodes()
        .map(|v| {
            let parent_id = match tree.parent[v as usize] {
                Some(p) => g.id_of(p),
                None => g.id_of(v),
            };
            TreeCert {
                root_id: g.id_of(tree.root),
                n,
                dist: tree.dist[v as usize] as u64,
                parent_id,
                subtree: sizes[v as usize] as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;
    use dpc_graph::traversal::bfs_spanning_tree;

    fn ctx_for(g: &dpc_graph::Graph, v: u32) -> NodeCtx {
        NodeCtx {
            node: v,
            id: g.id_of(v),
            neighbor_ids: g.neighbors(v).map(|w| g.id_of(w)).collect(),
        }
    }

    fn neighbor_certs(g: &dpc_graph::Graph, certs: &[TreeCert], v: u32) -> Vec<TreeCert> {
        g.neighbors(v).map(|w| certs[w as usize]).collect()
    }

    #[test]
    fn honest_certs_verify_everywhere() {
        for g in [
            generators::grid(4, 5),
            generators::random_tree(40, 2),
            generators::stacked_triangulation(30, 3),
        ] {
            let tree = bfs_spanning_tree(&g, 0);
            let certs = build_tree_certs(&g, &tree);
            for v in g.nodes() {
                let info = check_tree(
                    &ctx_for(&g, v),
                    &certs[v as usize],
                    &neighbor_certs(&g, &certs, v),
                );
                assert!(info.is_some(), "node {v} must accept");
            }
            // root has no parent; children counts sum to n
            let info =
                check_tree(&ctx_for(&g, 0), &certs[0], &neighbor_certs(&g, &certs, 0)).unwrap();
            assert_eq!(info.parent_port, None);
        }
    }

    #[test]
    fn lying_about_n_rejected() {
        let g = generators::grid(3, 3);
        let tree = bfs_spanning_tree(&g, 0);
        let mut certs = build_tree_certs(&g, &tree);
        for c in &mut certs {
            c.n = 100; // global lie: the subtree sum at the root breaks
        }
        let rejected = g.nodes().any(|v| {
            check_tree(
                &ctx_for(&g, v),
                &certs[v as usize],
                &neighbor_certs(&g, &certs, v),
            )
            .is_none()
        });
        assert!(rejected);
    }

    #[test]
    fn forged_second_root_rejected() {
        let g = generators::path(6);
        let tree = bfs_spanning_tree(&g, 0);
        let mut certs = build_tree_certs(&g, &tree);
        // node 5 pretends to be a root of its own tree
        certs[5].dist = 0;
        certs[5].parent_id = g.id_of(5);
        certs[5].root_id = g.id_of(5);
        let rejected = g.nodes().any(|v| {
            check_tree(
                &ctx_for(&g, v),
                &certs[v as usize],
                &neighbor_certs(&g, &certs, v),
            )
            .is_none()
        });
        assert!(rejected, "root-id disagreement must surface");
    }

    #[test]
    fn wrong_subtree_size_rejected() {
        let g = generators::random_tree(20, 9);
        let tree = bfs_spanning_tree(&g, 0);
        let mut certs = build_tree_certs(&g, &tree);
        certs[7].subtree += 1;
        let rejected = g.nodes().any(|v| {
            check_tree(
                &ctx_for(&g, v),
                &certs[v as usize],
                &neighbor_certs(&g, &certs, v),
            )
            .is_none()
        });
        assert!(rejected);
    }

    #[test]
    fn distance_skip_rejected() {
        let g = generators::path(5);
        let tree = bfs_spanning_tree(&g, 0);
        let mut certs = build_tree_certs(&g, &tree);
        certs[3].dist += 1; // distance no longer decrements toward parent
        let rejected = g.nodes().any(|v| {
            check_tree(
                &ctx_for(&g, v),
                &certs[v as usize],
                &neighbor_certs(&g, &certs, v),
            )
            .is_none()
        });
        assert!(rejected);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = TreeCert {
            root_id: 12345,
            n: 999,
            dist: 42,
            parent_id: 777,
            subtree: 13,
        };
        let mut w = BitWriter::new();
        c.encode(&mut w);
        let mut r = BitReader::new(w.as_bytes(), w.bit_len());
        assert_eq!(TreeCert::decode(&mut r).unwrap(), c);
    }
}
