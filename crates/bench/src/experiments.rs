//! The experiment implementations (E1–E16). Each prints the table(s)
//! recorded in EXPERIMENTS.md.

use crate::families::{nonplanar_families, planar_families};
use crate::table::{linear_fit, Table};
use dpc_core::adversary::soundness_report;
use dpc_core::batch::BatchRunner;
use dpc_core::harness::{run_pls, run_with_assignment};
use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::non_planarity::NonPlanarityScheme;
use dpc_core::schemes::path_outerplanar::PathOuterplanarScheme;
use dpc_core::schemes::planarity::{EdgeAssignment, PlanarityScheme};
use dpc_core::schemes::universal::UniversalScheme;
use dpc_graph::generators;
use dpc_interactive::dmam::{detection_rate, run_dmam, DmamPlanarity};
use dpc_lowerbounds::blocks::{
    certify_cycle_has_kk, certify_path_kfree, cycle_of_blocks, path_of_blocks, subdivide_for_radius,
};
use dpc_lowerbounds::counting::{accepts_path, crossover_p, forge_cycle, ModCounterScheme};
use dpc_lowerbounds::kpq::{certify_j_has_kqq, default_ids, instance_iab, instance_j, KpqParams};
use std::time::Instant;

const SIZES: [u32; 6] = [64, 256, 1024, 4096, 16384, 65536];

/// E1 — certificate size vs n (Theorem 1: O(log n)).
pub fn e1() {
    let mut t = Table::new(
        "E1: planarity PLS certificate size (bits) vs n",
        &["family", "n", "max bits", "avg bits", "bits/log2(n)"],
    );
    let scheme = PlanarityScheme::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for f in planar_families() {
        for &n in &SIZES {
            let g = (f.make)(n, 42);
            let a = scheme.prove(&g).expect("planar family");
            let logn = (g.node_count() as f64).log2();
            xs.push(logn);
            ys.push(a.max_bits() as f64);
            t.row(vec![
                f.name.into(),
                g.node_count().to_string(),
                a.max_bits().to_string(),
                format!("{:.1}", a.avg_bits()),
                format!("{:.1}", a.max_bits() as f64 / logn),
            ]);
        }
    }
    t.print();
    let (a, b) = linear_fit(&xs, &ys);
    println!("fit: max_bits ~= {a:.1} * log2(n) + {b:.1}  (O(log n) iff slope dominates)\n");
}

/// E2 — rounds and message size in CONGEST (Theorem 1: 1 round).
pub fn e2() {
    let mut t = Table::new(
        "E2: verification rounds and CONGEST message size",
        &["family", "n", "rounds", "max msg bits", "msg/log2(n)"],
    );
    let scheme = PlanarityScheme::new();
    for f in planar_families() {
        for &n in &[256u32, 4096, 65536] {
            let g = (f.make)(n, 7);
            let out = run_pls(&scheme, &g).unwrap();
            assert!(out.all_accept());
            let logn = (g.node_count() as f64).log2();
            t.row(vec![
                f.name.into(),
                g.node_count().to_string(),
                out.rounds.to_string(),
                out.max_message_bits.to_string(),
                format!("{:.1}", out.max_message_bits as f64 / logn),
            ]);
        }
    }
    t.print();
}

/// E3 — completeness over planar families and seeds, through the
/// parallel batch engine (one batch per family).
pub fn e3() {
    let mut t = Table::new(
        "E3: completeness (acceptance rate over 10 seeds, batch engine)",
        &["family", "n", "accept rate", "nodes accepting"],
    );
    let scheme = PlanarityScheme::new();
    let runner = BatchRunner::new();
    for f in planar_families() {
        let n = 500u32;
        let report = runner.run(&scheme, (0..10u64).map(|seed| (f.make)(n, seed)));
        assert_eq!(report.summary.declined, 0, "planar families always prove");
        t.row(vec![
            f.name.into(),
            n.to_string(),
            format!("{}/{}", report.summary.accepted, report.summary.instances),
            (report.summary.nodes - report.summary.rejecting_nodes).to_string(),
        ]);
    }
    t.print();
}

/// E4 — soundness: adversarial provers on non-planar instances.
pub fn e4() {
    let mut t = Table::new(
        "E4: soundness (min rejecting nodes over attacks; '-' = attack inapplicable)",
        &["family", "n", "attack", "rejecting nodes"],
    );
    let scheme = PlanarityScheme::new();
    for f in nonplanar_families() {
        let g = (f.make)(60, 11);
        for row in soundness_report(&scheme, &g, 13) {
            t.row(vec![
                f.name.into(),
                g.node_count().to_string(),
                row.attack.into(),
                row.rejects.map_or("-".into(), |r| r.to_string()),
            ]);
        }
    }
    t.print();
    println!("soundness holds iff every applicable attack row is >= 1\n");
}

/// E5 — the T-embedding pipeline (Lemmas 3–4, paper Figs. 5–6).
pub fn e5() {
    let mut t = Table::new(
        "E5: T-embedding pipeline on planar inputs",
        &[
            "family",
            "n",
            "|V(G_Tf)| = 2n-1",
            "chords",
            "laminar",
            "euler-genus",
        ],
    );
    for f in planar_families() {
        let g = (f.make)(2000, 3);
        let rot = dpc_planar::lr::planarity(&g).into_embedding().unwrap();
        let genus = rot.genus();
        let tree = dpc_graph::traversal::bfs_spanning_tree(&g, 0);
        let te = dpc_planar::tembed::t_embedding(&g, &rot, &tree);
        match te {
            Ok(te) => t.row(vec![
                f.name.into(),
                g.node_count().to_string(),
                format!(
                    "{} ({})",
                    te.spine_len,
                    if te.spine_len as usize == 2 * g.node_count() - 1 {
                        "ok"
                    } else {
                        "MISMATCH"
                    }
                ),
                te.chords.len().to_string(),
                "yes".into(),
                genus.to_string(),
            ]),
            Err(_) => t.row(vec![
                f.name.into(),
                g.node_count().to_string(),
                "-".into(),
                "-".into(),
                "NO".into(),
                genus.to_string(),
            ]),
        };
    }
    t.print();
}

/// E6 — the standalone path-outerplanarity scheme (Lemma 2 / Alg. 1).
pub fn e6() {
    let mut t = Table::new(
        "E6: path-outerplanarity PLS (Lemma 2)",
        &["instance", "n", "verdict", "max cert bits"],
    );
    let scheme = PathOuterplanarScheme::new();
    for (name, n, extra, seed) in [
        ("sparse chords", 200u32, 40u32, 1u64),
        ("many chords", 200, 160, 2),
        ("bare path", 200, 0, 3),
        ("large", 5000, 2000, 4),
    ] {
        let g = generators::random_path_outerplanar(n, extra, seed);
        let out = run_pls(&scheme, &g).unwrap();
        t.row(vec![
            name.into(),
            g.node_count().to_string(),
            if out.all_accept() {
                "accept".into()
            } else {
                "REJECT".to_string()
            },
            out.max_cert_bits.to_string(),
        ]);
    }
    // a crossing instance: prover refuses; forged certificates rejected
    let mut b = dpc_graph::GraphBuilder::new(8);
    for v in 1..8 {
        b.add_edge(v - 1, v).unwrap();
    }
    b.add_edge(0, 4).unwrap();
    b.add_edge(2, 6).unwrap();
    let bad = b.build();
    let prover = scheme.prove(&bad);
    let sub = bad.edge_subgraph(|_, e| e.canonical() != (2, 6));
    let forged = scheme.prove(&sub).unwrap();
    let out = run_with_assignment(&scheme, &bad, &forged);
    t.row(vec![
        "crossing (forged)".into(),
        "8".into(),
        format!(
            "prover: {}, replay rejects {}",
            if prover.is_err() { "declines" } else { "BUG" },
            out.reject_count()
        ),
        "-".into(),
    ]);
    t.print();
}

/// E7 — Lemma 5 instances (paper Figs. 7–8).
pub fn e7() {
    let mut t = Table::new(
        "E7: paths vs cycles of blocks (Lemma 5)",
        &["k", "p", "n", "path K_k-free", "cycle has K_k"],
    );
    for k in [4usize, 5, 6] {
        for p in [2usize, 20, 200] {
            let perm: Vec<usize> = (1..=p).collect();
            let path = path_of_blocks(k, &perm);
            let cycle = cycle_of_blocks(k, &perm);
            t.row(vec![
                k.to_string(),
                p.to_string(),
                path.graph.node_count().to_string(),
                if certify_path_kfree(&path) {
                    "certified".into()
                } else {
                    "FAIL".to_string()
                },
                if certify_cycle_has_kk(&cycle) {
                    "witnessed".into()
                } else {
                    "FAIL".to_string()
                },
            ]);
        }
    }
    t.print();
    // cross-check k=4 with the exact series-parallel test
    let path = path_of_blocks(4, &(1..=50).collect::<Vec<_>>());
    let cycle = cycle_of_blocks(4, &(1..=50).collect::<Vec<_>>());
    println!(
        "exact K4 check: path has K4 minor = {}, cycle has K4 minor = {}\n",
        dpc_graph::minors::has_k4_minor(&path.graph),
        dpc_graph::minors::has_k4_minor(&cycle.graph)
    );
}

/// E8 — the pigeonhole forgery (Lemma 5's counting argument).
pub fn e8() {
    let mut t = Table::new(
        "E8a: counting crossover p* where p! > 2^{(k-1)gp}",
        &["k", "g", "p*"],
    );
    for k in [4u32, 5] {
        for g in [1u32, 2, 3, 4] {
            t.row(vec![
                k.to_string(),
                g.to_string(),
                crossover_p(k, g).to_string(),
            ]);
        }
    }
    t.print();
    let mut t = Table::new(
        "E8b: concrete forgery against the g-bit mod-counter scheme (k=4)",
        &[
            "g",
            "paths accepted",
            "forged cycle blocks",
            "cycle fully accepted",
            "cycle illegal",
        ],
    );
    for g in 1..=6u32 {
        let scheme = ModCounterScheme::new(4, g);
        let paths_ok = accepts_path(&scheme, &(1..=(1usize << g) + 2).collect::<Vec<_>>());
        let f = forge_cycle(&scheme);
        t.row(vec![
            g.to_string(),
            if paths_ok {
                "yes".into()
            } else {
                "NO".to_string()
            },
            (1usize << g).to_string(),
            if f.fully_accepted {
                "yes (soundness broken)".into()
            } else {
                "NO".to_string()
            },
            if certify_cycle_has_kk(&f.cycle) {
                "yes (K4 minor)".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t.print();
    println!(
        "with g = o(log n) bits, cycles of 2^g << n blocks are forgeable: Lemma 5 in action\n"
    );
}

/// E9 — Lemma 6 instances (paper Figs. 9–10).
pub fn e9() {
    let mut t = Table::new(
        "E9: K_{p,q} lower-bound instances (Lemma 6)",
        &[
            "q",
            "n per I_ab",
            "I_ab outerplanar",
            "J nodes",
            "J has K_{q,q}",
            "J outerplanar",
        ],
    );
    for q in [3usize, 4, 5] {
        let params = KpqParams::new(8 * q, q);
        let iab = instance_iab(
            params,
            &default_ids(params, 0, false),
            &default_ids(params, 0, true),
        );
        let j = instance_j(params);
        t.row(vec![
            q.to_string(),
            iab.node_count().to_string(),
            if dpc_planar::embedding::is_outerplanar(&iab) {
                "yes".into()
            } else {
                "NO".to_string()
            },
            j.graph.node_count().to_string(),
            if certify_j_has_kqq(&j, q) {
                "witnessed".into()
            } else {
                "NO".to_string()
            },
            if dpc_planar::embedding::is_outerplanar(&j.graph) {
                "YES(bug)".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    t.print();
}

/// E10 — comparison with the dMAM baseline and the universal scheme.
pub fn e10() {
    let mut t = Table::new(
        "E10: planarity certification, scheme comparison",
        &[
            "scheme",
            "interactions",
            "random bits",
            "n",
            "max bits",
            "soundness",
        ],
    );
    let sizes = [256u32, 4096];
    for &n in &sizes {
        let g = generators::stacked_triangulation(n, 5);
        let pls = PlanarityScheme::new().prove(&g).unwrap();
        t.row(vec![
            "PLS (this paper)".into(),
            "1 (dM)".into(),
            "0".into(),
            n.to_string(),
            pls.max_bits().to_string(),
            "perfect".into(),
        ]);
        let out = run_dmam(&DmamPlanarity::new(), &g, 3).unwrap();
        assert!(out.all_accept());
        t.row(vec![
            "dMAM baseline [NPY-style]".into(),
            "3 (dMAM)".into(),
            out.challenge_bits.to_string(),
            n.to_string(),
            format!("{}+{}", out.max_commit_bits, out.max_response_bits),
            "one-sided error".into(),
        ]);
        let uni = UniversalScheme::new().prove(&g).unwrap();
        t.row(vec![
            "universal baseline".into(),
            "1 (dM)".into(),
            "0".into(),
            n.to_string(),
            uni.max_bits().to_string(),
            "perfect".into(),
        ]);
    }
    t.print();
    // measure the dMAM one-sided error empirically
    let mut t = Table::new(
        "E10b: dMAM single-shot detection rate on non-planar inputs",
        &["family", "n", "detection rate (40 trials)"],
    );
    for f in nonplanar_families() {
        let g = (f.make)(40, 9);
        t.row(vec![
            f.name.into(),
            g.node_count().to_string(),
            format!("{:.2}", detection_rate(&g, 40, 17)),
        ]);
    }
    t.print();
    println!(
        "the PLS rejects deterministically; the dMAM trades certainty for smaller commitments\n"
    );
}

/// E11 — the folklore non-planarity scheme.
pub fn e11() {
    let mut t = Table::new(
        "E11: non-planarity PLS (Kuratowski witness, folklore)",
        &["instance", "n", "witness", "verdict", "max cert bits"],
    );
    for (name, g) in [
        ("K5", generators::complete(5)),
        ("K33-subdiv(5)", generators::k33_subdivision(5)),
        ("K5-subdiv(10)", generators::k5_subdivision(10)),
        (
            "planted-K5 n=100",
            generators::planted_kuratowski(100, true, 2, 3),
        ),
        (
            "planted-K33 n=400",
            generators::planted_kuratowski(400, false, 3, 4),
        ),
    ] {
        let scheme = NonPlanarityScheme::new();
        let out = run_pls(&scheme, &g).unwrap();
        let w = dpc_planar::kuratowski::extract_kuratowski(&g).unwrap();
        t.row(vec![
            name.into(),
            g.node_count().to_string(),
            format!("{:?}", w.kind),
            if out.all_accept() {
                "accept".into()
            } else {
                "REJECT".to_string()
            },
            out.max_cert_bits.to_string(),
        ]);
    }
    t.print();
}

/// E12 — ablation: degeneracy vs naive edge-certificate placement.
pub fn e12() {
    let mut t = Table::new(
        "E12: edge-certificate placement ablation",
        &[
            "graph",
            "n",
            "max degree",
            "max certs/node (degeneracy)",
            "(naive)",
            "max bits (degeneracy)",
            "(naive)",
        ],
    );
    for (name, g) in [
        ("star", generators::star(500)),
        ("wheel", generators::wheel(500)),
        ("triangulation", generators::stacked_triangulation(500, 1)),
        ("grid", generators::grid(22, 23)),
    ] {
        let d = dpc_graph::degeneracy::degeneracy_order(&g);
        let smart = dpc_graph::degeneracy::assign_edges_by_degeneracy(&g, &d);
        let naive = dpc_graph::degeneracy::assign_edges_naive(&g);
        let smart_bits = PlanarityScheme::new().prove(&g).unwrap().max_bits();
        let naive_bits = PlanarityScheme::with_assignment(EdgeAssignment::Naive)
            .prove(&g)
            .unwrap()
            .max_bits();
        t.row(vec![
            name.into(),
            g.node_count().to_string(),
            g.max_degree().to_string(),
            dpc_graph::degeneracy::max_edges_per_node(&g, &smart).to_string(),
            dpc_graph::degeneracy::max_edges_per_node(&g, &naive).to_string(),
            smart_bits.to_string(),
            naive_bits.to_string(),
        ]);
    }
    t.print();
    println!("planar graphs are 5-degenerate: the degeneracy column never exceeds 5\n");
}

/// E13 — prover/verifier wall-clock scaling.
pub fn e13() {
    let mut t = Table::new(
        "E13: runtime scaling on random triangulations",
        &["n", "prover ms", "verify ms", "bits/node"],
    );
    let scheme = PlanarityScheme::new();
    for &n in &SIZES {
        let g = generators::stacked_triangulation(n, 21);
        let t0 = Instant::now();
        let a = scheme.prove(&g).unwrap();
        let prove_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let out = run_with_assignment(&scheme, &g, &a);
        let verify_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(out.all_accept());
        t.row(vec![
            n.to_string(),
            format!("{prove_ms:.1}"),
            format!("{verify_ms:.1}"),
            a.max_bits().to_string(),
        ]);
    }
    t.print();
}

/// E14 — the radius-t remark: subdivision preserves (il)legality.
pub fn e14() {
    let mut t = Table::new(
        "E14: radius-t subdivision of the Lemma 5 instances (k=4)",
        &["t", "path n", "path K4-free", "cycle n", "cycle has K4"],
    );
    let perm: Vec<usize> = (1..=6).collect();
    for tt in 1..=4u32 {
        let path = subdivide_for_radius(&path_of_blocks(4, &perm), tt);
        let cycle = subdivide_for_radius(&cycle_of_blocks(4, &perm), tt);
        t.row(vec![
            tt.to_string(),
            path.node_count().to_string(),
            if !dpc_graph::minors::has_k4_minor(&path) {
                "yes".into()
            } else {
                "NO".to_string()
            },
            cycle.node_count().to_string(),
            if dpc_graph::minors::has_k4_minor(&cycle) {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t.print();
}

/// E15 — distributed certificate pre-processing (§1.1 remark).
pub fn e15() {
    let mut t = Table::new(
        "E15: distributed pre-processing of spanning-tree certificates",
        &["family", "n", "rounds used", "max msg bits", "certs verify"],
    );
    for f in planar_families() {
        let g = (f.make)(200, 5);
        let n = g.node_count();
        let (certs, rounds) = dpc_core::distributed::distributed_tree_certs(&g);
        // feed the distributed certificates to the 1-round verifier
        let assignment = dpc_core::scheme::Assignment {
            certs: certs
                .iter()
                .map(|c| {
                    let mut w = dpc_runtime::BitWriter::new();
                    c.encode(&mut w);
                    dpc_runtime::Payload::from_writer(w)
                })
                .collect(),
        };
        let ok = run_with_assignment(
            &dpc_core::schemes::spanning_tree::SpanningTreeScheme::new(),
            &g,
            &assignment,
        )
        .all_accept();
        let proto = dpc_core::distributed::TreeBuildProtocol { rounds: 3 * n + 5 };
        let (report, _) = dpc_runtime::run_protocol_states(&proto, &g, 3 * n + 6);
        t.row(vec![
            f.name.into(),
            n.to_string(),
            rounds.to_string(),
            report.max_message_bits.to_string(),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    t.print();
    println!(
        "the network can compute its own certificates in O(n) rounds with O(log n)-bit messages\n"
    );
}

/// E16 — embeddings vs rotations (§5 bounded-genus direction).
pub fn e16() {
    let mut t = Table::new(
        "E16: Euler genus — prover's embedding vs random rotations",
        &[
            "family",
            "n",
            "LR genus",
            "random-rotation genus (min/median/max over 20)",
        ],
    );
    for f in planar_families() {
        let g = (f.make)(200, 3);
        let rot = dpc_planar::lr::planarity(&g).into_embedding().unwrap();
        let mut genera: Vec<i64> = (0..20)
            .map(|s| dpc_planar::embedding::random_rotation(&g, s).genus())
            .collect();
        genera.sort_unstable();
        t.row(vec![
            f.name.into(),
            g.node_count().to_string(),
            rot.genus().to_string(),
            format!("{}/{}/{}", genera[0], genera[10], genera[19]),
        ]);
    }
    t.print();
    println!(
        "the prover must exhibit a genus-0 rotation; arbitrary rotations are far from planar\n"
    );
}

/// E17 — the parallel batch engine: scheme zoo over graph batches,
/// parallel vs sequential wall time, determinism cross-check.
pub fn e17() {
    let mut t = Table::new(
        "E17: batch execution engine (parallel vs sequential, identical stats)",
        &[
            "scheme",
            "family",
            "instances",
            "accept rate",
            "max cert bits",
            "seq ms",
            "par ms",
            "speedup",
        ],
    );
    let runner = BatchRunner::new();
    let scheme = PlanarityScheme::new();
    for f in planar_families() {
        let graphs: Vec<_> = (0..24u64).map(|s| (f.make)(400, s)).collect();
        let seq = BatchRunner::run_sequential(&scheme, graphs.clone());
        let par = runner.run(&scheme, graphs);
        assert_eq!(
            seq.summary, par.summary,
            "batch engine must be deterministic"
        );
        let seq_ms = seq.wall.as_secs_f64() * 1e3;
        let par_ms = par.wall.as_secs_f64() * 1e3;
        t.row(vec![
            "planarity".into(),
            f.name.into(),
            par.summary.instances.to_string(),
            format!("{:.2}", par.summary.accept_rate()),
            par.summary.max_cert_bits.to_string(),
            format!("{seq_ms:.1}"),
            format!("{par_ms:.1}"),
            format!("{:.2}x", seq_ms / par_ms.max(1e-9)),
        ]);
    }
    // non-planar batches: the prover declines on every instance
    for f in nonplanar_families() {
        let graphs: Vec<_> = (0..24u64).map(|s| (f.make)(60, s)).collect();
        let par = runner.run(&scheme, graphs);
        t.row(vec![
            "planarity".into(),
            f.name.into(),
            par.summary.instances.to_string(),
            format!("declined {}", par.summary.declined),
            "-".into(),
            "-".into(),
            format!("{:.1}", par.wall.as_secs_f64() * 1e3),
            "-".into(),
        ]);
    }
    t.print();
    println!(
        "{} worker threads; summaries are byte-identical to the sequential fold\n",
        runner.threads()
    );
}

/// Runs one experiment by id; returns false for unknown ids.
pub fn run(id: &str) -> bool {
    match id {
        "e1" => e1(),
        "e2" => e2(),
        "e3" => e3(),
        "e4" => e4(),
        "e5" => e5(),
        "e6" => e6(),
        "e7" => e7(),
        "e8" => e8(),
        "e9" => e9(),
        "e10" => e10(),
        "e11" => e11(),
        "e12" => e12(),
        "e13" => e13(),
        "e14" => e14(),
        "e15" => e15(),
        "e16" => e16(),
        "e17" => e17(),
        _ => return false,
    }
    true
}

/// All experiment ids in order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
        "e15", "e16", "e17",
    ]
}
