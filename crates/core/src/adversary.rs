//! Adversarial provers for soundness experiments.
//!
//! Soundness of a PLS quantifies over *every* certificate assignment, so
//! experiments can only sample attack strategies. The strategies here
//! range from noise (garbage, bit flips) to the strongest natural attack
//! against planarity-style schemes: run the *honest* prover on a
//! planarized subgraph of the non-planar instance and replay those
//! certificates — every check passes except where the removed edges
//! surface.

use crate::scheme::{Assignment, ProofLabelingScheme};
use dpc_graph::Graph;
use dpc_runtime::Payload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A certificate-forgery strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Uniformly random payloads of the given size.
    Garbage {
        /// Bits per certificate.
        bits: usize,
    },
    /// All-zero payloads of the given size.
    Zeros {
        /// Bits per certificate.
        bits: usize,
    },
    /// Honest certificates of a maximal planar(ized) connected subgraph,
    /// replayed verbatim on the full graph.
    ReplayPlanarized,
    /// Like [`Attack::ReplayPlanarized`], then flip random bits.
    ReplayBitFlip {
        /// Number of bits flipped (spread over random nodes).
        flips: usize,
    },
    /// Like [`Attack::ReplayPlanarized`], then randomly permute which
    /// node gets which certificate.
    ReplayShuffle,
}

impl Attack {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::Garbage { .. } => "garbage",
            Attack::Zeros { .. } => "zeros",
            Attack::ReplayPlanarized => "replay-planarized",
            Attack::ReplayBitFlip { .. } => "replay-bitflip",
            Attack::ReplayShuffle => "replay-shuffle",
        }
    }
}

/// Removes edges of `g` (keeping it connected) until planar. The result
/// is a spanning connected planar subgraph — the natural "best lie"
/// substrate for an adversary.
pub fn planarize(g: &Graph) -> Graph {
    let mut mask = vec![true; g.edge_count()];
    for e in 0..g.edge_count() {
        if dpc_planar::lr::is_planar(&g.edge_subgraph(|id, _| mask[id as usize])) {
            break;
        }
        mask[e] = false;
        let sub = g.edge_subgraph(|id, _| mask[id as usize]);
        if !sub.is_connected() {
            mask[e] = true; // keep connectivity
        }
    }
    g.edge_subgraph(|id, _| mask[id as usize])
}

/// Produces a forged assignment for `g` under the given strategy.
///
/// Returns `None` if the strategy does not apply (e.g. the honest prover
/// of the scheme fails even on the planarized subgraph).
pub fn forge<S: ProofLabelingScheme>(
    scheme: &S,
    g: &Graph,
    attack: Attack,
    seed: u64,
) -> Option<Assignment> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count();
    match attack {
        Attack::Garbage { bits } => {
            let certs = (0..n)
                .map(|_| {
                    let mut w = dpc_runtime::BitWriter::new();
                    for _ in 0..bits {
                        w.write_bool(rng.gen());
                    }
                    Payload::from_writer(w)
                })
                .collect();
            Some(Assignment { certs })
        }
        Attack::Zeros { bits } => {
            let mut w = dpc_runtime::BitWriter::new();
            for _ in 0..bits {
                w.write_bool(false);
            }
            let p = Payload::from_writer(w);
            Some(Assignment { certs: vec![p; n] })
        }
        Attack::ReplayPlanarized => {
            let sub = planarize(g);
            scheme.prove(&sub).ok()
        }
        Attack::ReplayBitFlip { flips } => {
            let sub = planarize(g);
            let mut a = scheme.prove(&sub).ok()?;
            for _ in 0..flips {
                let v = rng.gen_range(0..n);
                let c = &mut a.certs[v];
                if c.bit_len == 0 {
                    continue;
                }
                let bit = rng.gen_range(0..c.bit_len);
                // payload buffers are shared (Arc), so flip on an owned
                // copy and swap the rebuilt payload in
                let mut bytes = c.to_vec();
                bytes[bit / 8] ^= 1 << (7 - (bit % 8));
                *c = Payload::from_bytes(bytes, c.bit_len);
            }
            Some(a)
        }
        Attack::ReplayShuffle => {
            let sub = planarize(g);
            let mut a = scheme.prove(&sub).ok()?;
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                a.certs.swap(i, j);
            }
            Some(a)
        }
    }
}

/// The default attack battery used by the soundness experiments.
pub fn standard_attacks() -> Vec<Attack> {
    vec![
        Attack::Garbage { bits: 64 },
        Attack::Garbage { bits: 256 },
        Attack::Zeros { bits: 128 },
        Attack::ReplayPlanarized,
        Attack::ReplayBitFlip { flips: 4 },
        Attack::ReplayShuffle,
    ]
}

/// One row of a soundness report.
#[derive(Debug, Clone)]
pub struct SoundnessRow {
    /// Attack name.
    pub attack: &'static str,
    /// Number of rejecting nodes (`None` if the attack was inapplicable).
    pub rejects: Option<usize>,
}

/// Runs the attack battery on a no-instance and reports the number of
/// rejecting nodes per attack. Soundness holds for the sample iff every
/// applicable row has `rejects >= 1`.
pub fn soundness_report<S: ProofLabelingScheme>(
    scheme: &S,
    g: &Graph,
    seed: u64,
) -> Vec<SoundnessRow> {
    standard_attacks()
        .into_iter()
        .map(|attack| {
            let rejects = forge(scheme, g, attack, seed)
                .map(|a| crate::harness::run_with_assignment(scheme, g, &a).reject_count());
            SoundnessRow {
                attack: attack.name(),
                rejects,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::planarity::PlanarityScheme;
    use dpc_graph::generators;

    #[test]
    fn planarize_yields_connected_planar() {
        for seed in 0..4u64 {
            let g = generators::planted_kuratowski(20, seed % 2 == 0, 1, seed);
            let p = planarize(&g);
            assert!(dpc_planar::lr::is_planar(&p));
            assert!(p.is_connected());
            assert!(p.edge_count() < g.edge_count());
        }
    }

    #[test]
    fn all_attacks_fail_against_planarity_scheme() {
        let scheme = PlanarityScheme::new();
        for (i, g) in [
            generators::planted_kuratowski(18, true, 1, 5),
            generators::k33_subdivision(2),
            generators::gnm_connected(20, 58, 6),
        ]
        .iter()
        .enumerate()
        {
            assert!(!dpc_planar::lr::is_planar(g));
            let rows = soundness_report(&scheme, g, i as u64);
            for row in rows {
                if let Some(r) = row.rejects {
                    assert!(
                        r >= 1,
                        "attack {} fooled every node on instance {i}",
                        row.attack
                    );
                }
            }
        }
    }

    #[test]
    fn replay_attack_applies() {
        let g = generators::planted_kuratowski(15, false, 1, 9);
        let a = forge(&PlanarityScheme::new(), &g, Attack::ReplayPlanarized, 0);
        assert!(a.is_some(), "planarized subgraph must be provable");
    }
}
