//! Lemma 6's instances: the legal two-path graphs `I_{a,b}` and the
//! glued illegal instance `J`.
//!
//! `I_{a,b}` consists of two disjoint paths — one on `n_A = ⌊n/2⌋` nodes
//! with identifiers from the set `a`, one on `n_B = ⌈n/2⌉` nodes with
//! identifiers from `b` — plus `q` rungs joining `a[jd]` to `b[jd]` for
//! `j = 1..q`, `d = ⌊n/(2q)⌋`. These instances are **outerplanar**
//! (hence `K_{p,q}`-minor-free for all `p ≥ 2, q ≥ 3`).
//!
//! The illegal instance `J` glues `q` copies of each path, with the rung
//! `j` of copy `i` landing on path copy `i + j (mod q)`: contracting
//! every path gives `K_{q,q}`.

use dpc_graph::minors::{bipartite_pairs, verify_minor_witness};
use dpc_graph::{Graph, GraphBuilder, NodeId};

/// Parameters shared by the constructions.
#[derive(Debug, Clone, Copy)]
pub struct KpqParams {
    /// Total nodes `n` of one `I_{a,b}` instance (the paper wants
    /// `n ≥ 6q`).
    pub n: usize,
    /// The bipartite parameter `q ≥ 3` (number of rungs).
    pub q: usize,
}

impl KpqParams {
    /// Creates the parameters, checking the paper's constraint `n ≥ 6q`.
    pub fn new(n: usize, q: usize) -> Self {
        assert!(q >= 3, "Lemma 6 handles q >= 3 (K2,2 is classic)");
        assert!(n >= 6 * q, "paper requires n >= 6q");
        KpqParams { n, q }
    }

    /// `n_A = ⌊n/2⌋`.
    pub fn na(&self) -> usize {
        self.n / 2
    }

    /// `n_B = ⌈n/2⌉`.
    pub fn nb(&self) -> usize {
        self.n - self.n / 2
    }

    /// The rung spacing `d = ⌊n/(2q)⌋`.
    pub fn d(&self) -> usize {
        self.n / (2 * self.q)
    }
}

/// The legal instance `I_{a,b}`: identifiers `ids_a`/`ids_b` must be
/// sorted sets of sizes `n_A`/`n_B` (the paper assigns them in
/// increasing order along each path).
pub fn instance_iab(params: KpqParams, ids_a: &[u64], ids_b: &[u64]) -> Graph {
    let (na, nb, d, q) = (params.na(), params.nb(), params.d(), params.q);
    assert_eq!(ids_a.len(), na);
    assert_eq!(ids_b.len(), nb);
    let mut b = GraphBuilder::new((na + nb) as u32);
    // path A on nodes 0..na, path B on nodes na..na+nb
    for v in 1..na as u32 {
        b.add_edge(v - 1, v).unwrap();
    }
    for v in 1..nb as u32 {
        b.add_edge(na as u32 + v - 1, na as u32 + v).unwrap();
    }
    // rungs: a[jd] -- b[jd], 1-based j, 1-based positions
    for j in 1..=q {
        let pos = (j * d - 1) as u32; // 0-based index of the jd-th node
        b.add_edge(pos, na as u32 + pos).unwrap();
    }
    let mut ids = ids_a.to_vec();
    ids.extend_from_slice(ids_b);
    b.with_ids(ids);
    b.build()
}

/// Default identifier sets: the paper partitions `{1..n²}`; we take
/// `a_i = {i·n+1, …}` style disjoint ranges for copies `i`.
pub fn default_ids(params: KpqParams, copy: usize, side_b: bool) -> Vec<u64> {
    let n = params.n as u64;
    let base = (copy as u64 * 2 + u64::from(side_b)) * n + 1;
    let len = if side_b { params.nb() } else { params.na() };
    (0..len as u64).map(|i| base + i).collect()
}

/// The glued illegal instance `J`: `q` copies `P_1..P_q` of the A-path
/// and `q` copies `Q_1..Q_q` of the B-path; rung `j` of copy `i` joins
/// `P_i[jd]` to `Q_{i+j mod q}[jd]`.
#[derive(Debug, Clone)]
pub struct GluedInstance {
    /// The graph.
    pub graph: Graph,
    /// Node ranges of each `P_i` (start, len).
    pub p_paths: Vec<(u32, u32)>,
    /// Node ranges of each `Q_i`.
    pub q_paths: Vec<(u32, u32)>,
}

/// Builds `J`.
pub fn instance_j(params: KpqParams) -> GluedInstance {
    let (na, nb, d, q) = (params.na(), params.nb(), params.d(), params.q);
    let n_total = q * (na + nb);
    let mut b = GraphBuilder::new(n_total as u32);
    let mut ids: Vec<u64> = Vec::with_capacity(n_total);
    let mut p_paths = Vec::with_capacity(q);
    let mut q_paths = Vec::with_capacity(q);
    let mut base = 0u32;
    for i in 0..q {
        p_paths.push((base, na as u32));
        for v in 1..na as u32 {
            b.add_edge(base + v - 1, base + v).unwrap();
        }
        ids.extend(default_ids(params, i, false));
        base += na as u32;
    }
    for i in 0..q {
        q_paths.push((base, nb as u32));
        for v in 1..nb as u32 {
            b.add_edge(base + v - 1, base + v).unwrap();
        }
        ids.extend(default_ids(params, i, true));
        base += nb as u32;
    }
    for (i, &(p_base, _)) in p_paths.iter().enumerate() {
        for j in 1..=q {
            let pos = (j * d - 1) as u32;
            let target = (i + j) % q;
            b.add_edge(p_base + pos, q_paths[target].0 + pos).unwrap();
        }
    }
    b.with_ids(ids);
    GluedInstance {
        graph: b.build(),
        p_paths,
        q_paths,
    }
}

/// Verifies the paper's explicit witness: contracting every path of `J`
/// yields `K_{q,q}`.
pub fn certify_j_has_kqq(inst: &GluedInstance, q: usize) -> bool {
    let part_of = |(start, len): (u32, u32)| -> Vec<NodeId> { (start..start + len).collect() };
    let mut parts: Vec<Vec<NodeId>> = inst.p_paths.iter().map(|&r| part_of(r)).collect();
    parts.extend(inst.q_paths.iter().map(|&r| part_of(r)));
    verify_minor_witness(&inst.graph, &parts, &bipartite_pairs(q, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_planar::embedding::is_outerplanar;

    #[test]
    fn iab_is_outerplanar_hence_legal() {
        for (n, q) in [(22, 3), (30, 3), (40, 4), (60, 5)] {
            let params = KpqParams::new(n, q);
            let g = instance_iab(
                params,
                &default_ids(params, 0, false),
                &default_ids(params, 0, true),
            );
            assert!(g.is_connected(), "rungs connect the two paths");
            assert!(
                is_outerplanar(&g),
                "I_ab must be outerplanar (n={n}, q={q})"
            );
        }
    }

    #[test]
    fn iab_shape() {
        let params = KpqParams::new(22, 3);
        let g = instance_iab(
            params,
            &default_ids(params, 0, false),
            &default_ids(params, 0, true),
        );
        assert_eq!(g.node_count(), 22);
        // edges: (na-1) + (nb-1) + q
        assert_eq!(g.edge_count(), 10 + 10 + 3);
    }

    #[test]
    fn j_contains_kqq() {
        for q in [3usize, 4, 5] {
            let params = KpqParams::new(6 * q + 4, q);
            let j = instance_j(params);
            assert!(j.graph.is_connected());
            assert!(certify_j_has_kqq(&j, q), "q={q}");
            // and is therefore not outerplanar (contains K2,3 minor)
            assert!(!is_outerplanar(&j.graph));
        }
    }

    #[test]
    fn j_local_views_match_iab() {
        // structural sanity behind the indistinguishability argument:
        // in J, each rung lands at the same position jd of its paths as
        // in I_ab, so the nodes' degrees match the legal instances
        let params = KpqParams::new(24, 3);
        let j = instance_j(params);
        let iab = instance_iab(
            params,
            &default_ids(params, 0, false),
            &default_ids(params, 0, true),
        );
        let deg_hist = |g: &Graph| {
            let mut h = [0usize; 4];
            for v in g.nodes() {
                h[g.degree(v).min(3)] += 1;
            }
            h
        };
        let hj = deg_hist(&j.graph);
        let hi = deg_hist(&iab);
        // J is q disjoint copies' worth of nodes with the same local
        // degree profile
        assert_eq!(hj[1], 3 * hi[1]);
        assert_eq!(hj[2], 3 * hi[2]);
        assert_eq!(hj[3], 3 * hi[3]);
    }

    #[test]
    fn default_ids_disjoint() {
        let params = KpqParams::new(24, 3);
        let mut all: Vec<u64> = Vec::new();
        for i in 0..3 {
            all.extend(default_ids(params, i, false));
            all.extend(default_ids(params, i, true));
        }
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "identifier sets must be pairwise disjoint");
    }

    #[test]
    #[should_panic(expected = "n >= 6q")]
    fn params_enforce_paper_constraint() {
        let _ = KpqParams::new(10, 3);
    }
}
