//! `dpc` — command-line front end.
//!
//! Graphs are exchanged in graph6 format (nauty / House of Graphs).
//!
//! ```text
//! dpc check <graph6>        planarity verdict with a certificate
//!                           (faces/genus, or the Kuratowski witness)
//! dpc certify <graph6>      run the Theorem 1 PLS end to end
//! dpc embed <graph6>        print the rotation system and faces
//! dpc kuratowski <graph6>   extract a subdivided K5/K3,3
//! dpc soundness <graph6> [seed]  attack battery on a no-instance
//! dpc gen <family> <n> [seed]   emit a generated graph as graph6
//!                           (families: dpc_service::gen::FAMILIES)
//!
//! dpc schemes               list the scheme registry (ids, classes,
//!                           certificate bounds, capabilities)
//! dpc serve <addr> [workers] [cache-mb] [--schemes a,b,c]
//!                           long-running service (default: all schemes)
//! dpc query <addr> certify [--no-cache] [--scheme <name>] <graph6>
//! dpc query <addr> check [--scheme <name>] <graph6>
//! dpc query <addr> gen <family> <n> [seed]
//! dpc query <addr> soundness [--scheme <name>] <graph6> [seed]
//! dpc query <addr> stats
//! dpc bench-serve <addr>|self [hits] [side] load generator; reports
//!                           cache-hit vs cache-miss latency
//! ```

use dpc::core::harness::run_pls;
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::{graph6, Graph};
use dpc::planar::kuratowski::extract_kuratowski;
use dpc::planar::lr::{planarity, Planarity};
use dpc::prelude::*;
use dpc_service::cache::CacheConfig;
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::wire::{CheckVerdict, Response};
use dpc_service::{Client, ServeConfig};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&refs) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Dispatches a command line; returns the output text.
fn run(args: &[&str]) -> Result<String, String> {
    match args {
        ["check", s] => check(parse(s)?),
        ["certify", s] => certify(parse(s)?),
        ["embed", s] => embed(parse(s)?),
        ["kuratowski", s] => kuratowski(parse(s)?),
        ["soundness", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            soundness(parse(s)?, seed)
        }
        ["gen", family, n, rest @ ..] => {
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            gen(family, n, seed)
        }
        ["schemes"] => schemes_cmd(),
        ["serve", addr, rest @ ..] => serve_cmd(addr, rest),
        ["query", addr, rest @ ..] => query_cmd(addr, rest),
        ["bench-serve", addr, rest @ ..] => bench_serve_cmd(addr, rest),
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: dpc check|certify|embed|kuratowski|soundness <graph6>  |  \
     dpc gen <family> <n> [seed]  |  dpc schemes  |  \
     dpc serve <addr> [workers] [cache-mb] [--schemes a,b,c]  |  \
     dpc query <addr> certify|check|gen|soundness|stats [--scheme <name>] ...  |  \
     dpc bench-serve <addr>|self [hits] [side]"
        .to_string()
}

/// Resolves a `--scheme <name>` CLI handle against the standard
/// registry (the server answers with its own error if it registers a
/// smaller set).
fn scheme_by_name(name: &str) -> Result<SchemeId, String> {
    let reg = SchemeRegistry::standard();
    reg.by_name(name)
        .map(|e| e.id)
        .ok_or_else(|| format!("unknown scheme {name:?} (see `dpc schemes`)"))
}

fn schemes_cmd() -> Result<String, String> {
    let reg = SchemeRegistry::standard();
    let mut out = format!(
        "{:>3}  {:<18} {:<44} {:<34} {}\n",
        "id", "name", "class", "certificates", "soundness-probe"
    );
    for e in reg.entries() {
        out.push_str(&format!(
            "{:>3}  {:<18} {:<44} {:<34} {}\n",
            e.id,
            e.name,
            e.caps.class,
            e.caps.cert_bound,
            if e.caps.soundness_probe { "yes" } else { "no" },
        ));
    }
    out.push_str("\nid 0 (planarity) is the wire default: requests without a scheme-id extension route there.\n");
    Ok(out)
}

fn parse(s: &str) -> Result<Graph, String> {
    graph6::decode(s).map_err(|e| format!("bad graph6 input: {e}"))
}

fn check(g: Graph) -> Result<String, String> {
    let mut out = format!(
        "graph: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    );
    match planarity(&g) {
        Planarity::Planar(rot) => {
            rot.euler_check().map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "PLANAR (certified: {} faces, Euler genus {})\n",
                rot.face_count(),
                rot.genus()
            ));
        }
        Planarity::NonPlanar => {
            let w = extract_kuratowski(&g).ok_or("inconsistent planarity result")?;
            out.push_str(&format!(
                "NOT PLANAR (certified: subdivided {:?} on {} edges, branch nodes {:?})\n",
                w.kind,
                w.edges.len(),
                w.branch_nodes
            ));
        }
    }
    Ok(out)
}

fn certify(g: Graph) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let scheme = PlanarityScheme::new();
    match run_pls(&scheme, &g) {
        Ok(outcome) => Ok(format!(
            "scheme: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nverdict: {}\n",
            scheme.name(),
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Err(e) => Ok(format!(
            "prover declines: {e}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n"
        )),
    }
}

fn embed(g: Graph) -> Result<String, String> {
    match planarity(&g) {
        Planarity::Planar(rot) => {
            let mut out = String::new();
            for v in 0..g.node_count() as u32 {
                out.push_str(&format!("rotation({v}): {:?}\n", rot.rotation(v)));
            }
            for (i, f) in rot.faces().iter().enumerate() {
                let cycle: Vec<u32> = f.iter().map(|&(u, _)| u).collect();
                out.push_str(&format!("face {i}: {cycle:?}\n"));
            }
            Ok(out)
        }
        Planarity::NonPlanar => Err("graph is not planar; no embedding".to_string()),
    }
}

fn kuratowski(g: Graph) -> Result<String, String> {
    match extract_kuratowski(&g) {
        Some(w) => {
            let mut out = format!(
                "{:?} subdivision, branch nodes {:?}\n",
                w.kind, w.branch_nodes
            );
            for (u, v) in &w.edges {
                out.push_str(&format!("  {u} -- {v}\n"));
            }
            Ok(out)
        }
        None => Err("graph is planar; no Kuratowski subgraph".to_string()),
    }
}

fn gen(family: &str, n: u32, seed: u64) -> Result<String, String> {
    let g = dpc_service::gen::make(family, n, seed)?;
    Ok(format!("{}\n", graph6::encode(&g)))
}

fn soundness(g: Graph, seed: u64) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let planar = dpc::planar::lr::is_planar(&g);
    let rows = dpc::core::adversary::soundness_report(&PlanarityScheme::new(), &g, seed);
    let mut out = format!(
        "graph: {} nodes, {} edges ({})\n",
        g.node_count(),
        g.edge_count(),
        if planar {
            "planar — attacks are expected to succeed; soundness only \
             quantifies over no-instances"
        } else {
            "non-planar no-instance"
        }
    );
    let fooled: Vec<&str> = rows
        .iter()
        .filter(|r| r.rejects == Some(0))
        .map(|r| r.attack)
        .collect();
    out.push_str(&soundness_table(
        rows.iter()
            .map(|r| (r.attack.to_string(), r.rejects.map(|x| x as u64))),
    ));
    if !planar {
        if fooled.is_empty() {
            out.push_str("soundness holds for this sample: every applicable attack left at least one rejecting node\n");
        } else {
            out.push_str(&format!(
                "SOUNDNESS VIOLATION: attack(s) {} fooled every node on a no-instance (bug!)\n",
                fooled.join(", ")
            ));
        }
    }
    Ok(out)
}

fn soundness_table(rows: impl Iterator<Item = (String, Option<u64>)>) -> String {
    let mut out = format!("{:<20} {:>10}\n", "attack", "rejects");
    for (attack, rejects) in rows {
        match rejects {
            Some(r) => out.push_str(&format!("{attack:<20} {r:>10}\n")),
            None => out.push_str(&format!("{attack:<20} {:>10}\n", "n/a")),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Service subcommands.

fn serve_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    let mut cfg = ServeConfig::default();
    // split off a trailing `--schemes a,b,c` restriction first
    let (rest, registry) = match rest {
        [head @ .., "--schemes", list] => (
            head,
            SchemeRegistry::with_schemes(&list.split(',').collect::<Vec<_>>())?,
        ),
        _ => (rest, SchemeRegistry::standard()),
    };
    match rest {
        [] => {}
        [workers] => {
            cfg.workers = workers
                .parse()
                .map_err(|_| "workers must be a number".to_string())?;
        }
        [workers, cache_mb] => {
            cfg.workers = workers
                .parse()
                .map_err(|_| "workers must be a number".to_string())?;
            let mb: usize = cache_mb
                .parse()
                .map_err(|_| "cache-mb must be a number".to_string())?;
            cfg.cache = CacheConfig {
                byte_budget: mb << 20,
                ..CacheConfig::default()
            };
        }
        _ => return Err(usage()),
    }
    let handle = dpc_service::serve_with_registry(addr, cfg.clone(), registry)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "dpc serve: listening on {} ({} workers, {} MiB cache, batch {} max, schemes: {})",
        handle.addr(),
        cfg.workers,
        cfg.cache.byte_budget >> 20,
        cfg.batch_max,
        handle
            .registry()
            .entries()
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(","),
    );
    handle.wait();
    Ok(String::new())
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn query_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    // `--scheme <name>` may appear after the subcommand of any
    // graph-carrying query; strip it here so the match below stays flat
    let mut args: Vec<&str> = rest.to_vec();
    let mut scheme = SchemeId::PLANARITY;
    let mut scheme_name = "planarity".to_string();
    if let Some(pos) = args.iter().position(|&a| a == "--scheme") {
        let name = args
            .get(pos + 1)
            .ok_or_else(|| "--scheme needs a name".to_string())?;
        scheme = scheme_by_name(name)?;
        scheme_name = name.to_string();
        args.drain(pos..pos + 2);
    }
    let mut client = connect(addr)?;
    let response = match args.as_slice() {
        ["certify", s] => client.certify_scheme(&parse(s)?, false, scheme),
        ["certify", "--no-cache", s] => client.certify_scheme(&parse(s)?, true, scheme),
        ["check", s] => client.check_scheme(&parse(s)?, scheme),
        ["gen", family, n, rest @ ..] => {
            if scheme != SchemeId::PLANARITY {
                // refuse rather than silently ignore the flag:
                // generation is scheme-independent
                return Err(
                    "gen does not take --scheme (families are scheme-independent; \
                            see `dpc gen` for the list)"
                        .to_string(),
                );
            }
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            let g = client.gen(family, n, seed).map_err(|e| e.to_string())?;
            return Ok(format!("{}\n", graph6::encode(&g)));
        }
        ["soundness", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            client.soundness_scheme(&parse(s)?, seed, scheme)
        }
        ["stats"] => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            return Ok(format!("{stats}\n"));
        }
        _ => return Err(usage()),
    };
    render_response(response.map_err(|e| e.to_string())?, &scheme_name)
}

fn render_response(resp: Response, scheme: &str) -> Result<String, String> {
    match resp {
        Response::Error(e) => Err(e),
        Response::Certified {
            cached,
            outcome,
            assignment,
        } => Ok(format!(
            "scheme: {scheme}\ncache: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nassignment: {} certificates, {} bytes\nverdict: {}\n",
            if cached { "hit" } else { "miss" },
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            assignment.certs.len(),
            assignment.byte_size(),
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Response::Declined { cached, reason } => Ok(format!(
            "prover declines ({}): {reason}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n",
            if cached { "cached" } else { "fresh" },
        )),
        Response::Checked(CheckVerdict::Planar { faces, genus }) => Ok(format!(
            "PLANAR (certified: {faces} faces, Euler genus {genus})\n"
        )),
        Response::Checked(CheckVerdict::NonPlanar {
            k5,
            branch_nodes,
            witness_edges,
        }) => Ok(format!(
            "NOT PLANAR (certified: subdivided {} on {witness_edges} edges, branch nodes {branch_nodes:?})\n",
            if k5 { "K5" } else { "K33" },
        )),
        Response::Checked(CheckVerdict::Member { scheme }) => {
            Ok(format!("IN CLASS ({scheme}: the honest prover certifies this instance)\n"))
        }
        Response::Checked(CheckVerdict::NonMember { scheme, reason }) => {
            Ok(format!("NOT IN CLASS ({scheme}): {reason}\n"))
        }
        Response::Generated(g) => Ok(format!("{}\n", graph6::encode(&g))),
        Response::Soundness(rows) => Ok(soundness_table(
            rows.into_iter().map(|r| (r.attack, r.rejects)),
        )),
        Response::Stats(s) => Ok(format!("{s}\n")),
    }
}

fn bench_serve_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    let (hits, side) = match rest {
        [] => (32usize, 100u32),
        [hits] => (
            hits.parse()
                .map_err(|_| "hits must be a number".to_string())?,
            100,
        ),
        [hits, side] => (
            hits.parse()
                .map_err(|_| "hits must be a number".to_string())?,
            side.parse()
                .map_err(|_| "side must be a number".to_string())?,
        ),
        _ => return Err(usage()),
    };
    // at least one sample on each side, or the percentiles (and the
    // reported speedup) would be fabricated from zero measurements
    let hits = hits.max(1);
    let own_server = if addr == "self" {
        Some(
            dpc_service::serve("127.0.0.1:0", ServeConfig::default())
                .map_err(|e| format!("cannot bind loopback: {e}"))?,
        )
    } else {
        None
    };
    let target = own_server
        .as_ref()
        .map(|h| h.addr().to_string())
        .unwrap_or_else(|| addr.to_string());
    let mut client = connect(&target)?;
    let g = dpc::graph::generators::grid(side, side);

    let expect_certified = |resp: Response, want_cached: bool| -> Result<(), String> {
        match resp {
            Response::Certified { cached, .. } if cached == want_cached => Ok(()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    };

    // cold misses: bypass the cache so every query is a fresh prove
    let misses = 3usize.min(hits.max(1));
    let mut miss_lat = Vec::with_capacity(misses);
    for _ in 0..misses {
        let start = Instant::now();
        expect_certified(client.certify(&g, true).map_err(|e| e.to_string())?, false)?;
        miss_lat.push(start.elapsed());
    }

    // one caching query (a miss on a cold server; a long-running
    // server may already hold the graph, which is fine), then the
    // measured hit loop
    match client.certify(&g, false).map_err(|e| e.to_string())? {
        Response::Certified { .. } => {}
        other => return Err(format!("unexpected response: {other:?}")),
    }
    let mut hit_lat = Vec::with_capacity(hits);
    let hit_wall = Instant::now();
    for _ in 0..hits {
        let start = Instant::now();
        expect_certified(client.certify(&g, false).map_err(|e| e.to_string())?, true)?;
        hit_lat.push(start.elapsed());
    }
    let hit_wall = hit_wall.elapsed();

    let stats = client.stats().map_err(|e| e.to_string())?;
    let miss_p50 = percentile(&mut miss_lat, 0.50);
    let hit_p50 = percentile(&mut hit_lat, 0.50);
    let hit_p99 = percentile(&mut hit_lat, 0.99);
    let speedup = miss_p50.as_secs_f64() / hit_p50.as_secs_f64().max(1e-9);
    let out = format!(
        "bench-serve against {target} on grid({side},{side}) ({} nodes)\n\
         cache-miss (fresh prove): {} queries, p50 {:.3} ms\n\
         cache-hit: {} queries, p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s\n\
         speedup (miss p50 / hit p50): {speedup:.1}x {}\n\
         server: {} hits, {} misses, {} proves, {} cache bytes\n",
        g.node_count(),
        misses,
        miss_p50.as_secs_f64() * 1e3,
        hits,
        hit_p50.as_secs_f64() * 1e3,
        hit_p99.as_secs_f64() * 1e3,
        hits as f64 / hit_wall.as_secs_f64().max(1e-9),
        if speedup >= 10.0 {
            "(>= 10x: cache pays for itself)"
        } else {
            "(WARNING: below the 10x acceptance bar)"
        },
        stats.cache_hits,
        stats.cache_misses,
        stats.proves,
        stats.cache_bytes,
    );
    if let Some(handle) = own_server {
        handle.shutdown();
    }
    Ok(out)
}

fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_planar_and_nonplanar() {
        let out = run(&["check", "Bw"]).unwrap(); // K3
        assert!(out.contains("PLANAR"));
        let out = run(&["check", "D~{"]).unwrap(); // K5
        assert!(out.contains("NOT PLANAR"));
        assert!(out.contains("K5"));
    }

    #[test]
    fn certify_round_trip() {
        let g6 = run(&["gen", "triangulation", "40", "7"]).unwrap();
        let out = run(&["certify", g6.trim()]).unwrap();
        assert!(out.contains("all nodes accept"));
        assert!(out.contains("rounds: 1"));
        let out = run(&["certify", "D~{"]).unwrap();
        assert!(out.contains("prover declines"));
    }

    #[test]
    fn embed_lists_faces() {
        let out = run(&["embed", "Bw"]).unwrap(); // triangle: two faces
        assert_eq!(out.matches("face ").count(), 2);
        assert!(run(&["embed", "D~{"]).is_err());
    }

    #[test]
    fn kuratowski_extraction() {
        let g6 = run(&["gen", "k33sub", "2", "1"]).unwrap();
        let out = run(&["kuratowski", g6.trim()]).unwrap();
        assert!(out.contains("K33"));
        assert!(run(&["kuratowski", "Bw"]).is_err());
    }

    #[test]
    fn usage_and_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["gen", "nosuch", "5"]).is_err());
        assert!(run(&["check", "\u{1}"]).is_err());
        assert!(
            run(&["query", "127.0.0.1:1", "stats"]).is_err(),
            "nothing listens there"
        );
        assert!(run(&["serve", "definitely:not:an:addr"]).is_err());
    }

    #[test]
    fn soundness_subcommand_prints_the_attack_table() {
        let g6 = run(&["gen", "planted-k5", "20", "3"]).unwrap();
        let out = run(&["soundness", g6.trim(), "1"]).unwrap();
        assert!(out.contains("non-planar no-instance"));
        assert!(out.contains("attack"));
        assert!(out.contains("replay-planarized"));
        assert!(out.contains("soundness holds"));
        // planar instances get the caveat instead
        let out = run(&["soundness", "Bw"]).unwrap();
        assert!(out.contains("attacks are expected to succeed"));
    }

    #[test]
    fn gen_covers_the_service_families() {
        for family in dpc_service::gen::FAMILIES {
            let out = run(&["gen", family, "20", "2"]).unwrap();
            assert!(graph6::decode(out.trim()).is_ok(), "{family}");
        }
    }

    #[test]
    fn query_round_trip_against_a_live_server() {
        let handle = dpc_service::serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let g6 = run(&["gen", "grid", "49", "1"]).unwrap();
        let g6 = g6.trim();

        let first = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(first.contains("cache: miss"));
        assert!(first.contains("all nodes accept"));
        let second = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(second.contains("cache: hit"));

        let checked = run(&["query", &addr, "check", "D~{"]).unwrap();
        assert!(checked.contains("NOT PLANAR"));
        let declined = run(&["query", &addr, "certify", "D~{"]).unwrap();
        assert!(declined.contains("prover declines"));

        let generated = run(&["query", &addr, "gen", "cycle", "12"]).unwrap();
        assert_eq!(graph6::decode(generated.trim()).unwrap().node_count(), 12);

        let stats = run(&["query", &addr, "stats"]).unwrap();
        assert!(stats.contains("1 hits"), "{stats}");

        handle.shutdown();
    }

    #[test]
    fn schemes_lists_the_registry() {
        let out = run(&["schemes"]).unwrap();
        for name in [
            "planarity",
            "bipartite",
            "tree",
            "spanning-tree",
            "path-outerplanar",
            "non-planarity",
            "universal",
            "mod-counter",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("O(log n) bits (Theorem 1)"));
        assert!(out.contains("wire default"));
    }

    #[test]
    fn query_scheme_flag_routes_and_isolates() {
        let handle = dpc_service::serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let g6 = run(&["gen", "grid", "36", "1"]).unwrap();
        let g6 = g6.trim();

        // same graph, two schemes: two cache entries, each with its
        // own miss-then-hit sequence
        let plan = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(plan.contains("scheme: planarity"), "{plan}");
        assert!(plan.contains("cache: miss"));
        let bip = run(&["query", &addr, "certify", "--scheme", "bipartite", g6]).unwrap();
        assert!(bip.contains("scheme: bipartite"), "{bip}");
        assert!(bip.contains("cache: miss"), "no cross-scheme hit: {bip}");
        assert!(bip.contains("all nodes accept"));
        let bip2 = run(&["query", &addr, "certify", "--scheme", "bipartite", g6]).unwrap();
        assert!(bip2.contains("cache: hit"), "{bip2}");

        // generic membership verdicts
        let member = run(&["query", &addr, "check", "--scheme", "bipartite", g6]).unwrap();
        assert!(member.contains("IN CLASS"), "{member}");
        let non = run(&["query", &addr, "check", "--scheme", "tree", g6]).unwrap();
        assert!(non.contains("NOT IN CLASS"), "{non}");

        // spanning-tree certifies any connected graph
        let st = run(&["query", &addr, "certify", "--scheme", "spanning-tree", g6]).unwrap();
        assert!(st.contains("scheme: spanning-tree"), "{st}");
        assert!(st.contains("all nodes accept"), "{st}");

        // mod-counter needs the Lemma 5 block identifiers, which the
        // graph6 format cannot carry (the binary wire protocol can —
        // see crates/service/tests/registry_e2e.rs): the prover
        // declines honestly instead of mis-certifying
        let blocks = run(&["gen", "blocks", "30", "4"]).unwrap();
        let mc = run(&[
            "query",
            &addr,
            "certify",
            "--scheme",
            "mod-counter",
            blocks.trim(),
        ])
        .unwrap();
        assert!(mc.contains("paths of blocks"), "{mc}");

        // per-scheme stats rows over the wire
        let stats = run(&["query", &addr, "stats"]).unwrap();
        assert!(stats.contains("bipartite"), "{stats}");
        assert!(stats.contains("mod-counter"), "{stats}");

        // unknown scheme name fails client-side with a pointer
        let err = run(&["query", &addr, "certify", "--scheme", "nosuch", g6]).unwrap_err();
        assert!(err.contains("dpc schemes"), "{err}");

        // gen refuses --scheme instead of silently ignoring it
        let err = run(&["query", &addr, "gen", "grid", "9", "--scheme", "bipartite"]).unwrap_err();
        assert!(err.contains("scheme-independent"), "{err}");

        handle.shutdown();
    }

    #[test]
    fn serve_schemes_flag_validates_names() {
        assert!(run(&["serve", "127.0.0.1:1", "--schemes", "nosuch"]).is_err());
    }

    #[test]
    fn bench_serve_reports_the_speedup() {
        // small grid keeps the test fast; the 10x acceptance bar on
        // grid(100,100) is asserted in crates/service/tests/service_e2e.rs
        let out = run(&["bench-serve", "self", "8", "40"]).unwrap();
        assert!(out.contains("cache-hit"));
        assert!(out.contains("cache-miss"));
        assert!(out.contains("speedup"));
    }
}
