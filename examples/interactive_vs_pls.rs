//! The prior state of the art vs Theorem 1: a dMAM interactive proof
//! (Naor–Parter–Yogev-style, 3 interactions + randomness) against the
//! paper's deterministic 1-interaction proof-labeling scheme.
//!
//! Run with: `cargo run --example interactive_vs_pls`

use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::generators;
use dpc::interactive::dmam::{detection_rate, run_dmam, DmamPlanarity, DmamProtocol};
use dpc::prelude::*;

fn main() {
    let g = generators::stacked_triangulation(1000, 3);
    println!(
        "instance: random planar triangulation, n = {}",
        g.node_count()
    );

    // Theorem 1: one deterministic Merlin message.
    let pls = PlanarityScheme::new();
    let out = run_pls(&pls, &g).unwrap();
    println!("\nPLS (this paper):");
    println!("  interactions : 1 (Merlin only)");
    println!("  randomness   : none");
    println!("  certificate  : {} bits max", out.max_cert_bits);
    println!("  soundness    : perfect (no error)");
    assert!(out.all_accept());

    // The dMAM baseline: commit, public coin, response.
    let proto = DmamPlanarity::new();
    let out = run_dmam(&proto, &g, 99).unwrap();
    println!("\ndMAM baseline (NPY-style interaction pattern):");
    println!(
        "  interactions : {} (Merlin, Arthur, Merlin)",
        out.interactions
    );
    println!("  randomness   : {} public-coin bits", out.challenge_bits);
    println!(
        "  messages     : {} bits commit + {} bits response",
        out.max_commit_bits, out.max_response_bits
    );
    assert!(out.all_accept());

    // The price of randomness: one-sided soundness error, measured.
    let bad = generators::planted_kuratowski(60, true, 1, 5);
    println!(
        "\nsoundness on a non-planar instance (n = {}):",
        bad.node_count()
    );
    println!(
        "  PLS          : prover declines = {}, forged replays always caught",
        pls.prove(&bad).is_err()
    );
    let rate = detection_rate(&bad, 50, 11);
    println!("  dMAM         : single-shot detection rate = {rate:.2} (amplify by repetition)");

    // The dMAM exists because commit+response can be smaller; the paper's
    // point is that one deterministic message already achieves O(log n).
    let commit = proto.commit(&g).unwrap();
    let pls_bits = pls.prove(&g).unwrap().max_bits();
    println!(
        "\ncommit alone is {} bits vs {} bits for the full PLS certificate —",
        commit.max_bits(),
        pls_bits
    );
    println!("both are O(log n): interaction and randomness buy only constants here,");
    println!("which is exactly the paper's message (Theorem 1 subsumes the dMAM).");
}
