//! Integration of the Section 4 constructions with the rest of the
//! stack: the legal instances really are certified legal by the upper
//! bound machinery, the illegal ones really are illegal, and the
//! pigeonhole forgery runs end to end on the simulator.

use dpc::core::harness::run_pls;
use dpc::graph::minors;
use dpc::lowerbounds::blocks::{
    certify_cycle_has_kk, certify_path_kfree, cycle_of_blocks, path_of_blocks,
};
use dpc::lowerbounds::counting::{accepts_path, crossover_p, forge_cycle, ModCounterScheme};
use dpc::lowerbounds::kpq::{certify_j_has_kqq, default_ids, instance_iab, instance_j, KpqParams};
use dpc::prelude::*;

#[test]
fn k4_block_paths_are_planar_and_certifiable() {
    // for k=4 the legal Lemma 5 instances are planar (K4-minor-free ⊂
    // planar), so Theorem 1's scheme must accept them — the upper and
    // lower bound machineries meet
    for p in [2usize, 8, 30] {
        let perm: Vec<usize> = (1..=p).collect();
        let inst = path_of_blocks(4, &perm);
        assert!(certify_path_kfree(&inst));
        assert!(planarity(&inst.graph).is_planar());
        let out = run_pls(&PlanarityScheme::new(), &inst.graph).unwrap();
        assert!(out.all_accept(), "p={p}");
    }
}

#[test]
fn k4_block_cycles_are_nonplanar_when_k4_appears() {
    // cycles of blocks with k=4 contain K4; K4 alone does not force
    // non-planarity, so cross-check with the dedicated tests instead
    let inst = cycle_of_blocks(4, &[1, 2, 3, 4]);
    assert!(certify_cycle_has_kk(&inst));
    assert!(minors::has_k4_minor(&inst.graph));
}

#[test]
fn k5_and_k6_constructions_validated() {
    for k in [5usize, 6] {
        let perm: Vec<usize> = (1..=10).collect();
        let path = path_of_blocks(k, &perm);
        assert!(certify_path_kfree(&path), "k={k}");
        let cycle = cycle_of_blocks(k, &perm);
        assert!(certify_cycle_has_kk(&cycle), "k={k}");
    }
    // k=5 cycles contain K5 hence are non-planar: the non-planarity
    // scheme certifies them
    let cycle = cycle_of_blocks(5, &[1, 2, 3]);
    assert!(!planarity(&cycle.graph).is_planar());
    let out = run_pls(&NonPlanarityScheme::new(), &cycle.graph).unwrap();
    assert!(out.all_accept());
}

#[test]
fn permuted_paths_share_structure() {
    // the counting argument needs: all p! permutations are legal
    // instances with the same block contents
    for perm in [
        vec![1usize, 2, 3, 4, 5],
        vec![5, 4, 3, 2, 1],
        vec![2, 4, 1, 5, 3],
    ] {
        let inst = path_of_blocks(4, &perm);
        assert!(certify_path_kfree(&inst));
        assert_eq!(inst.graph.node_count(), 3 * 7);
    }
}

#[test]
fn forgery_end_to_end_for_growing_g() {
    for g in 1..=5u32 {
        let scheme = ModCounterScheme::new(4, g);
        assert!(accepts_path(
            &scheme,
            &(1..=(1 << g)).collect::<Vec<usize>>()
        ));
        let f = forge_cycle(&scheme);
        assert!(f.fully_accepted, "g={g}");
        assert!(certify_cycle_has_kk(&f.cycle));
        assert_eq!(f.assignment.max_bits(), g as usize, "exactly g bits used");
    }
}

#[test]
fn crossover_matches_manual_inequality() {
    for (k, g) in [(4u32, 1u32), (4, 2), (5, 1)] {
        let p = crossover_p(k, g);
        let c = ((k - 1) * g) as f64 * std::f64::consts::LN_2;
        let lnf = |p: u64| -> f64 { (2..=p).map(|i| (i as f64).ln()).sum() };
        assert!(lnf(p) > c * p as f64);
        assert!(lnf(p - 1) <= c * (p - 1) as f64);
    }
}

#[test]
fn kpq_legal_instances_accepted_by_planarity_scheme() {
    // I_ab is outerplanar hence planar: Theorem 1's scheme accepts it
    let params = KpqParams::new(30, 3);
    let g = instance_iab(
        params,
        &default_ids(params, 0, false),
        &default_ids(params, 0, true),
    );
    assert!(dpc::planar::embedding::is_outerplanar(&g));
    let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
    assert!(out.all_accept());
}

#[test]
fn kpq_illegal_instance_has_minor_and_big_q_scales() {
    for q in [3usize, 4, 6] {
        let params = KpqParams::new(6 * q + 6, q);
        let j = instance_j(params);
        assert!(certify_j_has_kqq(&j, q), "q={q}");
        assert_eq!(
            j.graph.node_count(),
            q * (params.na() + params.nb()),
            "q copies of both paths"
        );
    }
}

#[test]
fn outerplanar_corollary_instances() {
    // outerplanar = Forb({K4, K2,3}): the lower bound applies to it via
    // the same machinery; sanity-check the ingredients
    let params = KpqParams::new(24, 3);
    let iab = instance_iab(
        params,
        &default_ids(params, 0, false),
        &default_ids(params, 0, true),
    );
    // legal: K4-minor-free AND K2,3-minor-free (outerplanar)
    assert!(!minors::has_k4_minor(&iab));
    assert!(dpc::planar::embedding::is_outerplanar(&iab));
    // illegal: J has a K3,3 minor, hence also K2,3: not outerplanar
    let j = instance_j(params);
    assert!(!dpc::planar::embedding::is_outerplanar(&j.graph));
}
