//! The two-tier certificate store the server runs: the lock-striped
//! LRU [`CertCache`] as the hot tier, fronting an optional persistent
//! cold tier (any [`CertStore`], in practice the
//! [`super::SegmentStore`]).
//!
//! Data flow:
//!
//! * **lookup** — hot first (an `Arc` handle clone); on a hot miss
//!   the cold tier is probed, and a cold hit is *promoted*: rebuilt
//!   into a full entry and re-inserted into the hot tier so the next
//!   lookup is a pure memory hit.
//! * **insert** — write-behind: the entry lands in the hot tier and
//!   its record is appended to the cold tier in the same call (no
//!   fsync — durability is [`TieredCache::flush`]'s job, on graceful
//!   shutdown). Because every cached entry is already on disk, a hot
//!   LRU eviction is a *demotion* — the certificate is still
//!   servable, just one positioned read away — instead of a loss.
//! * **warm load** — at boot the cold tier is replayed into the hot
//!   tier (newest first would need no budget; instead the load stops
//!   at the hot byte budget, and everything else stays cold).

use super::{CertStore, StoreRecord, StoreStats};
use crate::cache::{CacheEntry, CacheStats, CertCache};
use dpc_graph::canon::GraphHash;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Combined counters of both tiers.
#[derive(Debug, Clone, Copy, Default)]
pub struct TieredStats {
    /// Hot-tier (LRU cache) counters.
    pub hot: CacheStats,
    /// Cold-tier counters, if a cold tier is attached.
    pub cold: Option<StoreStats>,
    /// Cold hits rebuilt and re-inserted into the hot tier.
    pub promotions: u64,
    /// Hot evictions while a cold tier is attached (the entry
    /// normally remains servable from disk — unless its write-behind
    /// failed, see `write_errors`). Equal to hot evictions when a
    /// cold tier is attached, 0 otherwise.
    pub demotions: u64,
    /// Cold-tier appends that failed (the request still succeeds
    /// from the hot tier; the record is just not durable).
    pub write_errors: u64,
}

/// Hot LRU cache over an optional persistent cold tier.
pub struct TieredCache {
    hot: CertCache,
    cold: Option<Arc<dyn CertStore>>,
    promotions: AtomicU64,
    write_errors: AtomicU64,
}

impl TieredCache {
    /// A memory-only stack (the pre-store behavior).
    pub fn hot_only(hot: CertCache) -> TieredCache {
        TieredCache {
            hot,
            cold: None,
            promotions: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// A hot tier fronting the given cold tier.
    pub fn with_cold(hot: CertCache, cold: Arc<dyn CertStore>) -> TieredCache {
        TieredCache {
            hot,
            cold: Some(cold),
            promotions: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// The cold tier, if one is attached.
    pub fn cold(&self) -> Option<&Arc<dyn CertStore>> {
        self.cold.as_ref()
    }

    /// Looks up an entry in the hot tier, falling back to the cold
    /// tier (and promoting the record into the hot tier on a cold
    /// hit). Either way a `Some` means the certificate bytes were
    /// proved before this call — the server answers `cached = true`.
    pub fn lookup(&self, key: GraphHash, keyed: &[u8]) -> Option<Arc<CacheEntry>> {
        if let Some(entry) = self.hot.lookup(key, keyed) {
            return Some(entry);
        }
        let cold = self.cold.as_ref()?;
        let record = cold.get(key, keyed)?;
        // an undecodable record reads as a miss (the prover re-runs);
        // the read path already counted the corruption
        let entry = record.to_entry().ok()?;
        let entry = self.hot.insert(key, Arc::new(entry));
        self.promotions.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }

    /// Inserts a freshly proved entry: hot tier plus a write-behind
    /// append to the cold tier (entries with empty keyed bytes —
    /// cache bypasses — are not persisted). Returns the canonical
    /// entry to answer with, as [`CertCache::insert`] does.
    pub fn insert(&self, key: GraphHash, entry: Arc<CacheEntry>) -> Arc<CacheEntry> {
        let kept = self.hot.insert(key, entry);
        if let Some(cold) = &self.cold {
            if !kept.keyed.is_empty() && cold.put(&kept.record()).is_err() {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        kept
    }

    /// Absorbs a record that arrived over the wire (a replica write,
    /// a read-repair backfill, or a peer's anti-entropy push):
    /// `SegmentStore::merge_from`'s dedup-by-key semantics, one
    /// record at a time. Returns `Ok(true)` if the record was newly
    /// stored. A fresh record also lands in the hot tier, so a
    /// replica serves it from memory immediately — that is what lets
    /// a killed owner's traffic stay prove-free on its replicas.
    pub fn absorb(&self, record: &StoreRecord) -> io::Result<bool> {
        match &self.cold {
            Some(cold) => {
                let fresh = cold.put(record)?;
                if fresh {
                    // an undecodable-but-CRC-valid record stays cold
                    // only; it is served via promotion if it ever
                    // becomes readable
                    if let Ok(entry) = record.to_entry() {
                        self.hot.insert(record.key(), Arc::new(entry));
                    }
                }
                Ok(fresh)
            }
            None => CertStore::put(&self.hot, record),
        }
    }

    /// The content keys of every retained record — the store digest a
    /// StoreList response carries. Reads the cold tier when one is
    /// attached (the authoritative set); hot-only stacks report the
    /// cache, minus bypass entries (empty keyed bytes), which are
    /// not addressable by key.
    pub fn content_keys(&self) -> Vec<u128> {
        self.iter_content()
            .filter_map(|r| r.ok())
            .filter(|r| !r.keyed.is_empty())
            .map(|r| r.key().0)
            .collect()
    }

    /// Iterates every retained record from the same tier
    /// [`content_keys`](Self::content_keys) reads — what an
    /// anti-entropy sweep streams to a peer that lacks some of them.
    pub fn iter_content(&self) -> Box<dyn Iterator<Item = std::io::Result<StoreRecord>> + '_> {
        let source: &dyn CertStore = match &self.cold {
            Some(cold) => cold.as_ref(),
            None => &self.hot,
        };
        source.iter()
    }

    /// Replays the cold tier into the hot tier, newest records first
    /// (the likeliest next queries), until roughly `max_bytes` of
    /// entry cost has been loaded — the rest stays cold, one
    /// positioned read away. Returns the number of entries loaded.
    /// Unreadable records are skipped; they re-prove on demand.
    pub fn warm_load(&self, max_bytes: usize) -> u64 {
        let Some(cold) = &self.cold else {
            return 0;
        };
        let mut loaded = 0u64;
        let mut bytes = 0usize;
        for record in cold.iter_newest_first() {
            let Ok(record) = record else { continue };
            let Ok(entry) = record.to_entry() else {
                continue;
            };
            let key = record.key();
            bytes += entry.cost();
            self.hot.insert(key, Arc::new(entry));
            loaded += 1;
            if bytes >= max_bytes {
                break;
            }
        }
        loaded
    }

    /// Removes a record from *both* tiers — the auditor's quarantine
    /// path for records whose bytes are CRC-valid but fail
    /// re-verification. Returns true if either tier held the record.
    /// Content addressing makes this transparently safe under live
    /// traffic: the next query for the key misses, re-proves, and
    /// re-stores a fresh record. The quarantined frame lingers in the
    /// segment file as garbage until the next compaction; only the
    /// index serves reads, so it is unreachable immediately.
    pub fn quarantine(&self, key: GraphHash) -> bool {
        let hot = self.hot.remove(key);
        let cold = match &self.cold {
            Some(cold) => cold.remove(key).unwrap_or(false),
            None => false,
        };
        hot || cold
    }

    /// Fsyncs the cold tier (graceful-shutdown durability).
    pub fn flush(&self) -> io::Result<()> {
        match &self.cold {
            Some(cold) => cold.flush(),
            None => Ok(()),
        }
    }

    /// Runs the cold tier's background maintenance (compaction once
    /// garbage outweighs live records) — called from the server's
    /// flusher thread, never from a request.
    pub fn maintain(&self) -> io::Result<()> {
        match &self.cold {
            Some(cold) => cold.maintain(),
            None => Ok(()),
        }
    }

    /// Counters of both tiers.
    pub fn stats(&self) -> TieredStats {
        let hot = self.hot.stats();
        let cold = self.cold.as_ref().map(|c| c.stats());
        TieredStats {
            demotions: if cold.is_some() { hot.evictions } else { 0 },
            hot,
            cold,
            promotions: self.promotions.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::sample_entry;
    use super::super::MemStore;
    use super::*;
    use crate::cache::CacheConfig;

    fn tiny_hot(entries: usize) -> CertCache {
        let cost = sample_entry(20, 0).cost();
        CertCache::new(CacheConfig {
            shards: 1,
            byte_budget: cost * entries,
        })
    }

    #[test]
    fn cold_hit_promotes_and_serves_identical_bytes() {
        let tiered = TieredCache::with_cold(tiny_hot(2), Arc::new(MemStore::new()));
        let entries: Vec<_> = (0..6u64).map(|s| Arc::new(sample_entry(20, s))).collect();
        for e in &entries {
            tiered.insert(e.record().key(), Arc::clone(e));
        }
        let stats = tiered.stats();
        assert!(stats.demotions >= 3, "tiny hot tier demotes: {stats:?}");
        assert_eq!(stats.cold.unwrap().records, 6, "write-behind persisted all");
        // every entry is retrievable, hot or cold
        for e in &entries {
            let got = tiered
                .lookup(e.record().key(), &e.keyed)
                .expect("retrievable");
            assert_eq!(got.suffix, e.suffix, "byte-identical suffix");
        }
        let stats = tiered.stats();
        assert!(stats.promotions >= 1, "cold hits promote: {stats:?}");
        // the most recently promoted entry is now a pure hot hit
        let e = entries.last().unwrap();
        let hot_hits_before = tiered.stats().hot.hits;
        tiered.lookup(e.record().key(), &e.keyed).unwrap();
        assert!(tiered.stats().hot.hits > hot_hits_before);
    }

    #[test]
    fn warm_load_respects_the_byte_limit() {
        let store = Arc::new(MemStore::new());
        let entries: Vec<_> = (0..8u64).map(|s| sample_entry(20, s)).collect();
        for e in &entries {
            store.put(&e.record()).unwrap();
        }
        let cost = entries[0].cost();
        let tiered = TieredCache::with_cold(tiny_hot(8), Arc::clone(&store) as _);
        let loaded = tiered.warm_load(cost * 3);
        assert!(
            (3..=4).contains(&(loaded as usize)),
            "loads until the limit: {loaded}"
        );
        // the *newest* records were loaded: looking them up is a pure
        // hot hit, no promotion
        let last = entries.last().unwrap();
        assert!(tiered.lookup(last.record().key(), &last.keyed).is_some());
        assert_eq!(tiered.stats().promotions, 0, "newest were warm-loaded");
        // the oldest stayed cold and still serves (via promotion)
        let first = &entries[0];
        assert!(tiered.lookup(first.record().key(), &first.keyed).is_some());
        assert_eq!(tiered.stats().promotions, 1, "oldest came from cold");
    }

    #[test]
    fn absorb_dedups_by_key_and_warms_the_hot_tier() {
        let tiered = TieredCache::with_cold(tiny_hot(4), Arc::new(MemStore::new()));
        let e = sample_entry(20, 1);
        assert!(tiered.absorb(&e.record()).unwrap(), "fresh record");
        assert!(!tiered.absorb(&e.record()).unwrap(), "duplicate is a no-op");
        assert_eq!(tiered.content_keys(), vec![e.record().key().0]);
        // absorbed records serve from the hot tier without promotion
        assert!(tiered.lookup(e.record().key(), &e.keyed).is_some());
        assert_eq!(tiered.stats().promotions, 0);

        // hot-only stacks absorb too (nothing durable, still deduped)
        let hot_only = TieredCache::hot_only(tiny_hot(4));
        assert!(hot_only.absorb(&e.record()).unwrap());
        assert!(!hot_only.absorb(&e.record()).unwrap());
        assert_eq!(hot_only.content_keys(), vec![e.record().key().0]);
    }

    #[test]
    fn hot_only_stack_behaves_like_the_old_cache() {
        let tiered = TieredCache::hot_only(tiny_hot(2));
        let e = Arc::new(sample_entry(20, 1));
        tiered.insert(e.record().key(), Arc::clone(&e));
        assert!(tiered.lookup(e.record().key(), &e.keyed).is_some());
        let missing = sample_entry(20, 9);
        assert!(tiered
            .lookup(missing.record().key(), &missing.keyed)
            .is_none());
        let stats = tiered.stats();
        assert!(stats.cold.is_none());
        assert_eq!(stats.demotions, 0);
        tiered.flush().unwrap();
    }
}
