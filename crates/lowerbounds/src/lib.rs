//! The lower-bound constructions of Section 4 of the paper (Theorem 2):
//! no locally checkable proof certifies `Forb(K_k)` or `Forb(K_{p,q})`
//! with `o(log n)`-bit certificates — hence `Ω(log n)` for planarity
//! (= `Forb({K5, K3,3})`, Corollary 1) and outerplanarity
//! (= `Forb({K4, K2,3})`).
//!
//! * [`blocks`] — Lemma 5: *paths of blocks* (legal, `K_k`-minor-free)
//!   vs *cycles of blocks* (illegal, contain `K_k`), block connections,
//!   and the radius-`t` subdivision variant;
//! * [`counting`] — the pigeonhole engine: the `p! > 2^{(k-1)gp}`
//!   crossover, plus a concrete end-to-end forgery against a natural
//!   `g`-bit scheme (a mod-`2^g` block counter), demonstrating how
//!   identically-labeled paths splice into an accepted illegal cycle;
//! * [`kpq`] — Lemma 6: the outerplanar two-path instances `I_{a,b}`
//!   and the glued illegal instance `J` containing `K_{q,q}` as a minor.

pub mod blocks;
pub mod counting;
pub mod kpq;
