//! Tiny level-filtered structured logger (no deps, no global mutex).
//!
//! Every log line carries a *target* (a short subsystem name such as
//! `"serve"` or `"reactor"`) and a [`Level`]. What gets printed is
//! controlled by the `DPC_LOG` environment variable, parsed once on
//! first use:
//!
//! ```text
//! DPC_LOG=info                  # default level for every target
//! DPC_LOG=debug,reactor=trace   # debug everywhere, trace for reactor
//! DPC_LOG=warn,serve=info       # quiet except the serve banner
//! ```
//!
//! Unset means [`Level::Info`]. Unknown level names are ignored (the
//! directive is skipped), so a typo degrades to the default rather
//! than panicking at startup. Lines go to stderr as
//! `dpc[target] LEVEL: message` — structured enough to grep, cheap
//! enough to leave in hot paths behind an [`enabled`] check (one
//! atomic load after first use).
//!
//! Use through the macros: [`log_error!`](crate::log_error),
//! [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info),
//! [`log_debug!`](crate::log_debug), [`log_trace!`](crate::log_trace).

use std::fmt;
use std::sync::OnceLock;

/// Log severity, ordered from quietest to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or operator-actionable problems.
    Error,
    /// Degraded but continuing.
    Warn,
    /// Lifecycle events (startup banner, shutdown). The default.
    Info,
    /// Per-operation detail for debugging.
    Debug,
    /// Hot-path event detail (per-frame, per-stall).
    Trace,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

struct Config {
    default: Level,
    /// `(target, level)` overrides, first match wins.
    targets: Vec<(String, Level)>,
}

fn parse_spec(spec: &str) -> Config {
    let mut cfg = Config {
        default: Level::Info,
        targets: Vec::new(),
    };
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            None => {
                if let Some(level) = Level::parse(part) {
                    cfg.default = level;
                }
            }
            Some((target, level)) => {
                if let Some(level) = Level::parse(level) {
                    cfg.targets.push((target.trim().to_string(), level));
                }
            }
        }
    }
    cfg
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| parse_spec(&std::env::var("DPC_LOG").unwrap_or_default()))
}

/// Would a line at `level` for `target` be printed? Cheap after the
/// first call (env parsed once); use to guard expensive formatting.
pub fn enabled(target: &str, level: Level) -> bool {
    let cfg = config();
    let max = cfg
        .targets
        .iter()
        .find(|(t, _)| t == target)
        .map(|&(_, l)| l)
        .unwrap_or(cfg.default);
    level <= max
}

/// Prints one line to stderr if `level` passes the filter for
/// `target`. Prefer the `log_*!` macros, which build the
/// [`fmt::Arguments`] lazily.
pub fn log(target: &str, level: Level, args: fmt::Arguments<'_>) {
    if enabled(target, level) {
        eprintln!("dpc[{target}] {}: {args}", level.label());
    }
}

/// Logs at [`Level::Error`]: `log_error!("serve", "bind failed: {e}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Debug, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Trace, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_default_and_overrides() {
        let cfg = parse_spec("debug,reactor=trace, serve=warn");
        assert_eq!(cfg.default, Level::Debug);
        assert_eq!(cfg.targets.len(), 2);
        assert_eq!(cfg.targets[0], ("reactor".to_string(), Level::Trace));
        assert_eq!(cfg.targets[1], ("serve".to_string(), Level::Warn));
    }

    #[test]
    fn empty_spec_defaults_to_info() {
        let cfg = parse_spec("");
        assert_eq!(cfg.default, Level::Info);
        assert!(cfg.targets.is_empty());
    }

    #[test]
    fn unknown_directives_are_skipped() {
        let cfg = parse_spec("chatty,reactor=verbose,store=debug");
        assert_eq!(cfg.default, Level::Info);
        assert_eq!(cfg.targets, vec![("store".to_string(), Level::Debug)]);
    }

    #[test]
    fn levels_order_quietest_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }
}
