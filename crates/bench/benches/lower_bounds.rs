//! E7/E8 bench: constructing and certifying the Lemma 5 instances, and
//! the pigeonhole forgery end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_lowerbounds::blocks::{certify_cycle_has_kk, certify_path_kfree, cycle_of_blocks, path_of_blocks};
use dpc_lowerbounds::counting::{forge_cycle, ModCounterScheme};

fn bench_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bounds");
    group.sample_size(10);
    for &p in &[50usize, 500] {
        let perm: Vec<usize> = (1..=p).collect();
        group.bench_with_input(BenchmarkId::new("path_of_blocks_k5", p), &perm, |b, perm| {
            b.iter(|| {
                let inst = path_of_blocks(5, std::hint::black_box(perm));
                assert!(certify_path_kfree(&inst));
                inst.graph.node_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("cycle_witness_k5", p), &perm, |b, perm| {
            b.iter(|| {
                let inst = cycle_of_blocks(5, std::hint::black_box(perm));
                assert!(certify_cycle_has_kk(&inst));
                inst.graph.node_count()
            })
        });
    }
    for &g in &[3u32, 6] {
        group.bench_with_input(BenchmarkId::new("forge_cycle", g), &g, |b, &g| {
            b.iter(|| {
                let f = forge_cycle(&ModCounterScheme::new(4, g));
                assert!(f.fully_accepted);
                f.cycle.graph.node_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bounds);
criterion_main!(benches);
