//! Fault-injection tests for replicated serving: a 3-node ring with
//! `--replication 2` loses its busiest node mid-load without losing a
//! single request or re-proving a single certificate, and the
//! restarted node converges back through the peers' anti-entropy
//! sweep — over TCP, with byte-identical suffixes, mirroring what
//! `SegmentStore::merge_from` guarantees on the filesystem.

use dpc_graph::generators;
use dpc_service::cluster::{graph_key, graphs_by_owner, ClusterClient, Ring};
use dpc_service::registry::SchemeId;
use dpc_service::store::{CertStore, SegmentConfig, SegmentStore, StoreRecord};
use dpc_service::wire::Response;
use dpc_service::{serve, CertifyOptions, Client, ServeConfig, ServerHandle};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dpc-repl-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners. Anti-entropy peers are named by address up front, so
/// unlike the other e2e suites these tests need the addresses before
/// any server exists (and a killed node must restart on its old one).
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// A node of the replicated ring: a segment store under
/// `base/node-<i>` and every *other* reserved address as an
/// anti-entropy peer.
fn replicated_node(addrs: &[String], i: usize, base: &Path) -> ServerHandle {
    let cfg = ServeConfig {
        store: Some(SegmentConfig::new(base.join(format!("node-{i}")))),
        peers: addrs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a.clone())
            .collect(),
        ..ServeConfig::default()
    };
    serve(addrs[i].as_str(), cfg).unwrap()
}

/// The store content keys a node currently holds, as a set.
fn keys_of(addr: &str) -> BTreeSet<u128> {
    let mut client = Client::connect_with_retry(addr, Duration::from_secs(5)).unwrap();
    client.store_list().unwrap().into_iter().collect()
}

/// Polls `probe` every 100 ms until it returns true or `deadline`
/// elapses; panics with `what` on timeout.
fn wait_for(what: &str, deadline: Duration, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn killed_replica_loses_no_requests_and_anti_entropy_converges_it() {
    let base = scratch_dir("kill");
    let addrs = reserve_addrs(3);
    let mut handles: Vec<ServerHandle> =
        (0..3).map(|i| replicated_node(&addrs, i, &base)).collect();
    let ring = Ring::new(addrs.clone()).unwrap();

    // ---- phase 1: replicated load over the full ring ----
    let mut work: Vec<(dpc_graph::Graph, SchemeId)> = Vec::new();
    for seed in 0..6u64 {
        work.push((
            generators::stacked_triangulation(16 + seed as u32, seed),
            SchemeId::PLANARITY,
        ));
    }
    for side in 3..6u32 {
        work.push((generators::grid(side, side), SchemeId::BIPARTITE));
    }
    // plus one ring-selected graph per node so every node owns a key
    for bucket in graphs_by_owner(&ring, 1, 20) {
        for g in bucket {
            work.push((g, SchemeId::PLANARITY));
        }
    }
    let mut cc = ClusterClient::over(ring.clone()).with_replication(2);
    for (g, scheme) in &work {
        let resp = cc
            .certify(g, CertifyOptions::new().scheme(*scheme))
            .unwrap();
        assert!(
            matches!(resp, Response::Certified { cached: false, .. }),
            "fresh key must prove: {resp:?}"
        );
    }
    let routing = cc.stats().clone();
    assert_eq!(routing.requests, work.len() as u64);
    assert_eq!(
        routing.replica_writes,
        work.len() as u64,
        "k=2 writes every certificate to a second node: {routing:?}"
    );
    assert_eq!(routing.replica_errors, 0, "{routing:?}");
    assert_eq!(routing.read_repairs, 0, "no replica was cold: {routing:?}");

    // per-node prover counts before the fault, and the busiest node
    let proves_before: HashMap<String, u64> = cc
        .node_stats()
        .into_iter()
        .map(|(addr, s)| (addr, s.unwrap().proves))
        .collect();
    let victim = routing
        .per_node
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| n.routed)
        .map(|(i, _)| i)
        .unwrap();
    let victim_addr = addrs[victim].clone();

    // ---- phase 2: kill the busiest node; re-run the whole load ----
    handles.remove(victim).shutdown();
    let mut cc = ClusterClient::over(ring.clone()).with_replication(2);
    for (g, scheme) in &work {
        let resp = cc
            .certify(g, CertifyOptions::new().scheme(*scheme))
            .unwrap();
        // every answer comes straight from a surviving replica's
        // cache — the kill cannot force a re-prove
        assert!(
            matches!(resp, Response::Certified { cached: true, .. }),
            "a surviving replica must hold the key: {resp:?}"
        );
    }
    let routing = cc.stats().clone();
    assert_eq!(routing.requests, work.len() as u64, "no request was lost");
    assert_eq!(routing.exhausted, 0, "{routing:?}");
    let proves_after: HashMap<String, u64> = cc
        .node_stats()
        .into_iter()
        .filter(|(addr, _)| *addr != victim_addr)
        .map(|(addr, s)| (addr, s.unwrap().proves))
        .collect();
    for (addr, proves) in &proves_after {
        assert_eq!(
            proves, &proves_before[addr],
            "fleet prover delta must stay 0 under the fault ({addr})"
        );
    }

    // new keys arrive while the victim is down: they certify on
    // survivors and are what anti-entropy must later carry over
    let fresh: Vec<dpc_graph::Graph> = (100..103u64)
        .map(|seed| generators::stacked_triangulation(17, seed))
        .collect();
    for g in &fresh {
        let resp = cc.certify(g, false).unwrap();
        assert!(matches!(resp, Response::Certified { .. }), "{resp:?}");
    }

    // ---- phase 3: restart the victim; the sweep converges it ----
    let survivor_addrs: Vec<&String> = addrs.iter().filter(|a| **a != victim_addr).collect();
    let restarted = replicated_node(&addrs, victim, &base);
    let union: BTreeSet<u128> = survivor_addrs.iter().flat_map(|a| keys_of(a)).collect();
    assert!(!union.is_empty());
    wait_for(
        "anti-entropy to converge the restarted node",
        Duration::from_secs(60),
        || keys_of(&victim_addr).is_superset(&union),
    );

    // record counts: the restarted node now holds every key either
    // survivor holds (it may hold more — keys it proved before dying)
    let converged = keys_of(&victim_addr);
    for addr in &survivor_addrs {
        assert!(keys_of(addr).is_subset(&converged), "{addr} not mirrored");
    }

    // byte-identical suffixes: offline, every survivor record exists
    // in the restarted node's store with the same bytes — the TCP
    // sweep preserved exactly what merge_from preserves on disk
    restarted.shutdown();
    for h in handles {
        h.shutdown();
    }
    let victim_store =
        SegmentStore::open(SegmentConfig::new(base.join(format!("node-{victim}")))).unwrap();
    let mut mirrored = 0usize;
    for i in 0..3 {
        if i == victim {
            continue;
        }
        let store = SegmentStore::open(SegmentConfig::new(base.join(format!("node-{i}")))).unwrap();
        for record in store.iter() {
            let record: StoreRecord = record.unwrap();
            let copy = victim_store
                .get(record.key(), &record.keyed)
                .expect("converged node holds every survivor record");
            assert_eq!(copy.suffix, record.suffix, "byte-identical suffix");
            assert_eq!(copy, record);
            mirrored += 1;
        }
    }
    assert!(
        mirrored >= work.len() + fresh.len(),
        "stores were not empty"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn read_repair_backfills_the_cold_rank1_replica() {
    let base = scratch_dir("repair");
    let addrs = reserve_addrs(2);
    // no peers: isolate read-repair from the anti-entropy sweep
    let handles: Vec<ServerHandle> = (0..2)
        .map(|i| {
            let cfg = ServeConfig {
                store: Some(SegmentConfig::new(base.join(format!("node-{i}")))),
                ..ServeConfig::default()
            };
            serve(addrs[i].as_str(), cfg).unwrap()
        })
        .collect();
    let ring = Ring::new(addrs.clone()).unwrap();
    let g = generators::stacked_triangulation(20, 7);
    let ranked = ring.rank(&graph_key(SchemeId::PLANARITY, &g));
    let (rank1, rank2) = (ranked[0], ranked[1]);

    // warm only the rank-2 node, directly past the cluster router
    let mut warm = Client::connect(addrs[rank2].as_str()).unwrap();
    assert!(matches!(
        warm.certify(&g, false).unwrap(),
        Response::Certified { cached: false, .. }
    ));

    // the replicated read probes rank-1 (miss), is served by rank-2,
    // and backfills rank-1 asynchronously
    let mut cc = ClusterClient::over(ring.clone()).with_replication(2);
    let resp = cc.certify(&g, false).unwrap();
    assert!(
        matches!(resp, Response::Certified { cached: true, .. }),
        "the warm replica serves the read: {resp:?}"
    );
    assert_eq!(cc.stats().read_repairs, 1, "{:?}", cc.stats());
    assert_eq!(cc.stats().per_node[rank2].routed, 1, "{:?}", cc.stats());
    assert_eq!(cc.stats().per_node[rank1].routed, 0, "{:?}", cc.stats());

    // the backfill lands: rank-1's store-records gauge goes 0 -> 1
    let mut gauge = Client::connect(addrs[rank1].as_str()).unwrap();
    wait_for(
        "read-repair to backfill rank-1",
        Duration::from_secs(10),
        || gauge.stats().unwrap().store_records == 1,
    );

    // the second query hits rank-1 directly — repaired, not re-repaired
    let resp = cc.certify(&g, false).unwrap();
    assert!(matches!(resp, Response::Certified { cached: true, .. }));
    assert_eq!(cc.stats().per_node[rank1].routed, 1, "{:?}", cc.stats());
    assert_eq!(cc.stats().read_repairs, 1, "a hit repairs nothing");

    // offline, the repaired record is byte-identical to the original
    for h in handles {
        h.shutdown();
    }
    let repaired =
        SegmentStore::open(SegmentConfig::new(base.join(format!("node-{rank1}")))).unwrap();
    let original =
        SegmentStore::open(SegmentConfig::new(base.join(format!("node-{rank2}")))).unwrap();
    let records: Vec<StoreRecord> = original.iter().map(|r| r.unwrap()).collect();
    assert_eq!(records.len(), 1);
    let copy = repaired
        .get(records[0].key(), &records[0].keyed)
        .expect("backfilled record is retrievable");
    assert_eq!(copy, records[0], "byte-identical backfill");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn second_sweep_between_converged_peers_transfers_nothing() {
    // the wire mirror of merge_from's re-merge no-op: once two peers
    // hold the same key set, a sweep exchanges digests and pushes
    // zero records — not even duplicates
    let base = scratch_dir("idem");
    let addrs = reserve_addrs(2);
    let handles: Vec<ServerHandle> = (0..2).map(|i| replicated_node(&addrs, i, &base)).collect();

    // seed node 0 only; the sweep must carry everything to node 1
    let mut seed_client = Client::connect(addrs[0].as_str()).unwrap();
    let graphs: Vec<dpc_graph::Graph> = (0..4u64)
        .map(|seed| generators::stacked_triangulation(15, seed))
        .collect();
    for g in &graphs {
        assert!(matches!(
            seed_client.certify(g, false).unwrap(),
            Response::Certified { cached: false, .. }
        ));
    }
    wait_for(
        "the first sweep to converge the peer",
        Duration::from_secs(30),
        || keys_of(&addrs[1]).len() == graphs.len(),
    );
    let mut peer = Client::connect(addrs[1].as_str()).unwrap();
    assert_eq!(peer.stats().unwrap().store_records, graphs.len() as u64);

    // wait for a sweep-round boundary, capture the counters, then let
    // two more full rounds run: nothing may move
    let sweeps_at = |c: &mut Client| c.stats().unwrap().repl_sweeps;
    let s0 = sweeps_at(&mut seed_client);
    wait_for(
        "a post-convergence sweep round",
        Duration::from_secs(10),
        || sweeps_at(&mut seed_client) > s0,
    );
    let pushed = seed_client.stats().unwrap().repl_pushed;
    let peer_snap = peer.stats().unwrap();
    let (merged, duplicates) = (peer_snap.repl_push_merged, peer_snap.repl_push_duplicates);
    let s1 = sweeps_at(&mut seed_client);
    wait_for("two more sweep rounds", Duration::from_secs(10), || {
        sweeps_at(&mut seed_client) >= s1 + 2
    });
    assert_eq!(
        seed_client.stats().unwrap().repl_pushed,
        pushed,
        "a converged pair pushes nothing"
    );
    let peer_snap = peer.stats().unwrap();
    assert_eq!(peer_snap.repl_push_merged, merged, "no new records");
    assert_eq!(
        peer_snap.repl_push_duplicates, duplicates,
        "not even duplicates: the digest exchange filters them"
    );
    assert_eq!(seed_client.stats().unwrap().repl_errors, 0);

    for h in handles {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
}
