//! Lemma 2: the 1-round proof-labeling scheme for path-outerplanarity
//! with `O(log n)`-bit certificates.
//!
//! A graph is path-outerplanar (Definition 1) if some total order of its
//! nodes forms a Hamiltonian path and all non-path edges, drawn as
//! semi-circles above the line, are pairwise non-crossing (laminar).
//! The prover publishes, per node: the size `n`, the node's rank in the
//! witness, the tightest covering chord `I(x)`, and a spanning-path
//! proof (root id + predecessor/successor pointers). Verification is
//! Algorithm 1, implemented in [`crate::alg1`].
//!
//! Finding a witness from scratch is NP-hard in general (it contains the
//! Hamiltonian-path problem), so the prover takes the witness as input:
//! [`PathOuterplanarScheme::new`] uses the identity order (matching the
//! workloads from `dpc_graph::generators::random_path_outerplanar`), and
//! [`PathOuterplanarScheme::with_witness`] accepts an explicit order.

use crate::alg1::{verify_spine_node, virtual_interval, SpineView};
use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::{Graph, NodeId};
use dpc_planar::tembed::{laminar_intervals, Chord};
use dpc_runtime::bits::{BitReader, BitWriter, DecodeError};
use dpc_runtime::{NodeCtx, Payload};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PoCert {
    n: u64,
    rank: u64,
    root_id: u64,
    pred_id: Option<u64>,
    succ_id: Option<u64>,
    /// I(rank): endpoints in `0..=n+1`.
    interval: (u64, u64),
}

impl PoCert {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.n);
        w.write_varint(self.rank);
        w.write_varint(self.root_id);
        w.write_bool(self.pred_id.is_some());
        if let Some(p) = self.pred_id {
            w.write_varint(p);
        }
        w.write_bool(self.succ_id.is_some());
        if let Some(s) = self.succ_id {
            w.write_varint(s);
        }
        w.write_varint(self.interval.0);
        w.write_varint(self.interval.1);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, DecodeError> {
        Ok(PoCert {
            n: r.read_varint()?,
            rank: r.read_varint()?,
            root_id: r.read_varint()?,
            pred_id: if r.read_bool()? {
                Some(r.read_varint()?)
            } else {
                None
            },
            succ_id: if r.read_bool()? {
                Some(r.read_varint()?)
            } else {
                None
            },
            interval: (r.read_varint()?, r.read_varint()?),
        })
    }
}

/// PLS for path-outerplanarity (Lemma 2).
#[derive(Debug, Clone, Default)]
pub struct PathOuterplanarScheme {
    witness: Option<Vec<NodeId>>,
}

impl PathOuterplanarScheme {
    /// Scheme whose prover uses the identity order `0, 1, …, n−1` as the
    /// witness.
    pub fn new() -> Self {
        PathOuterplanarScheme { witness: None }
    }

    /// Scheme whose prover uses the given order as the witness.
    pub fn with_witness(order: Vec<NodeId>) -> Self {
        PathOuterplanarScheme {
            witness: Some(order),
        }
    }
}

impl ProofLabelingScheme for PathOuterplanarScheme {
    fn name(&self) -> &'static str {
        "path-outerplanar"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        let n = g.node_count();
        let order: Vec<NodeId> = match &self.witness {
            Some(o) => o.clone(),
            None => g.nodes().collect(),
        };
        if order.len() != n {
            return Err(ProveError::MissingWitness("witness must order all nodes"));
        }
        let mut rank = vec![0u32; n]; // 1-based
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = (i + 1) as u32;
        }
        if rank.contains(&0) {
            return Err(ProveError::MissingWitness("witness must be a permutation"));
        }
        // the witness must be a Hamiltonian path
        for w in order.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(ProveError::NotInClass(
                    "witness order is not a Hamiltonian path",
                ));
            }
        }
        // chords (non-path edges) must be laminar
        let chords: Vec<Chord> = g
            .edges()
            .iter()
            .enumerate()
            .filter_map(|(eid, e)| {
                let (a, b) = {
                    let (ra, rb) = (rank[e.u as usize], rank[e.v as usize]);
                    if ra < rb {
                        (ra, rb)
                    } else {
                        (rb, ra)
                    }
                };
                (b > a + 1).then_some(Chord {
                    a,
                    b,
                    edge: eid as u32,
                })
            })
            .collect();
        let intervals = laminar_intervals(n as u32, &chords)
            .map_err(|_| ProveError::NotInClass("chords cross: not path-outerplanar"))?;
        let root_id = g.id_of(order[0]);
        let mut certs = vec![Payload::empty(); n];
        for (i, &v) in order.iter().enumerate() {
            let iv = intervals[i + 1];
            let cert = PoCert {
                n: n as u64,
                rank: (i + 1) as u64,
                root_id,
                pred_id: (i > 0).then(|| g.id_of(order[i - 1])),
                succ_id: (i + 1 < n).then(|| g.id_of(order[i + 1])),
                interval: (iv.0 as u64, iv.1 as u64),
            };
            let mut w = BitWriter::new();
            cert.encode(&mut w);
            certs[v as usize] = Payload::from_writer(w);
        }
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        let parse = |p: &Payload| -> Option<PoCert> {
            let mut r = p.reader();
            let c = PoCert::decode(&mut r).ok()?;
            (r.remaining() == 0).then_some(c)
        };
        let Some(own) = parse(own) else { return false };
        let nbs: Option<Vec<PoCert>> = neighbors.iter().map(parse).collect();
        let Some(nbs) = nbs else { return false };
        let n = own.n as i64;
        if n < 1 || own.rank < 1 || own.rank > own.n {
            return false;
        }
        // agreement
        if nbs
            .iter()
            .any(|nb| nb.n != own.n || nb.root_id != own.root_id)
        {
            return false;
        }
        // spanning-path pointers
        if (own.rank == 1) != own.pred_id.is_none() {
            return false;
        }
        if own.rank == 1 && own.root_id != ctx.id {
            return false;
        }
        if own.rank != 1 && own.root_id == ctx.id {
            return false;
        }
        if (own.rank == own.n) != own.succ_id.is_none() {
            return false;
        }
        if let Some(pid) = own.pred_id {
            let Some(p) = ctx.neighbor_ids.iter().position(|&x| x == pid) else {
                return false;
            };
            if nbs[p].rank + 1 != own.rank || nbs[p].succ_id != Some(ctx.id) {
                return false;
            }
        }
        if let Some(sid) = own.succ_id {
            let Some(p) = ctx.neighbor_ids.iter().position(|&x| x == sid) else {
                return false;
            };
            if nbs[p].rank != own.rank + 1 || nbs[p].pred_id != Some(ctx.id) {
                return false;
            }
        }
        // Algorithm 1 with all graph neighbors as spine neighbors
        let mut spine_neighbors: Vec<(i64, (i64, i64))> = nbs
            .iter()
            .map(|nb| (nb.rank as i64, (nb.interval.0 as i64, nb.interval.1 as i64)))
            .collect();
        if own.rank == 1 {
            spine_neighbors.push((0, virtual_interval(n)));
        }
        if own.rank == own.n {
            spine_neighbors.push((n + 1, virtual_interval(n)));
        }
        let view = SpineView {
            x: own.rank as i64,
            n,
            interval: (own.interval.0 as i64, own.interval.1 as i64),
            neighbors: spine_neighbors,
        };
        // intervals out of range are malformed
        if view.interval.0 > n + 1 || view.interval.1 > n + 1 {
            return false;
        }
        verify_spine_node(&view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_generated_path_outerplanar() {
        for seed in 0..8u64 {
            let g = generators::random_path_outerplanar(40, 15, seed);
            let out = run_pls(&PathOuterplanarScheme::new(), &g).unwrap();
            assert!(out.all_accept(), "seed {seed}");
            assert_eq!(out.rounds, 1);
            assert!(out.max_cert_bits < 300);
        }
    }

    #[test]
    fn bare_path_accepts() {
        let g = generators::path(12);
        assert!(run_pls(&PathOuterplanarScheme::new(), &g)
            .unwrap()
            .all_accept());
    }

    #[test]
    fn prover_declines_crossing_chords() {
        // path 0..5 plus crossing chords (0,3) and (2,5)
        let mut b = dpc_graph::GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(v - 1, v).unwrap();
        }
        b.add_edge(0, 3).unwrap();
        b.add_edge(2, 5).unwrap();
        let g = b.build();
        assert!(matches!(
            PathOuterplanarScheme::new().prove(&g),
            Err(ProveError::NotInClass(_))
        ));
    }

    #[test]
    fn prover_declines_non_hamiltonian_witness() {
        let g = generators::star(5);
        assert!(PathOuterplanarScheme::new().prove(&g).is_err());
    }

    #[test]
    fn soundness_replay_subchord_certs() {
        // crossing instance; forge certificates from the instance with one
        // crossing chord removed
        let mut b = dpc_graph::GraphBuilder::new(8);
        for v in 1..8 {
            b.add_edge(v - 1, v).unwrap();
        }
        b.add_edge(0, 4).unwrap();
        b.add_edge(2, 6).unwrap(); // crosses (0,4)
        let g = b.build();
        let sub = g.edge_subgraph(|_, e| e.canonical() != (2, 6));
        let a = PathOuterplanarScheme::new().prove(&sub).unwrap();
        let out = run_with_assignment(&PathOuterplanarScheme::new(), &g, &a);
        assert!(!out.all_accept(), "nodes 2 and 6 see an uncovered chord");
    }

    #[test]
    fn soundness_rank_swap() {
        let g = generators::random_path_outerplanar(20, 6, 3);
        let mut a = PathOuterplanarScheme::new().prove(&g).unwrap();
        a.certs.swap(4, 11);
        let out = run_with_assignment(&PathOuterplanarScheme::new(), &g, &a);
        assert!(!out.all_accept());
    }

    #[test]
    fn explicit_witness_in_other_order() {
        // path 3-1-0-2 with chord {3,2}: witness must be given explicitly
        let g = dpc_graph::Graph::from_edges(4, &[(3, 1), (1, 0), (0, 2), (3, 2)]);
        let scheme = PathOuterplanarScheme::with_witness(vec![3, 1, 0, 2]);
        let out = run_pls(&scheme, &g).unwrap();
        assert!(out.all_accept());
        // identity order is not a Hamiltonian path here
        assert!(PathOuterplanarScheme::new().prove(&g).is_err());
    }

    #[test]
    fn garbage_rejected() {
        let g = generators::random_path_outerplanar(10, 3, 1);
        let out = run_with_assignment(
            &PathOuterplanarScheme::new(),
            &g,
            &Assignment::empty(g.node_count()),
        );
        assert_eq!(out.reject_count(), g.node_count());
    }
}
