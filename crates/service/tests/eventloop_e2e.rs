//! End-to-end tests for the epoll reactor front end: partial I/O,
//! pipelining, idle reaping, and byte-parity with the threaded
//! front end. Raw `TcpStream`s (not the [`Client`]) are used
//! throughout so the tests control exactly which bytes are on the
//! wire and when.

use dpc_graph::generators;
use dpc_service::client::Client;
use dpc_service::server::{serve, ServeConfig};
use dpc_service::wire::{self, Response};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server(event_loop: bool) -> dpc_service::ServerHandle {
    let cfg = ServeConfig {
        event_loop,
        ..ServeConfig::default()
    };
    serve("127.0.0.1:0", cfg).expect("bind loopback")
}

/// Frames `body` the way the wire does: 4-byte LE length prefix.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Reads exactly `n` response frames off `stream`, returning each
/// frame's raw bytes (header + body).
fn read_frames(stream: &mut TcpStream, n: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).expect("response header");
        let len = u32::from_le_bytes(header) as usize;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("response body");
        let mut whole = header.to_vec();
        whole.extend_from_slice(&body);
        frames.push(whole);
    }
    frames
}

/// The request bodies the parity/pipelining tests drive: a mix of
/// certify (two graphs, so cache hits and misses both occur), check,
/// gen, and stats.
fn request_mix() -> Vec<Vec<u8>> {
    let small = generators::grid(4, 4);
    let ring = generators::cycle(7);
    vec![
        wire::encode_certify_request(&small, false, dpc_service::SchemeId::PLANARITY),
        wire::encode_certify_request(&small, false, dpc_service::SchemeId::PLANARITY),
        wire::encode_check_request(&ring, dpc_service::SchemeId::PLANARITY),
        wire::encode_certify_request(&ring, false, dpc_service::SchemeId::PLANARITY),
        wire::encode_stats_request(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dribbling a request in with pathological chunking (down to one
    /// byte per write, with flushes in between) and draining the
    /// response one byte at a time yields exactly the bytes a
    /// well-behaved client gets: the reactor's frame accumulator
    /// cannot care how the bytes arrive.
    #[test]
    fn partial_io_is_byte_identical(chunk in 1usize..5, which in 0usize..3) {
        let handle = server(true);
        let graphs = [generators::grid(4, 4), generators::cycle(6), generators::complete(4)];
        let body = wire::encode_certify_request(&graphs[which], true, dpc_service::SchemeId::PLANARITY);
        let bytes = frame(&body);

        // reference: the whole frame in one write
        let mut fast = TcpStream::connect(handle.addr()).unwrap();
        fast.write_all(&bytes).unwrap();
        let want = read_frames(&mut fast, 1).remove(0);

        // dribble: `chunk` bytes per write (chunk 1 = byte at a time)
        let mut slow = TcpStream::connect(handle.addr()).unwrap();
        for piece in bytes.chunks(chunk) {
            slow.write_all(piece).unwrap();
            slow.flush().unwrap();
        }
        // ... and a byte-at-a-time read back
        let mut got = Vec::new();
        let mut one = [0u8; 1];
        while got.len() < want.len() {
            let n = slow.read(&mut one).unwrap();
            prop_assert!(n > 0, "server closed early");
            got.push(one[0]);
        }
        prop_assert_eq!(got, want, "chunked I/O changed the response bytes");
        handle.shutdown();
    }
}

/// All N requests written before a single response byte is read; the
/// responses come back complete and in request order. This is the
/// pipelining contract: the reactor decodes multiple in-flight frames
/// from one buffer and reorders completions by sequence number.
#[test]
fn pipelined_requests_answer_in_request_order() {
    let handle = server(true);
    let bodies = request_mix();

    // expected responses, one at a time on a separate connection
    let mut expected = Vec::new();
    for body in &bodies {
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&frame(body)).unwrap();
        expected.push(read_frames(&mut s, 1).remove(0));
    }

    // the pipelined burst: every request on the wire before any read
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    let burst: Vec<u8> = bodies.iter().flat_map(|b| frame(b)).collect();
    s.write_all(&burst).unwrap();
    let got = read_frames(&mut s, bodies.len());

    for (i, (got, want)) in got.iter().zip(&expected).enumerate() {
        // certify responses must be byte-identical (content-addressed
        // cache); the stats response differs by counters, so compare
        // the decoded variant instead
        let got_resp = Response::decode(&got[4..]).expect("decodable response");
        let want_resp = Response::decode(&want[4..]).expect("decodable response");
        assert_eq!(
            std::mem::discriminant(&got_resp),
            std::mem::discriminant(&want_resp),
            "response {i} is out of order"
        );
        if !matches!(got_resp, Response::Stats(_)) {
            // cached flags may differ (the reference pass warmed the
            // cache), so compare modulo that via the decoded values
            match (got_resp, want_resp) {
                (
                    Response::Certified {
                        outcome: a,
                        assignment: x,
                        ..
                    },
                    Response::Certified {
                        outcome: b,
                        assignment: y,
                        ..
                    },
                ) => {
                    assert_eq!(a, b, "verdict drifted at position {i}");
                    for (p, q) in x.certs.iter().zip(&y.certs) {
                        assert_eq!(p.as_bytes(), q.as_bytes());
                    }
                }
                (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            }
        }
    }
    handle.shutdown();
}

/// The event-loop and threaded front ends speak byte-identical
/// protocol: the same cold-server request sequence produces the same
/// response bytes from both.
#[test]
fn event_loop_and_threaded_responses_are_byte_identical() {
    let bodies = request_mix();
    let mut transcripts = Vec::new();
    for event_loop in [true, false] {
        let handle = server(event_loop);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let mut transcript = Vec::new();
        for body in &bodies {
            s.write_all(&frame(body)).unwrap();
            transcript.push(read_frames(&mut s, 1).remove(0));
        }
        handle.shutdown();
        transcripts.push(transcript);
    }
    let (el, th) = (&transcripts[0], &transcripts[1]);
    for (i, (a, b)) in el.iter().zip(th.iter()).enumerate() {
        // the stats bodies differ only in timing histograms; pin the
        // rest byte-for-byte
        let is_stats = matches!(Response::decode(&a[4..]), Ok(Response::Stats(_)));
        if !is_stats {
            assert_eq!(a, b, "front ends disagree on response {i} bytes");
        }
    }

    // oversize frames get the same error text from both front ends
    let mut errors = Vec::new();
    for event_loop in [true, false] {
        let handle = server(event_loop);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let len = (wire::MAX_FRAME_BYTES as u32) + 1;
        s.write_all(&len.to_le_bytes()).unwrap();
        // the server answers with an error frame, then closes
        errors.push(read_frames(&mut s, 1).remove(0));
        handle.shutdown();
    }
    assert_eq!(errors[0], errors[1], "oversize-frame errors differ");
}

/// A connection that goes quiet longer than `--idle-timeout-ms` is
/// reaped (read returns EOF) and counted; a connection with traffic
/// stays open. Responses already owed are delivered before the reap.
#[test]
fn idle_connections_are_reaped_and_counted() {
    let cfg = ServeConfig {
        event_loop: true,
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind loopback");

    // a connection that sent one request and then went quiet: the
    // response arrives, then the reaper closes the socket
    let mut quiet = TcpStream::connect(handle.addr()).unwrap();
    quiet
        .write_all(&frame(&wire::encode_stats_request()))
        .unwrap();
    let _ = read_frames(&mut quiet, 1);
    quiet
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let eof = quiet
        .read(&mut buf)
        .expect("reap closes cleanly, not by RST");
    assert_eq!(eof, 0, "idle connection must be closed by the server");

    // the reap is visible in stats (queried over a fresh connection)
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.idle_timeouts >= 1, "idle reap not counted: {stats:?}");
    assert!(stats.conns_accepted >= 2);
    handle.shutdown();
}

/// A small in-process storm: every pipelined request over many
/// concurrent connections gets a well-formed response — the CI smoke
/// gate (`--connections 1000`, separate process) scales this up.
#[test]
fn storm_sees_zero_failed_requests() {
    use dpc_service::loadgen::{storm, StormConfig};
    let handle = server(true);
    let g = generators::grid(5, 5);
    let report = storm(
        handle.addr(),
        &StormConfig {
            connections: 128,
            requests_per_conn: 4,
            body: wire::encode_certify_request(&g, false, dpc_service::SchemeId::PLANARITY),
            deadline: Duration::from_secs(60),
        },
    )
    .expect("storm runs");
    assert_eq!(report.connect_failures, 0, "{report:?}");
    assert_eq!(report.failed(), 0, "{report:?}");
    assert_eq!(report.ok, 128 * 4, "every response decoded, none Error");
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.conns_accepted >= 128);
    handle.shutdown();
}

/// A chunked upload driven as one pipelined burst — Begin, every
/// chunk, and End written before a single ack is read — produces
/// byte-identical ack and summary frames from the reactor and the
/// threaded front end; and dribbling the same burst into the reactor
/// one byte at a time changes nothing but the cached flag.
#[test]
fn chunked_upload_frames_are_byte_identical_across_front_ends() {
    let g = generators::stacked_triangulation(40, 2);
    let mut payload = Vec::new();
    wire::encode_graph(&mut payload, &g);
    let scheme = dpc_service::SchemeId::PLANARITY;
    let pieces: Vec<&[u8]> = payload.chunks(16).collect();
    let mut burst = Vec::new();
    burst.extend(frame(&wire::encode_chunk_begin_request(3, false, scheme)));
    for (seq, piece) in pieces.iter().enumerate() {
        burst.extend(frame(&wire::encode_chunk_request(3, seq as u64, piece)));
    }
    burst.extend(frame(&wire::encode_chunk_end_request(
        3,
        pieces.len() as u64,
        payload.len() as u64,
        dpc_service::store::crc32(&payload),
    )));
    // one ack for Begin, one per chunk, then the summary
    let n_frames = pieces.len() + 2;

    let mut transcripts = Vec::new();
    for event_loop in [true, false] {
        let handle = server(event_loop);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&burst).unwrap();
        let frames = read_frames(&mut s, n_frames);
        for (i, f) in frames[..n_frames - 1].iter().enumerate() {
            match Response::decode(&f[4..]).unwrap() {
                Response::ChunkAck {
                    session: 3,
                    received,
                } => assert_eq!(received, i as u64),
                other => panic!("frame {i}: {other:?}"),
            }
        }
        match Response::decode(&frames[n_frames - 1][4..]).unwrap() {
            Response::CertifiedSummary {
                cached: false,
                outcome,
            } => assert!(outcome.all_accept()),
            other => panic!("{other:?}"),
        }

        // dribble the identical burst in one byte per write: the only
        // difference allowed is that the summary now comes from cache
        let mut slow = TcpStream::connect(handle.addr()).unwrap();
        for b in &burst {
            slow.write_all(std::slice::from_ref(b)).unwrap();
        }
        let dribbled = read_frames(&mut slow, n_frames);
        assert_eq!(
            dribbled[..n_frames - 1],
            frames[..n_frames - 1],
            "ack bytes depend on how the chunks arrived"
        );
        match (
            Response::decode(&dribbled[n_frames - 1][4..]).unwrap(),
            Response::decode(&frames[n_frames - 1][4..]).unwrap(),
        ) {
            (
                Response::CertifiedSummary {
                    cached: true,
                    outcome: a,
                },
                Response::CertifiedSummary { outcome: b, .. },
            ) => assert_eq!(a, b),
            (a, b) => panic!("{a:?} vs {b:?}"),
        }

        // the chunk counters moved on this front end
        let mut client = Client::connect(handle.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.chunk_sessions, 2);
        assert_eq!(stats.chunk_chunks, 2 * pieces.len() as u64);
        assert_eq!(stats.chunk_bytes, 2 * payload.len() as u64);
        assert_eq!(stats.chunk_aborts, 0);
        handle.shutdown();
        transcripts.push(frames.concat());
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "front ends disagree on chunk-stream response bytes"
    );
}
