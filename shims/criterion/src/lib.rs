//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate stands in for the real `criterion`. Supported surface:
//!
//! * [`Criterion::benchmark_group`] returning a [`BenchmarkGroup`]
//!   with `sample_size`, `bench_function`, `bench_with_input`, and
//!   `finish`;
//! * [`BenchmarkId::new`];
//! * the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from upstream: no warm-up phase tuning, outlier
//! rejection, plots, or saved baselines — each benchmark runs
//! `sample_size` timed samples (one closure call per sample after an
//! untimed warm-up call) and prints the minimum, mean, and maximum
//! wall-clock time. Numbers are comparable run-to-run on one machine,
//! which is all the workspace's acceptance gates need.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named benchmark within a group, e.g. `planarity_pls/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A set of benchmarks sharing a name prefix and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (upstream writes reports here; the shim has
    /// already printed per-benchmark lines).
    pub fn finish(self) {}
}

/// Collects timed samples of a closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample (plus one untimed warm-up
    /// call). The routine's return value is passed through
    /// [`std::hint::black_box`] so the optimizer cannot delete it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "  {group}/{id}: [{min:?} {mean:?} {max:?}] ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_the_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // one warm-up call + three timed samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("prove", 1024).id, "prove/1024");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
