//! Deterministic synchronous network simulator with CONGEST accounting.
//!
//! Executes a [`Protocol`] on a graph: in every round each node emits one
//! broadcast payload, all payloads are delivered to neighbors, and each
//! node either continues or outputs accept/reject. The executor tracks
//! the number of rounds and the largest payload in bits — a protocol is
//! a *1-round CONGEST* protocol exactly when `rounds == 1` and
//! `max_message_bits = O(log n)`, the regime of Theorem 1.

use crate::bits::{BitReader, BitWriter};
use dpc_graph::{Graph, NodeId};
use std::sync::Arc;

/// A broadcast payload: shared raw bytes plus the exact length in bits.
///
/// The byte buffer is reference-counted, so cloning a payload — the
/// operation the simulator performs once per incident edge per round —
/// is O(1) and never copies certificate bytes. Payloads are immutable
/// after construction; to derive a modified payload (e.g. for an
/// adversarial bit flip), copy the bytes out with [`Payload::to_vec`]
/// and rebuild with [`Payload::from_bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Payload {
    /// Shared backing bytes (last byte may be partial).
    pub bytes: Arc<[u8]>,
    /// Exact number of meaningful bits.
    pub bit_len: usize,
}

impl Payload {
    /// Empty payload (zero bits).
    pub fn empty() -> Self {
        Payload::default()
    }

    /// Payload from a finished [`BitWriter`].
    pub fn from_writer(w: BitWriter) -> Self {
        let (bytes, bit_len) = w.into_parts();
        Payload {
            bytes: bytes.into(),
            bit_len,
        }
    }

    /// Payload from raw bytes and an exact bit length.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short to hold `bit_len` bits.
    pub fn from_bytes(bytes: impl Into<Arc<[u8]>>, bit_len: usize) -> Self {
        let bytes = bytes.into();
        assert!(bytes.len() * 8 >= bit_len, "bit_len exceeds the buffer");
        Payload { bytes, bit_len }
    }

    /// The backing bytes as a plain slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Owned copy of the backing bytes (for mutation-and-rebuild).
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes.to_vec()
    }

    /// A bit reader over the payload's exact bit range.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader::new(&self.bytes, self.bit_len)
    }
}

/// What the node initially knows: its index, identifier, and — per the
/// usual KT1 assumption — the identifiers behind each port.
#[derive(Debug, Clone)]
pub struct NodeCtx {
    /// Dense node index (for the harness only; protocols should use ids).
    pub node: NodeId,
    /// The node's unique network identifier.
    pub id: u64,
    /// Identifier of the neighbor behind each port, in port order.
    pub neighbor_ids: Vec<u64>,
}

impl NodeCtx {
    /// Degree of the node.
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }
}

/// Decision of a node after a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep running.
    Continue,
    /// Terminate with accept (`true`) or reject (`false`).
    Output(bool),
}

/// A synchronous distributed protocol with broadcast messages.
pub trait Protocol {
    /// Per-node state.
    type State;

    /// Initial state of a node.
    fn init(&self, ctx: &NodeCtx) -> Self::State;

    /// Payload broadcast by the node in the given round (0-based).
    fn message(&self, state: &Self::State, round: usize) -> Payload;

    /// Delivers the payloads of all neighbors (indexed by port) and asks
    /// for a decision.
    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeCtx,
        inbox: &[Payload],
        round: usize,
    ) -> Step;
}

/// Execution report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final verdict per node (`None` if the node never terminated).
    pub verdicts: Vec<Option<bool>>,
    /// Rounds executed.
    pub rounds: usize,
    /// Largest single payload, in bits.
    pub max_message_bits: usize,
    /// Total bits sent over all edges and rounds (each broadcast counted
    /// once per incident edge, once per direction).
    pub total_message_bits: u64,
}

impl RunReport {
    /// True if every node terminated and accepted.
    pub fn all_accept(&self) -> bool {
        self.verdicts.iter().all(|v| *v == Some(true))
    }

    /// Number of nodes that rejected.
    pub fn reject_count(&self) -> usize {
        self.verdicts.iter().filter(|v| **v == Some(false)).count()
    }
}

/// Runs `protocol` on `g` for at most `max_rounds` rounds.
///
/// Deterministic: nodes are processed in index order; all messages of a
/// round are delivered simultaneously (two-phase update).
pub fn run_protocol<P: Protocol>(protocol: &P, g: &Graph, max_rounds: usize) -> RunReport {
    run_protocol_states(protocol, g, max_rounds).0
}

/// Like [`run_protocol`] but also returns the final per-node states —
/// used when the protocol *computes* something (e.g. the distributed
/// certificate pre-processing phase) rather than just deciding.
pub fn run_protocol_states<P: Protocol>(
    protocol: &P,
    g: &Graph,
    max_rounds: usize,
) -> (RunReport, Vec<P::State>) {
    let n = g.node_count();
    let ctxs: Vec<NodeCtx> = (0..n as u32)
        .map(|v| NodeCtx {
            node: v,
            id: g.id_of(v),
            neighbor_ids: g.neighbors(v).map(|w| g.id_of(w)).collect(),
        })
        .collect();
    let mut states: Vec<P::State> = ctxs.iter().map(|c| protocol.init(c)).collect();
    let mut verdicts: Vec<Option<bool>> = vec![None; n];
    let mut max_bits = 0usize;
    let mut total_bits = 0u64;
    let mut round = 0usize;
    // Both buffers are reused across every node and every round: the
    // per-round cost is n cheap payload handles plus one O(1) reference
    // bump per incident edge — no per-edge byte copies, no per-node
    // inbox allocation.
    let mut outgoing: Vec<Payload> = Vec::with_capacity(n);
    let mut inbox: Vec<Payload> = Vec::new();
    while round < max_rounds && verdicts.iter().any(|v| v.is_none()) {
        // phase 1: everyone still running emits its broadcast
        outgoing.clear();
        outgoing.extend((0..n).map(|v| {
            if verdicts[v].is_none() {
                protocol.message(&states[v], round)
            } else {
                Payload::empty()
            }
        }));
        for (v, p) in outgoing.iter().enumerate() {
            max_bits = max_bits.max(p.bit_len);
            total_bits += p.bit_len as u64 * g.degree(v as NodeId) as u64;
        }
        // phase 2: deliver and step
        for v in 0..n {
            if verdicts[v].is_some() {
                continue;
            }
            inbox.clear();
            inbox.extend(
                g.neighbors(v as NodeId)
                    .map(|w| outgoing[w as usize].clone()),
            );
            if let Step::Output(b) = protocol.receive(&mut states[v], &ctxs[v], &inbox, round) {
                verdicts[v] = Some(b);
            }
        }
        round += 1;
    }
    (
        RunReport {
            verdicts,
            rounds: round,
            max_message_bits: max_bits,
            total_message_bits: total_bits,
        },
        states,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use dpc_graph::generators;

    /// Toy protocol: accept iff the node's id is larger than all
    /// neighbor ids it hears (exactly one node accepts per round-1 run —
    /// the max-id node rejects nothing; others reject).
    struct MaxId;

    impl Protocol for MaxId {
        type State = u64;

        fn init(&self, ctx: &NodeCtx) -> u64 {
            ctx.id
        }

        fn message(&self, state: &u64, _round: usize) -> Payload {
            let mut w = BitWriter::new();
            w.write_varint(*state);
            Payload::from_writer(w)
        }

        fn receive(
            &self,
            state: &mut u64,
            _ctx: &NodeCtx,
            inbox: &[Payload],
            _round: usize,
        ) -> Step {
            let mut best = true;
            for p in inbox {
                let mut r = p.reader();
                if r.read_varint().unwrap() > *state {
                    best = false;
                }
            }
            Step::Output(best)
        }
    }

    #[test]
    fn one_round_protocol_runs_once() {
        let g = generators::cycle(10);
        let rep = run_protocol(&MaxId, &g, 10);
        assert_eq!(rep.rounds, 1);
        let accepts = rep.verdicts.iter().filter(|v| **v == Some(true)).count();
        assert_eq!(accepts, 1, "only the local maxima accept; on a cycle with distinct ids and increasing assignment, exactly the global max");
    }

    #[test]
    fn message_accounting() {
        let g = generators::star(5);
        let rep = run_protocol(&MaxId, &g, 5);
        assert!(rep.max_message_bits >= 8);
        // total bits: each node broadcasts once over each incident edge
        assert!(rep.total_message_bits >= 8 * (2 * g.edge_count() as u64));
        assert_eq!(rep.rounds, 1);
    }

    /// Counts rounds: node terminates after `k` rounds where `k` = its
    /// index modulo 3 + 1.
    struct Delay;
    impl Protocol for Delay {
        type State = usize;
        fn init(&self, ctx: &NodeCtx) -> usize {
            (ctx.node as usize % 3) + 1
        }
        fn message(&self, _s: &usize, _round: usize) -> Payload {
            Payload::empty()
        }
        fn receive(&self, s: &mut usize, _c: &NodeCtx, _i: &[Payload], round: usize) -> Step {
            if round + 1 >= *s {
                Step::Output(true)
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn multi_round_termination() {
        let g = generators::path(7);
        let rep = run_protocol(&Delay, &g, 10);
        assert_eq!(rep.rounds, 3);
        assert!(rep.all_accept());
    }

    #[test]
    fn max_rounds_cap() {
        struct Never;
        impl Protocol for Never {
            type State = ();
            fn init(&self, _c: &NodeCtx) {}
            fn message(&self, _s: &(), _r: usize) -> Payload {
                Payload::empty()
            }
            fn receive(&self, _s: &mut (), _c: &NodeCtx, _i: &[Payload], _r: usize) -> Step {
                Step::Continue
            }
        }
        let g = generators::path(4);
        let rep = run_protocol(&Never, &g, 3);
        assert_eq!(rep.rounds, 3);
        assert!(rep.verdicts.iter().all(|v| v.is_none()));
        assert_eq!(rep.reject_count(), 0);
    }

    #[test]
    fn ctx_exposes_neighbor_ids() {
        let g = generators::path(3);
        struct CheckCtx;
        impl Protocol for CheckCtx {
            type State = usize;
            fn init(&self, ctx: &NodeCtx) -> usize {
                ctx.degree()
            }
            fn message(&self, _s: &usize, _r: usize) -> Payload {
                Payload::empty()
            }
            fn receive(&self, s: &mut usize, _c: &NodeCtx, inbox: &[Payload], _r: usize) -> Step {
                Step::Output(inbox.len() == *s)
            }
        }
        let rep = run_protocol(&CheckCtx, &g, 2);
        assert!(rep.all_accept());
    }
}
