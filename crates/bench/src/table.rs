//! Minimal fixed-width table printer for experiment output.

/// A printable table with a title, header, and rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Least-squares fit `y ≈ a·x + b`; returns `(a, b)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "bits"]);
        t.row(vec!["64".into(), "123".into()]);
        t.row(vec!["1024".into(), "456".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("1024"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn fit_recovers_line() {
        let xs: Vec<f64> = (1..20).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x + 2.0).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.5).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
