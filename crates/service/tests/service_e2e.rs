//! End-to-end tests: real TCP server, real client, real cache.

use dpc_core::harness::certify_pls;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::generators;
use dpc_service::cache::CacheConfig;
use dpc_service::client::Client;
use dpc_service::server::{serve, ServeConfig};
use dpc_service::wire::{CheckVerdict, Request, Response};
use dpc_service::{CertifyOptions, CheckOptions, GenOptions};
use std::time::Instant;

fn test_server() -> dpc_service::ServerHandle {
    serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback")
}

#[test]
fn repeated_certify_is_served_from_cache_byte_identical() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::stacked_triangulation(60, 5);

    let first = client.certify(&g, false).unwrap();
    let Response::Certified {
        cached: false,
        outcome: fresh_outcome,
        assignment: fresh_assignment,
    } = first
    else {
        panic!("first certify must prove: {first:?}");
    };
    let stats_after_first = client.stats().unwrap();

    let second = client.certify(&g, false).unwrap();
    let Response::Certified {
        cached: true,
        outcome: hit_outcome,
        assignment: hit_assignment,
    } = second
    else {
        panic!("second certify must hit the cache: {second:?}");
    };
    let stats_after_second = client.stats().unwrap();

    // byte-identical to the fresh prove
    assert_eq!(hit_outcome, fresh_outcome);
    for (a, b) in fresh_assignment.certs.iter().zip(&hit_assignment.certs) {
        assert_eq!(a.bit_len, b.bit_len);
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
    // ... and identical to what the library produces locally on the
    // graph exactly as the server sees it (the wire codec canonicalizes
    // edge order, so round-trip before proving)
    let mut encoded = Vec::new();
    dpc_service::wire::encode_graph(&mut encoded, &g);
    let as_served = dpc_service::wire::decode_graph(&mut encoded.as_slice()).unwrap();
    let local = certify_pls(&PlanarityScheme::new(), &as_served).unwrap();
    for (a, b) in local.assignment.certs.iter().zip(&hit_assignment.certs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    // the prover did not run again: miss/prove counters unchanged
    assert_eq!(
        stats_after_second.cache_misses,
        stats_after_first.cache_misses
    );
    assert_eq!(stats_after_second.proves, stats_after_first.proves);
    assert_eq!(
        stats_after_second.cache_hits,
        stats_after_first.cache_hits + 1
    );
    assert_eq!(stats_after_second.cache_entries, 1);

    handle.shutdown();
}

#[test]
fn bypass_cache_always_proves() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::grid(6, 6);
    for _ in 0..3 {
        match client.certify(&g, true).unwrap() {
            Response::Certified { cached, .. } => assert!(!cached),
            other => panic!("{other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.proves, 3);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0, "bypass never touches the cache");
    handle.shutdown();
}

#[test]
fn non_planar_and_disconnected_decline() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    let k5 = generators::complete(5);
    match client.certify(&k5, false).unwrap() {
        Response::Declined {
            cached: false,
            reason,
        } => {
            assert!(reason.contains("not in the class"), "{reason}");
        }
        other => panic!("{other:?}"),
    }
    // declines are cached too
    match client.certify(&k5, false).unwrap() {
        Response::Declined { cached: true, .. } => {}
        other => panic!("{other:?}"),
    }

    let disconnected = dpc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]);
    match client.certify(&disconnected, false).unwrap() {
        Response::Declined { reason, .. } => assert!(reason.contains("connected")),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}

#[test]
fn check_gen_soundness_and_stats_roundtrip() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    match client
        .check(&generators::grid(4, 4), CheckOptions::new())
        .unwrap()
    {
        Response::Checked(CheckVerdict::Planar { faces, genus }) => {
            assert_eq!(genus, 0);
            assert!(faces > 1);
        }
        other => panic!("{other:?}"),
    }
    match client
        .check(&generators::complete(5), CheckOptions::new())
        .unwrap()
    {
        Response::Checked(CheckVerdict::NonPlanar {
            k5, branch_nodes, ..
        }) => {
            assert!(k5);
            assert_eq!(branch_nodes.len(), 5);
        }
        other => panic!("{other:?}"),
    }

    let g = client
        .gen("triangulation", 30, 7, GenOptions::new())
        .unwrap();
    assert_eq!(g.node_count(), 30);
    assert!(client.gen("nosuch", 10, 0, GenOptions::new()).is_err());

    let bad = generators::planted_kuratowski(18, true, 1, 3);
    match client.soundness(&bad, 1).unwrap() {
        Response::Soundness(rows) => {
            assert!(rows.len() >= 5);
            for row in rows {
                if let Some(rejects) = row.rejects {
                    assert!(rejects >= 1, "attack {} fooled every node", row.attack);
                }
            }
        }
        other => panic!("{other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.check, 2);
    assert_eq!(stats.gen, 2);
    assert_eq!(stats.soundness, 1);
    assert!(stats.latency.count() >= 5);
    handle.shutdown();
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    // mix of cheap and expensive requests: order must still hold
    let sizes = [40u32, 8, 30, 4, 20, 12, 16, 36, 24, 6];
    for &n in &sizes {
        client
            .send(&Request::Certify {
                graph: generators::stacked_triangulation(n, 1),
                bypass_cache: false,
                cached_only: false,
                summary: false,
                scheme: dpc_service::SchemeId::PLANARITY,
            })
            .unwrap();
    }
    assert_eq!(client.in_flight(), sizes.len() as u64);
    for &n in &sizes {
        match client.recv().unwrap() {
            Response::Certified { outcome, .. } => {
                assert_eq!(outcome.verdicts.len(), n as usize, "order violated");
            }
            other => panic!("{other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn concurrent_clients_share_the_cache() {
    let handle = test_server();
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let g = generators::stacked_triangulation(50, 9);
                for _ in 0..5 {
                    match client.certify(&g, false).unwrap() {
                        Response::Certified { outcome, .. } => {
                            assert!(outcome.all_accept(), "thread {t}");
                        }
                        other => panic!("{other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.certify, 20);
    assert_eq!(stats.cache_entries, 1, "one graph, one entry");
    assert!(
        stats.proves <= 4,
        "at most one prove per worker race, got {}",
        stats.proves
    );
    assert!(stats.cache_hits >= 16);
    handle.shutdown();
}

#[test]
fn eviction_under_a_tiny_budget() {
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            cache: CacheConfig {
                shards: 1,
                byte_budget: 12_000,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for seed in 0..8u64 {
        let g = generators::stacked_triangulation(40, seed);
        match client.certify(&g, false).unwrap() {
            Response::Certified { cached, .. } => assert!(!cached),
            other => panic!("{other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert!(stats.cache_evictions > 0, "budget forced evictions");
    // at most the budget plus one in-flight entry (~6 KB each for a
    // 40-node triangulation under the honest cost model)
    assert!(stats.cache_bytes <= 20_000, "{} bytes", stats.cache_bytes);
    assert!(stats.cache_entries < 8, "{} entries", stats.cache_entries);
    handle.shutdown();
}

#[test]
fn malformed_frames_get_error_responses() {
    use dpc_service::wire::{read_frame, write_frame};
    use std::io::Write;
    let handle = test_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    // a frame whose body is not a valid request
    write_frame(&mut stream, &[250, 1, 2, 3]).unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let body = read_frame(&mut reader).unwrap().expect("error response");
    match Response::decode(&body).unwrap() {
        Response::Error(_) => {}
        other => panic!("{other:?}"),
    }
    // the connection survives framing-level decode errors
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    stream.flush().unwrap();
    let body = read_frame(&mut reader).unwrap().expect("stats response");
    assert!(matches!(
        Response::decode(&body).unwrap(),
        Response::Stats(_)
    ));
    handle.shutdown();
}

/// The acceptance gate: on `grid(100,100)` a cache hit must be at
/// least 10x faster than a cache-miss (fresh prove) query, end to end
/// over the wire. In practice the gap is orders of magnitude.
#[test]
fn cache_hit_is_10x_faster_than_miss_on_grid_100() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::grid(100, 100);

    // cold: populates the cache
    let start = Instant::now();
    match client.certify(&g, false).unwrap() {
        Response::Certified { cached: false, .. } => {}
        other => panic!("{other:?}"),
    }
    let miss = start.elapsed();

    // warm: best of a few hits (scheduler noise)
    let hit = (0..5)
        .map(|_| {
            let start = Instant::now();
            match client.certify(&g, false).unwrap() {
                Response::Certified { cached: true, .. } => {}
                other => panic!("{other:?}"),
            }
            start.elapsed()
        })
        .min()
        .unwrap();

    assert!(
        miss >= hit * 10,
        "miss {miss:?} not 10x slower than hit {hit:?}"
    );
    handle.shutdown();
}

/// Unique scratch directory for store tests (std only; removed by
/// the test that owns it).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("dpc-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

#[test]
fn warm_restart_serves_byte_identical_certificates_without_reproving() {
    use dpc_service::wire::encode_certified_suffix;
    use dpc_service::SegmentConfig;

    let dir = scratch_dir("warm-restart");
    let cfg = ServeConfig {
        store: Some(SegmentConfig::new(&dir)),
        ..ServeConfig::default()
    };

    // first life: prove a graph and a decline, then shut down
    // gracefully (fsyncs the store)
    let g = generators::stacked_triangulation(50, 11);
    let k5 = generators::complete(5);
    let (fresh_suffix, declined_reason) = {
        let handle = serve("127.0.0.1:0", cfg.clone()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let Response::Certified {
            cached: false,
            outcome,
            assignment,
        } = client.certify(&g, false).unwrap()
        else {
            panic!("first certify must prove");
        };
        let Response::Declined {
            cached: false,
            reason,
        } = client.certify(&k5, false).unwrap()
        else {
            panic!("K5 must decline");
        };
        let stats = client.stats().unwrap();
        assert_eq!(stats.store_records, 2, "write-behind persisted both");
        assert!(stats.store_segments >= 1);
        handle.shutdown();
        (encode_certified_suffix(&outcome, &assignment), reason)
    };

    // second life, same directory: the warm load makes the very first
    // query a cache hit — the prover never runs
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let Response::Certified {
        cached: true,
        outcome,
        assignment,
    } = client.certify(&g, false).unwrap()
    else {
        panic!("restart must serve a hit");
    };
    assert_eq!(
        encode_certified_suffix(&outcome, &assignment),
        fresh_suffix,
        "restart serves byte-identical certificate wire bytes"
    );
    let Response::Declined {
        cached: true,
        reason,
    } = client.certify(&k5, false).unwrap()
    else {
        panic!("restart must serve the cached decline");
    };
    assert_eq!(reason, declined_reason);
    let stats = client.stats().unwrap();
    assert_eq!(stats.proves, 0, "the prover never ran after the restart");
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.store_records, 2);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_hot_tier_demotes_to_the_store_and_keeps_serving() {
    use dpc_service::SegmentConfig;

    let dir = scratch_dir("demote");
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            // hot tier with room for roughly one entry: almost every
            // insert evicts, i.e. demotes to the cold tier
            cache: CacheConfig {
                shards: 1,
                byte_budget: 4 << 10,
            },
            store: Some(SegmentConfig::new(&dir)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let graphs: Vec<_> = (0..6u64)
        .map(|s| generators::stacked_triangulation(40, s))
        .collect();
    for g in &graphs {
        match client.certify(g, false).unwrap() {
            Response::Certified { cached: false, .. } => {}
            other => panic!("{other:?}"),
        }
    }
    // every graph still answers cached=true, hot or via cold promotion
    for g in &graphs {
        match client.certify(g, false).unwrap() {
            Response::Certified { cached: true, .. } => {}
            other => panic!("not served from a tier: {other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.proves, 6, "each graph proved exactly once");
    assert_eq!(stats.store_records, 6);
    assert!(stats.store_demotes >= 4, "{stats:?}");
    assert!(stats.store_promotes >= 4, "{stats:?}");
    assert!(stats.store_hits >= 4, "{stats:?}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Chunked streaming upload (wire v7).

/// Two disjoint stacked triangulations as one graph: nodes of the
/// second are shifted past the first.
fn two_components(n1: u32, n2: u32, seed: u64) -> dpc_graph::Graph {
    let a = generators::stacked_triangulation(n1, seed);
    let b = generators::stacked_triangulation(n2, seed + 1);
    let mut edges: Vec<(u32, u32)> = a.edges().iter().map(|e| (e.u, e.v)).collect();
    edges.extend(b.edges().iter().map(|e| (e.u + n1, e.v + n1)));
    dpc_graph::Graph::from_edges(n1 + n2, &edges)
}

#[test]
fn chunked_upload_certifies_like_a_single_frame() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    // n = 200 makes the node-count uvarint two bytes, so 1-byte chunks
    // force the decoder to carry a split uvarint across a chunk
    let g = generators::stacked_triangulation(200, 3);
    let reference = certify_pls(&PlanarityScheme::new(), &g).unwrap();

    match client.certify(&g, CertifyOptions::new().chunked(1)) {
        Ok(Response::CertifiedSummary {
            cached: false,
            outcome,
        }) => assert_eq!(outcome, reference.outcome, "streamed prove diverged"),
        other => panic!("{other:?}"),
    }
    // the chunked path shares the cache with the plain certify path
    match client.certify(&g, false).unwrap() {
        Response::Certified {
            cached: true,
            outcome,
            ..
        } => assert_eq!(outcome, reference.outcome),
        other => panic!("{other:?}"),
    }
    // and a repeated chunked upload answers the summary from cache
    match client.certify(&g, CertifyOptions::new().chunked(64)) {
        Ok(Response::CertifiedSummary {
            cached: true,
            outcome,
        }) => assert_eq!(outcome, reference.outcome),
        other => panic!("{other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.chunk_sessions, 2, "two chunked uploads");
    assert!(
        stats.chunk_chunks > 100,
        "1-byte chunks: {}",
        stats.chunk_chunks
    );
    assert!(stats.chunk_bytes > 0);
    assert_eq!(stats.chunk_aborts, 0);
    assert!(
        (1..=9).contains(&stats.chunk_carry_peak),
        "a split uvarint must have been carried, within the bound: {}",
        stats.chunk_carry_peak
    );
    handle.shutdown();
}

#[test]
fn chunked_upload_of_a_disconnected_graph_merges_components() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = two_components(30, 40, 7);
    assert!(!g.is_connected());

    // the plain path still declines disconnected graphs…
    match client.certify(&g, false).unwrap() {
        Response::Declined { reason, .. } => assert!(reason.contains("connected")),
        other => panic!("{other:?}"),
    }
    // …but the summary path proves per component and merges: the
    // merged outcome must equal the whole-graph reference fold built
    // from the components in node order
    let outcome = match client.certify(&g, CertifyOptions::new().chunked(64)) {
        Ok(Response::CertifiedSummary {
            cached: false,
            outcome,
        }) => outcome,
        other => panic!("{other:?}"),
    };
    let parts: Vec<_> = g
        .components()
        .into_iter()
        .map(|nodes| {
            let sub = g.induced_subgraph(&nodes);
            let part = certify_pls(&PlanarityScheme::new(), &sub).unwrap().outcome;
            (nodes, part)
        })
        .collect();
    let reference = dpc_core::harness::Outcome::merge_components(g.node_count(), &parts);
    assert_eq!(outcome, reference, "merged summary diverged");
    assert!(outcome.all_accept());
    assert_eq!(outcome.verdicts.len(), g.node_count());

    let stats = client.stats().unwrap();
    assert!(stats.outcome_merges >= 1);
    handle.shutdown();
}

#[test]
fn malformed_chunk_streams_abort_cleanly_and_the_connection_survives() {
    use dpc_service::wire;
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::stacked_triangulation(20, 1);
    let mut payload = Vec::new();
    wire::encode_graph(&mut payload, &g);
    let scheme = dpc_service::SchemeId::PLANARITY;

    // a chunk for a session that was never begun
    client
        .send_body(&wire::encode_chunk_request(99, 0, &payload))
        .unwrap();
    match client.recv().unwrap() {
        Response::Error(e) => assert!(e.contains("session"), "{e}"),
        other => panic!("{other:?}"),
    }

    // out-of-order seq aborts the session
    client
        .send_body(&wire::encode_chunk_begin_request(5, false, scheme))
        .unwrap();
    match client.recv().unwrap() {
        Response::ChunkAck {
            session: 5,
            received: 0,
        } => {}
        other => panic!("{other:?}"),
    }
    client
        .send_body(&wire::encode_chunk_request(5, 1, &payload))
        .unwrap();
    match client.recv().unwrap() {
        Response::Error(e) => assert!(e.contains("seq") || e.contains("order"), "{e}"),
        other => panic!("{other:?}"),
    }
    // …so the End of the aborted session is an error too
    client
        .send_body(&wire::encode_chunk_end_request(
            5,
            1,
            payload.len() as u64,
            dpc_service::store::crc32(&payload),
        ))
        .unwrap();
    match client.recv().unwrap() {
        Response::Error(_) => {}
        other => panic!("{other:?}"),
    }

    // a whole-payload CRC mismatch at End aborts
    client
        .send_body(&wire::encode_chunk_begin_request(6, false, scheme))
        .unwrap();
    client
        .send_body(&wire::encode_chunk_request(6, 0, &payload))
        .unwrap();
    client
        .send_body(&wire::encode_chunk_end_request(
            6,
            1,
            payload.len() as u64,
            !dpc_service::store::crc32(&payload),
        ))
        .unwrap();
    match client.recv().unwrap() {
        Response::ChunkAck { session: 6, .. } => {}
        other => panic!("{other:?}"),
    }
    match client.recv().unwrap() {
        Response::ChunkAck {
            session: 6,
            received: 1,
        } => {}
        other => panic!("{other:?}"),
    }
    match client.recv().unwrap() {
        Response::Error(e) => assert!(e.to_lowercase().contains("crc"), "{e}"),
        other => panic!("{other:?}"),
    }

    // the connection survives it all: a clean upload and a plain
    // certify still answer normally
    match client.certify(&g, CertifyOptions::new().scheme(scheme).chunked(7)) {
        Ok(Response::CertifiedSummary { outcome, .. }) => assert!(outcome.all_accept()),
        other => panic!("{other:?}"),
    }
    match client.certify(&g, false).unwrap() {
        Response::Certified { .. } => {}
        other => panic!("{other:?}"),
    }

    let stats = client.stats().unwrap();
    assert!(stats.chunk_aborts >= 2, "aborts: {}", stats.chunk_aborts);
    handle.shutdown();
}
