//! Offline shim over the Linux `epoll`/`eventfd` syscalls.
//!
//! The build environment has no access to crates.io, so — like the
//! `rand` and `proptest` shims — this crate vendors the one platform
//! surface `std` does not expose that the service's event loop needs:
//! readiness notification. It declares the handful of libc symbols
//! directly (`std` already links libc on every supported target; no
//! `libc` crate involved) and wraps them in a safe API:
//!
//! * [`Epoll`] — an epoll instance: `add`/`modify`/`delete` interest
//!   registration by fd, and [`Epoll::wait`] filling an [`Events`]
//!   buffer;
//! * [`Events`] / [`Event`] — the readiness list, each entry carrying
//!   the caller's `u64` token and the readiness bits;
//! * [`Waker`] — an `eventfd` that other threads write to wake a
//!   loop blocked in `wait` (the worker-pool → reactor completion
//!   path).
//!
//! Level-triggered only (the reactor re-arms nothing and cannot miss
//! an edge), `EPOLL_CLOEXEC`/`EFD_CLOEXEC` always set. On non-Linux
//! targets every constructor returns [`std::io::ErrorKind::Unsupported`],
//! which the server treats as "fall back to the threaded accept
//! loop" — the crate still compiles everywhere.

/// Readiness bit: the fd is readable (or a peer connected/sent data).
pub const EPOLLIN: u32 = 0x001;
/// Readiness bit: the fd is writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness bit: an error condition (reported even when unrequested).
pub const EPOLLERR: u32 = 0x008;
/// Readiness bit: hangup — the peer closed (reported even when
/// unrequested).
pub const EPOLLHUP: u32 = 0x010;
/// Readiness bit: the peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness notification: the registered token plus the bits
/// that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The `u64` the fd was registered with.
    pub token: u64,
    /// The `EPOLL*` readiness bits.
    pub events: u32,
}

impl Event {
    /// Data can be read (includes error/hangup states, which a read
    /// surfaces as `Ok(0)` or an error — exactly what a connection
    /// state machine wants to observe through its read path).
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Writing would not block.
    pub fn writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR) != 0
    }

    /// The peer is gone or the fd is in an error state.
    pub fn closed(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP) != 0
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, EPOLLIN};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    // The raw libc surface. `std` links libc unconditionally on
    // Linux, so these resolve without any crate dependency.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut RawEpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the
    /// 32-bit-era ABI quirk every architecture but x86-64 dropped).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub(super) struct RawEpollEvent {
        events: u32,
        data: u64,
    }

    /// The kernel's `struct epoll_event`, naturally aligned.
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct RawEpollEvent {
        events: u32,
        data: u64,
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance (level-triggered).
    #[derive(Debug)]
    pub struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        /// Creates a fresh epoll instance.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a flag word and returns a
            // new fd or -1; no memory is exchanged.
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            // SAFETY: `fd` was just returned by the kernel and is
            // owned by nobody else.
            Ok(Epoll {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            let mut ev = RawEpollEvent {
                events: interest,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` with interest bits and a caller token.
        pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), token, interest)
        }

        /// Replaces the interest bits (and token) of a registered fd.
        pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), token, interest)
        }

        /// Deregisters an fd. Closing the fd deregisters implicitly;
        /// this exists for fds that outlive their registration.
        pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
        }

        /// Blocks until at least one registered fd is ready (or the
        /// timeout lapses — `None` blocks forever), filling `out`.
        /// `EINTR` retries internally. Returns the ready count.
        pub fn wait(&self, out: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => {
                    // round up so a 0 < d < 1 ms timeout still sleeps
                    let ms = d.as_millis();
                    if ms == 0 && !d.is_zero() {
                        1
                    } else {
                        ms.min(i32::MAX as u128) as i32
                    }
                }
            };
            loop {
                let buf = &mut out.raw;
                // SAFETY: `buf` holds `buf.len()` initialized entries
                // the kernel may overwrite; the fd is a live epoll fd.
                let n = unsafe {
                    epoll_wait(
                        self.fd.as_raw_fd(),
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        timeout_ms,
                    )
                };
                match cvt(n) {
                    Ok(n) => {
                        out.len = n as usize;
                        return Ok(out.len);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// A buffer of readiness notifications for [`Epoll::wait`].
    #[derive(Debug)]
    pub struct Events {
        pub(super) raw: Vec<RawEpollEvent>,
        pub(super) len: usize,
    }

    impl std::fmt::Debug for RawEpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // copy out of the (possibly packed) struct before borrowing
            let (events, data) = (self.events, self.data);
            f.debug_struct("RawEpollEvent")
                .field("events", &events)
                .field("data", &data)
                .finish()
        }
    }

    impl Events {
        /// A buffer receiving at most `capacity` events per wait.
        pub fn with_capacity(capacity: usize) -> Events {
            Events {
                raw: vec![RawEpollEvent { events: 0, data: 0 }; capacity.max(1)],
                len: 0,
            }
        }

        /// The notifications the last wait produced.
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            self.raw[..self.len].iter().map(|raw| Event {
                token: raw.data,
                events: raw.events,
            })
        }

        /// Number of notifications the last wait produced.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the last wait produced nothing (timeout).
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    /// An `eventfd`-backed wakeup handle: any thread calls
    /// [`Waker::wake`], the loop that registered it observes a
    /// readable event and calls [`Waker::drain`].
    #[derive(Debug)]
    pub struct Waker {
        fd: OwnedFd,
    }

    impl Waker {
        /// A fresh, nonblocking eventfd.
        pub fn new() -> io::Result<Waker> {
            // SAFETY: eventfd takes scalars and returns an fd or -1.
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            // SAFETY: freshly created fd, sole owner.
            Ok(Waker {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        /// Registers the waker in an epoll set under `token`.
        pub fn register(&self, epoll: &Epoll, token: u64) -> io::Result<()> {
            epoll.add(&self.fd, token, EPOLLIN)
        }

        /// Makes the owning loop's next (or current) wait return.
        /// Saturation (`EAGAIN` after 2^64-2 unconsumed wakes) already
        /// means "a wake is pending", so it reports success.
        pub fn wake(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            // SAFETY: `one` is 8 valid bytes; eventfd writes consume
            // exactly 8.
            let n = unsafe { write(self.fd.as_raw_fd(), one.as_ptr(), one.len()) };
            if n >= 0 {
                return Ok(());
            }
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(e)
            }
        }

        /// Consumes pending wakes so the (level-triggered) readable
        /// state clears.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: `buf` is 8 writable bytes; the fd is nonblocking
            // so the read never parks the loop.
            let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl AsRawFd for Waker {
        fn as_raw_fd(&self) -> RawFd {
            self.fd.as_raw_fd()
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; the dpc server falls back to threaded mode",
        ))
    }

    /// Stub epoll instance: every constructor fails with
    /// [`io::ErrorKind::Unsupported`] on non-Linux targets.
    #[derive(Debug)]
    pub struct Epoll {
        never: std::convert::Infallible,
    }

    impl Epoll {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: &impl AsRawFd, _token: u64, _interest: u32) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: &impl AsRawFd, _token: u64, _interest: u32) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: &impl AsRawFd) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _out: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            match self.never {}
        }
    }

    /// Stub event buffer (constructible, always empty).
    #[derive(Debug)]
    pub struct Events;

    impl Events {
        /// An empty buffer.
        pub fn with_capacity(_capacity: usize) -> Events {
            Events
        }

        /// Always empty.
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            std::iter::empty()
        }

        /// Always zero.
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        pub fn is_empty(&self) -> bool {
            true
        }
    }

    /// Stub waker: constructor fails with `Unsupported` off Linux.
    #[derive(Debug)]
    pub struct Waker {
        never: std::convert::Infallible,
    }

    impl Waker {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Waker> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn register(&self, _epoll: &Epoll, _token: u64) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {
            match self.never {}
        }
    }

    impl AsRawFd for Waker {
        fn as_raw_fd(&self) -> RawFd {
            match self.never {}
        }
    }
}

pub use sys::{Epoll, Events, Waker};

/// True when this target has a real epoll (and the server's event
/// loop is available).
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn waker_wakes_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        waker.register(&epoll, 7).unwrap();
        let mut events = Events::with_capacity(8);
        // nothing pending: a short wait times out empty
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);
        // a wake (even several) surfaces as one readable event
        waker.wake().unwrap();
        waker.wake().unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable());
        assert!(!ev.closed());
        // drained, the level-triggered readability clears
        waker.drain();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readability_is_reported_with_the_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(&server, 42, EPOLLIN | EPOLLRDHUP).unwrap();
        let mut events = Events::with_capacity(4);

        client.write_all(b"ping").unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 42);
        assert!(ev.readable());

        let mut buf = [0u8; 16];
        let mut server_rd = &server;
        assert_eq!(server_rd.read(&mut buf).unwrap(), 4);

        // interest can be rewritten and removed
        epoll.modify(&server, 42, EPOLLIN | EPOLLOUT).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.writable()));
        epoll.delete(&server).unwrap();
        drop(client);
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd reports nothing");
    }

    #[test]
    fn supported_is_true_on_linux() {
        assert!(supported());
    }
}
