//! The Section 3.2 pipeline: from a planar embedding of `G` to the
//! path-outerplanar graph `G_{T,f}`.
//!
//! Given a spanning tree `T` of `G` and a rotation system, the DFS
//! traversal that explores children in rotation order (starting from the
//! parent edge) yields the *DFS mapping* `f : {1..2n−1} → V` (each node
//! `v ≠ root` appears `deg_T(v)` times, the root once more). Every cotree
//! edge `{u, v}` is mapped to a single chord `{i, j}` of the path
//! `1..2n−1` using the *type* construction of Lemma 3 (the circle `C_v`
//! argument): the copy of `u` chosen is the occurrence whose outgoing
//! tree edge is the first one met when scanning the rotation forward from
//! the cotree edge's position.
//!
//! For a genuinely planar rotation system the resulting chord family is
//! **laminar** (pairwise nested or disjoint — Definition 1), which is
//! exactly path-outerplanarity of `G_{T,f}` with witness `1..2n−1`
//! (Lemma 3); conversely if the chords are laminar then `G` is planar
//! (Lemma 4). The laminar sweep here both *verifies* this and computes
//! the interval labels `I(x)` used by Algorithm 1's certificates.

use crate::embedding::RotationSystem;
use dpc_graph::traversal::SpanningTree;
use dpc_graph::{EdgeId, Graph, NodeId};
use std::fmt;

const NONE: u32 = u32::MAX;

/// A chord `{a, b}` of the spine path, tagged with the cotree edge of `G`
/// it represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chord {
    /// Left endpoint (position on the spine, `1 ≤ a`).
    pub a: u32,
    /// Right endpoint (`a < b ≤ 2n−1`).
    pub b: u32,
    /// The cotree edge of `G` this chord encodes.
    pub edge: EdgeId,
}

/// Errors from the T-embedding pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TEmbedError {
    /// Two chords cross: the rotation system was not planar (or the tree
    /// and rotation are inconsistent). Carries the two crossing chords.
    CrossingChords(Chord, Chord),
}

impl fmt::Display for TEmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TEmbedError::CrossingChords(c1, c2) => write!(
                f,
                "chords ({}, {}) and ({}, {}) cross: embedding is not planar",
                c1.a, c1.b, c2.a, c2.b
            ),
        }
    }
}

impl std::error::Error for TEmbedError {}

/// The full T-embedding data: DFS mapping, chords, and interval labels.
#[derive(Debug, Clone)]
pub struct TEmbedding {
    /// Number of nodes of `G`.
    pub n: usize,
    /// `2n − 1`, the number of spine positions (paper's `N`).
    pub spine_len: u32,
    /// `f(i)` for `i = 1..=2n−1` (`f[0]` is unused).
    pub f: Vec<NodeId>,
    /// Occurrences `f⁻¹(v)` in increasing order, per node.
    pub occurrences: Vec<Vec<u32>>,
    /// One chord per cotree edge, keyed by position in this list;
    /// `chord_of[e]` maps an [`EdgeId`] to its chord index (or `u32::MAX`
    /// for tree edges).
    pub chords: Vec<Chord>,
    /// Map from edge id to chord index (`u32::MAX` for tree edges).
    pub chord_of: Vec<u32>,
    /// `I(x)` for `x = 1..=2n−1` (`intervals[0]` unused): the tightest
    /// chord (or the virtual chord `(0, 2n)`) strictly containing `x`.
    pub intervals: Vec<(u32, u32)>,
}

impl TEmbedding {
    /// First occurrence `f⁻¹_min(v)`.
    pub fn fmin(&self, v: NodeId) -> u32 {
        self.occurrences[v as usize][0]
    }

    /// Last occurrence `f⁻¹_max(v)`.
    pub fn fmax(&self, v: NodeId) -> u32 {
        *self.occurrences[v as usize].last().unwrap()
    }

    /// The interval label `I(x)` of spine position `x` (`1..=2n−1`).
    pub fn interval(&self, x: u32) -> (u32, u32) {
        self.intervals[x as usize]
    }
}

/// Builds the T-embedding of `G` along spanning tree `tree` using the
/// cyclic orders of `rot`.
///
/// Fails with [`TEmbedError::CrossingChords`] iff the induced chord
/// family is not laminar — which cannot happen when `rot` is a planar
/// rotation system (Lemma 3); the failure path exists to surface bugs
/// and to let tests feed non-planar rotations through the pipeline.
///
/// # Panics
///
/// Panics if `g` has fewer than 2 nodes or `tree`/`rot` do not belong to
/// `g` (dimension mismatches).
pub fn t_embedding(
    g: &Graph,
    rot: &RotationSystem,
    tree: &SpanningTree,
) -> Result<TEmbedding, TEmbedError> {
    let n = g.node_count();
    assert!(n >= 2, "T-embedding needs at least two nodes");
    assert_eq!(rot.node_count(), n);
    assert_eq!(tree.node_count(), n);
    let root = tree.root;
    let tree_mask = tree.tree_edge_mask(g);

    // -- children in rotation order ------------------------------------
    // For v != root: scan the rotation starting just after the parent's
    // position. For the root: choose the virtual parent slot right before
    // an arbitrary tree edge (we pick the first tree-edge position).
    let mut children_rot: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut p0_root = 0usize; // virtual parent slot position at the root
    for v in g.nodes() {
        let rotl = rot.rotation(v);
        let d = rotl.len();
        let start = if v == root {
            let p = rotl
                .iter()
                .position(|&w| {
                    let e = g.find_edge(v, w).expect("rotation edge exists");
                    tree_mask[e as usize]
                })
                .expect("root has a tree neighbor");
            p0_root = p;
            p
        } else {
            let parent = tree.parent[v as usize].unwrap();
            let p = rot.position(v, parent).expect("parent in rotation");
            (p + 1) % d
        };
        for step in 0..d {
            let w = rotl[(start + step) % d];
            if v != root && w == tree.parent[v as usize].unwrap() {
                continue;
            }
            let e = g.find_edge(v, w).expect("rotation edge exists");
            if tree_mask[e as usize] {
                children_rot[v as usize].push(w);
            }
        }
    }

    // -- DFS mapping f ---------------------------------------------------
    let spine_len = (2 * n - 1) as u32;
    let mut f = vec![NONE; 2 * n]; // f[1..=2n-1]
    let mut occurrences: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut child_rank: Vec<u32> = vec![0; n]; // 1-based rank among siblings
    for v in g.nodes() {
        for (k, &c) in children_rot[v as usize].iter().enumerate() {
            child_rank[c as usize] = (k + 1) as u32;
        }
    }
    let mut idx: u32 = 1;
    f[1] = root;
    occurrences[root as usize].push(1);
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
        if *ci < children_rot[v as usize].len() {
            let c = children_rot[v as usize][*ci];
            *ci += 1;
            idx += 1;
            f[idx as usize] = c;
            occurrences[c as usize].push(idx);
            stack.push((c, 0));
        } else {
            stack.pop();
            if let Some(&(p, _)) = stack.last() {
                idx += 1;
                f[idx as usize] = p;
                occurrences[p as usize].push(idx);
            }
        }
    }
    debug_assert_eq!(idx, spine_len, "DFS mapping covers 2n-1 positions");
    for v in g.nodes() {
        let expect = children_rot[v as usize].len() + 1;
        debug_assert_eq!(occurrences[v as usize].len(), expect);
    }

    // -- chord of each cotree edge ----------------------------------------
    // The copy of `v` used by cotree edge e at v is the occurrence whose
    // outgoing tree edge is the first tree edge met scanning the rotation
    // forward from e's position (the paper's "type" of the circle point).
    let type_at = |v: NodeId, other: NodeId| -> u32 {
        let rotl = rot.rotation(v);
        let d = rotl.len();
        let q = rot.position(v, other).expect("cotree edge in rotation");
        for step in 1..=d {
            let j = (q + step) % d;
            if v == root && j == p0_root {
                // crossed the virtual parent slot first
                return *occurrences[v as usize].last().unwrap();
            }
            let w = rotl[j];
            let e = g.find_edge(v, w).unwrap();
            if tree_mask[e as usize] {
                if v != root && w == tree.parent[v as usize].unwrap() {
                    return *occurrences[v as usize].last().unwrap();
                }
                let k = child_rank[w as usize] as usize; // 1-based
                return occurrences[v as usize][k - 1];
            }
        }
        unreachable!("every node has an incident tree edge or the root slot");
    };

    let mut chords = Vec::new();
    let mut chord_of = vec![u32::MAX; g.edge_count()];
    for (eid, e) in g.edges().iter().enumerate() {
        if tree_mask[eid] {
            continue;
        }
        let i = type_at(e.u, e.v);
        let j = type_at(e.v, e.u);
        debug_assert_ne!(i, j);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        chord_of[eid] = chords.len() as u32;
        chords.push(Chord {
            a,
            b,
            edge: eid as EdgeId,
        });
    }

    // -- laminar sweep: intervals I(x) ------------------------------------
    let intervals = laminar_intervals(spine_len, &chords)?;

    Ok(TEmbedding {
        n,
        spine_len,
        f,
        occurrences,
        chords,
        chord_of,
        intervals,
    })
}

/// Convenience: plan the whole pipeline for a connected planar graph —
/// LR embedding, BFS spanning tree rooted at 0, then [`t_embedding`].
///
/// Returns `None` if `g` is not planar.
pub fn t_embedding_auto(g: &Graph) -> Option<(TEmbedding, SpanningTree, RotationSystem)> {
    let rot = crate::lr::planarity(g).into_embedding()?;
    let tree = dpc_graph::traversal::bfs_spanning_tree(g, 0);
    let te = t_embedding(g, &rot, &tree)
        .expect("planar rotation system yields laminar chords (Lemma 3)");
    Some((te, tree, rot))
}

/// Sweeps the chords of a spine `1..=spine_len` left to right and returns
/// the tightest strictly-containing chord `I(x)` for every position.
/// The virtual chord `(0, spine_len + 1)` is the default (paper's
/// `[0, n+1]` convention). Fails iff two chords cross.
pub fn laminar_intervals(spine_len: u32, chords: &[Chord]) -> Result<Vec<(u32, u32)>, TEmbedError> {
    let virt = Chord {
        a: 0,
        b: spine_len + 1,
        edge: u32::MAX,
    };
    // sort by (a asc, b desc): outer chords first at equal left end
    let mut sorted: Vec<Chord> = chords.to_vec();
    sorted.sort_by(|c1, c2| c1.a.cmp(&c2.a).then(c2.b.cmp(&c1.b)));
    let mut stack: Vec<Chord> = vec![virt];
    let mut intervals = vec![(0u32, spine_len + 1); spine_len as usize + 1];
    let mut k = 0usize;
    for x in 1..=spine_len {
        // close chords ending at x
        while stack.last().unwrap().b == x {
            stack.pop();
        }
        // record I(x): the innermost open chord strictly containing x
        let top = stack.last().unwrap();
        debug_assert!(top.a < x && x < top.b);
        intervals[x as usize] = (top.a, top.b);
        // open chords starting at x
        while k < sorted.len() && sorted[k].a == x {
            let c = sorted[k];
            k += 1;
            let top = *stack.last().unwrap();
            if c.b > top.b {
                return Err(TEmbedError::CrossingChords(top, c));
            }
            stack.push(c);
        }
    }
    Ok(intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;
    use dpc_graph::traversal::bfs_spanning_tree;

    fn build(g: &Graph) -> TEmbedding {
        let (te, _, _) = t_embedding_auto(g).expect("planar");
        te
    }

    #[test]
    fn spine_has_2n_minus_1_positions() {
        for g in [
            generators::path(10),
            generators::cycle(12),
            generators::grid(4, 5),
            generators::stacked_triangulation(30, 1),
        ] {
            let te = build(&g);
            assert_eq!(te.spine_len as usize, 2 * g.node_count() - 1);
            // every position is mapped
            for x in 1..=te.spine_len {
                assert_ne!(te.f[x as usize], NONE);
            }
        }
    }

    #[test]
    fn occurrences_match_tree_degrees() {
        let g = generators::stacked_triangulation(40, 2);
        let rot = crate::lr::planarity(&g).into_embedding().unwrap();
        let tree = bfs_spanning_tree(&g, 0);
        let te = t_embedding(&g, &rot, &tree).unwrap();
        for v in g.nodes() {
            let deg_t = tree.children[v as usize].len() + usize::from(v != tree.root);
            let expect = if v == tree.root { deg_t + 1 } else { deg_t };
            assert_eq!(te.occurrences[v as usize].len(), expect, "node {v}");
        }
        // consecutive spine positions map to adjacent tree nodes
        for i in 1..te.spine_len {
            let u = te.f[i as usize];
            let v = te.f[(i + 1) as usize];
            assert!(
                tree.parent[u as usize] == Some(v) || tree.parent[v as usize] == Some(u),
                "spine edge {i} must be a tree edge"
            );
        }
    }

    #[test]
    fn chords_cover_exactly_cotree_edges() {
        let g = generators::random_planar(50, 0.6, 9);
        let rot = crate::lr::planarity(&g).into_embedding().unwrap();
        let tree = bfs_spanning_tree(&g, 0);
        let te = t_embedding(&g, &rot, &tree).unwrap();
        let mask = tree.tree_edge_mask(&g);
        let cotree = mask.iter().filter(|&&t| !t).count();
        assert_eq!(te.chords.len(), cotree);
        // chord endpoints are occurrences of the edge's endpoints
        for c in &te.chords {
            let e = g.edge(c.edge);
            let fa = te.f[c.a as usize];
            let fb = te.f[c.b as usize];
            assert!(
                (fa == e.u && fb == e.v) || (fa == e.v && fb == e.u),
                "chord endpoints map back to the cotree edge"
            );
            assert!(c.b > c.a + 1, "chords are never spine edges");
        }
    }

    #[test]
    fn chords_are_laminar_for_planar_graphs() {
        for seed in 0..15u64 {
            let g = generators::stacked_triangulation(60, seed);
            let te = build(&g); // t_embedding_auto panics internally if not laminar
                                // double check laminarity explicitly
            for (i, c1) in te.chords.iter().enumerate() {
                for c2 in te.chords.iter().skip(i + 1) {
                    let (a, b, c, d) = (c1.a, c1.b, c2.a, c2.b);
                    let ok = b <= c || d <= a || (a <= c && d <= b) || (c <= a && b <= d);
                    assert!(ok, "chords ({a},{b}) and ({c},{d}) cross");
                }
            }
        }
    }

    #[test]
    fn intervals_are_tightest_containing_chords() {
        let g = generators::stacked_triangulation(25, 4);
        let te = build(&g);
        for x in 1..=te.spine_len {
            let (a, b) = te.interval(x);
            assert!(a < x && x < b);
            // no chord strictly between I(x) and x
            for c in &te.chords {
                if c.a < x && x < c.b {
                    assert!(
                        c.a <= a && b <= c.b,
                        "chord ({}, {}) tighter than I({x}) = ({a}, {b})",
                        c.a,
                        c.b
                    );
                }
            }
        }
    }

    #[test]
    fn tree_has_no_chords() {
        let g = generators::random_tree(30, 5);
        let te = build(&g);
        assert!(te.chords.is_empty());
        for x in 1..=te.spine_len {
            assert_eq!(te.interval(x), (0, te.spine_len + 1));
        }
    }

    #[test]
    fn laminar_sweep_detects_crossing() {
        let chords = vec![
            Chord {
                a: 1,
                b: 4,
                edge: 0,
            },
            Chord {
                a: 2,
                b: 6,
                edge: 1,
            },
        ];
        assert!(matches!(
            laminar_intervals(7, &chords),
            Err(TEmbedError::CrossingChords(..))
        ));
    }

    #[test]
    fn laminar_sweep_allows_shared_endpoints() {
        // (1,5) and (5,9): disjoint at 5; (1,9) contains both
        let chords = vec![
            Chord {
                a: 1,
                b: 9,
                edge: 0,
            },
            Chord {
                a: 1,
                b: 5,
                edge: 1,
            },
            Chord {
                a: 5,
                b: 9,
                edge: 2,
            },
        ];
        let iv = laminar_intervals(9, &chords).unwrap();
        assert_eq!(iv[3], (1, 5));
        assert_eq!(iv[5], (1, 9));
        assert_eq!(iv[7], (5, 9));
        assert_eq!(iv[1], (0, 10));
    }

    #[test]
    fn triangle_worked_example() {
        // triangle: T = {0-1, 0-2} (BFS from 0), one cotree edge {1,2}
        let g = generators::cycle(3);
        let te = build(&g);
        assert_eq!(te.spine_len, 5);
        assert_eq!(te.chords.len(), 1);
        let c = te.chords[0];
        // the chord must nest strictly inside (0, 6) and skip a position
        assert!(c.a >= 1 && c.b <= 5 && c.b > c.a + 1);
    }

    #[test]
    fn nonplanar_rotations_yield_crossing_chords() {
        // Lemma 3's converse face: feed rotation systems of positive
        // genus through the pipeline — for dense graphs they must
        // produce crossing chords (were they laminar, Lemma 4 would
        // prove the embedding planar, contradicting the genus)
        let g = generators::stacked_triangulation(40, 6);
        let tree = bfs_spanning_tree(&g, 0);
        let mut crossings = 0;
        for seed in 0..10u64 {
            let rot = crate::embedding::random_rotation(&g, seed);
            if rot.genus() == 0 {
                continue; // a lucky planar rotation is fine
            }
            if t_embedding(&g, &rot, &tree).is_err() {
                crossings += 1;
            }
        }
        assert!(
            crossings >= 8,
            "high-genus rotations must be caught by the laminar sweep, got {crossings}/10"
        );
    }

    #[test]
    fn planar_rotation_always_laminar_even_with_odd_roots() {
        // Lemma 3 quantifies over every spanning tree; vary the root
        let g = generators::random_planar(45, 0.7, 2);
        let rot = crate::lr::planarity(&g).into_embedding().unwrap();
        for root in [0u32, 7, 21, 44] {
            let tree = bfs_spanning_tree(&g, root % g.node_count() as u32);
            let te = t_embedding(&g, &rot, &tree).expect("laminar for every tree");
            assert_eq!(te.spine_len as usize, 2 * g.node_count() - 1);
        }
    }

    #[test]
    fn works_with_dfs_tree_too() {
        let g = generators::stacked_triangulation(35, 8);
        let rot = crate::lr::planarity(&g).into_embedding().unwrap();
        let tree = dpc_graph::traversal::dfs_spanning_tree(&g, 3);
        let te = t_embedding(&g, &rot, &tree).expect("any spanning tree works (Lemma 3)");
        assert_eq!(te.spine_len as usize, 2 * g.node_count() - 1);
    }
}
