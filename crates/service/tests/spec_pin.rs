//! Keeps `docs/WIRE.md` honest: the worked hex example in the spec is
//! parsed out of the document itself and round-tripped through the
//! real codec. If the encoding changes, this test fails until the
//! spec's bytes are updated — the document cannot silently rot.

use dpc_graph::generators;
use dpc_service::registry::SchemeId;
use dpc_service::wire::{self, Request};

const SPEC: &str = include_str!("../../../docs/WIRE.md");

/// The hex bytes of the ```hex fenced block in the spec, comments
/// (`# ...`) stripped.
fn spec_example_bytes() -> Vec<u8> {
    let block = SPEC
        .split("```hex")
        .nth(1)
        .expect("docs/WIRE.md must contain a ```hex block")
        .split("```")
        .next()
        .expect("unterminated ```hex block");
    let mut bytes = Vec::new();
    for line in block.lines() {
        let data = line.split('#').next().unwrap_or("");
        for tok in data.split_whitespace() {
            bytes.push(
                u8::from_str_radix(tok, 16)
                    .unwrap_or_else(|_| panic!("bad hex token {tok:?} in docs/WIRE.md")),
            );
        }
    }
    assert!(!bytes.is_empty(), "empty hex example in docs/WIRE.md");
    bytes
}

#[test]
fn spec_hex_example_is_the_real_encoding() {
    let frame = spec_example_bytes();
    // the spec's frame is exactly what the codec emits for C4 under
    // the bipartite scheme
    let body = wire::encode_certify_request(&generators::cycle(4), false, SchemeId::BIPARTITE);
    let mut expected = Vec::new();
    wire::write_frame(&mut expected, &body).unwrap();
    assert_eq!(
        frame, expected,
        "docs/WIRE.md worked example drifted from the codec"
    );
}

#[test]
fn spec_hex_example_decodes_as_documented() {
    let frame = spec_example_bytes();
    // frame layer
    let mut cursor = std::io::Cursor::new(frame.as_slice());
    let body = wire::read_frame(&mut cursor)
        .expect("valid frame")
        .expect("non-empty stream");
    assert_eq!(cursor.position() as usize, frame.len(), "one whole frame");
    // request layer: Certify, C4, cache on, scheme 1
    match Request::decode(&body).expect("valid request") {
        Request::Certify {
            graph,
            bypass_cache,
            scheme,
        } => {
            assert!(!bypass_cache);
            assert_eq!(scheme, SchemeId::BIPARTITE);
            assert!(wire::graphs_equal(&graph, &generators::cycle(4)));
        }
        other => panic!("spec example decoded as {other:?}"),
    }
    // the compatibility claim at the end of the spec: dropping the
    // 3-byte extension block yields the version-1 planarity request
    let v1 = &body[..body.len() - 3];
    match Request::decode(v1).expect("v1 request") {
        Request::Certify { scheme, .. } => assert_eq!(scheme, SchemeId::PLANARITY),
        other => panic!("{other:?}"),
    }
    let v1_direct = wire::encode_certify_request(&generators::cycle(4), false, SchemeId::PLANARITY);
    assert_eq!(
        v1,
        v1_direct.as_slice(),
        "scheme-0 encoding is v1-identical"
    );
}
