//! Property tests for the rendezvous-hashing ring: routing is a pure
//! function of (key, address set), removing a node remaps only that
//! node's keys, and keys spread close to uniformly.
//!
//! Keys are drawn the way real traffic produces them — the same
//! `uvarint(scheme id) + graph_hash` byte layout
//! [`dpc_service::cluster::graph_key`] emits — but over synthetic
//! random hashes, so a thousand keys cost nothing to generate.

use dpc_runtime::put_uvarint;
use dpc_service::cluster::Ring;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn node_addrs(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.1.{i}.7:4700")).collect()
}

/// A key shaped like the client's routing keys: a small scheme id
/// varint followed by 16 random bytes standing in for the canonical
/// graph hash.
fn synthetic_key(rng: &mut StdRng) -> Vec<u8> {
    let mut key = Vec::with_capacity(19);
    put_uvarint(&mut key, rng.gen_range(0u64..9));
    let hash: u128 = (rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128;
    key.extend_from_slice(&hash.to_le_bytes());
    key
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same key always routes to the same node: rankings are
    /// deterministic, independent of the address list's order, and
    /// reproducible across freshly built rings.
    #[test]
    fn same_key_always_routes_to_the_same_node(seed in 0u64..1_000_000, n in 3usize..=8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let addrs = node_addrs(n);
        let ring = Ring::new(addrs.clone()).unwrap();
        let rebuilt = Ring::new(addrs.clone()).unwrap();
        let mut shuffled = addrs.clone();
        shuffled.reverse();
        let reordered = Ring::new(shuffled).unwrap();
        for _ in 0..200 {
            let key = synthetic_key(&mut rng);
            let rank = ring.rank(&key);
            prop_assert_eq!(&rank, &rebuilt.rank(&key), "rings are stateless");
            prop_assert_eq!(ring.owner(&key), rank[0]);
            prop_assert_eq!(
                &addrs[ring.owner(&key)],
                &reordered.addrs()[reordered.owner(&key)],
                "ownership is a property of the address, not its position"
            );
            // a ranking is a permutation of the node set
            let mut sorted = rank.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    /// Rendezvous stability: removing one node remaps exactly the
    /// keys that node owned — every other key keeps its owner. (This
    /// is the property that makes `dpc store merge` of a drained
    /// node's segments into a survivor sufficient: no third node's
    /// keys move.)
    #[test]
    fn removing_a_node_remaps_only_its_keys(seed in 0u64..1_000_000, n in 3usize..=8) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(17));
        let addrs = node_addrs(n);
        let full = Ring::new(addrs.clone()).unwrap();
        let removed = rng.gen_range(0..n);
        let survivors: Vec<String> = addrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != removed)
            .map(|(_, a)| a.clone())
            .collect();
        let shrunk = Ring::new(survivors).unwrap();
        let mut remapped = 0usize;
        const KEYS: usize = 300;
        for _ in 0..KEYS {
            let key = synthetic_key(&mut rng);
            let before = &addrs[full.owner(&key)];
            let after = &shrunk.addrs()[shrunk.owner(&key)];
            if *before == addrs[removed] {
                remapped += 1;
                prop_assert!(
                    after != &addrs[removed],
                    "the removed node cannot keep keys"
                );
                // and the new owner is the key's old rank-2 node
                let full_rank = full.rank(&key);
                prop_assert_eq!(
                    after,
                    &addrs[full_rank[1]],
                    "orphaned keys fall to their next-ranked node"
                );
            } else {
                prop_assert_eq!(before, after, "a surviving node's keys never move");
            }
        }
        // sanity: the removed node actually owned something
        prop_assert!(remapped > 0, "no key ever routed to node {removed}");
    }

    /// Replica placement (`--replication k` takes the top-k of the
    /// same ranking): the top-k set is deterministic and independent
    /// of the address list's order.
    #[test]
    fn top_k_placement_is_deterministic_and_order_independent(
        seed in 0u64..1_000_000,
        n in 3usize..=8,
        k in 2usize..=3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(71));
        let addrs = node_addrs(n);
        let ring = Ring::new(addrs.clone()).unwrap();
        let mut shuffled = addrs.clone();
        shuffled.reverse();
        let reordered = Ring::new(shuffled).unwrap();
        for _ in 0..200 {
            let key = synthetic_key(&mut rng);
            let top: Vec<&String> = ring.rank(&key)[..k].iter().map(|&i| &addrs[i]).collect();
            prop_assert_eq!(
                &top,
                &ring.rank(&key)[..k].iter().map(|&i| &addrs[i]).collect::<Vec<_>>(),
                "placement is a pure function of the key"
            );
            let top_reordered: Vec<&String> = reordered.rank(&key)[..k]
                .iter()
                .map(|&i| &reordered.addrs()[i])
                .collect();
            prop_assert_eq!(
                top, top_reordered,
                "the replica set is a property of the addresses, not their positions"
            );
        }
    }

    /// Replica stability under node loss: removing one node promotes
    /// exactly that node's replicas — each key it served replica-r
    /// for keeps its other replicas in rank order and gains exactly
    /// one new last-ranked replica — and a key whose whole top-k set
    /// survives keeps that set verbatim.
    #[test]
    fn removing_a_node_promotes_exactly_its_replicas(
        seed in 0u64..1_000_000,
        n in 3usize..=8,
        k in 2usize..=3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(113));
        let addrs = node_addrs(n);
        let full = Ring::new(addrs.clone()).unwrap();
        let removed = rng.gen_range(0..n);
        let survivors: Vec<String> = addrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != removed)
            .map(|(_, a)| a.clone())
            .collect();
        let shrunk = Ring::new(survivors).unwrap();
        let mut touched = 0usize;
        for _ in 0..300 {
            let key = synthetic_key(&mut rng);
            let before: Vec<&String> = full.rank(&key)[..k].iter().map(|&i| &addrs[i]).collect();
            let after: Vec<&String> = shrunk.rank(&key)[..k]
                .iter()
                .map(|&i| &shrunk.addrs()[i])
                .collect();
            if let Some(pos) = before.iter().position(|a| **a == addrs[removed]) {
                touched += 1;
                // the survivors of the old top-k keep their relative
                // order, shifted up past the hole...
                let kept: Vec<&String> = before
                    .iter()
                    .copied()
                    .filter(|a| **a != addrs[removed])
                    .collect();
                prop_assert_eq!(
                    &after[..k - 1],
                    kept.as_slice(),
                    "removing rank-{} promotes without reshuffling", pos + 1
                );
                // ...and exactly one new replica enters, at the tail —
                // the key's old rank-(k+1) node
                prop_assert_eq!(
                    after[k - 1],
                    &addrs[full.rank(&key)[k]],
                    "the promoted node is the old next-in-line"
                );
            } else {
                prop_assert_eq!(before, after, "an intact top-{k} set never remaps");
            }
        }
        prop_assert!(touched > 0, "node {removed} never appeared in a top-{k} set");
    }

    /// Load balance: over >= 1k random keys the busiest node stays
    /// within 2x of the uniform share, for every ring size 3..=8.
    #[test]
    fn distribution_stays_within_2x_of_uniform(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(39));
        const KEYS: usize = 1024;
        let keys: Vec<Vec<u8>> = (0..KEYS).map(|_| synthetic_key(&mut rng)).collect();
        for n in 3usize..=8 {
            let ring = Ring::new(node_addrs(n)).unwrap();
            let mut counts = vec![0usize; n];
            for key in &keys {
                counts[ring.owner(key)] += 1;
            }
            let max = *counts.iter().max().unwrap();
            let bound = 2 * KEYS / n;
            prop_assert!(
                max <= bound,
                "{n} nodes: busiest owns {max} of {KEYS} keys (bound {bound}): {counts:?}"
            );
            prop_assert!(
                counts.iter().all(|&c| c > 0),
                "{n} nodes: some node owns nothing: {counts:?}"
            );
        }
    }
}
