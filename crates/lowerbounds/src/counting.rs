//! The counting side of Lemma 5, made concrete.
//!
//! The proof: a `g(n) = o(log n)`-bit scheme labels each block with one
//! of `2^{(k−1)g}` *labeled blocks*; there are at most `2^{(k−1)gp}`
//! distinct sets of labeled blocks but `p!` paths of blocks, so for
//! large `p` two accepted paths `P, P'` share all labels, and splicing
//! them yields an accepted **cycle** of blocks — illegal.
//!
//! Two artifacts here:
//!
//! * [`crossover_p`] — the smallest `p` where `p! > 2^{(k−1)gp}`
//!   (when the pigeonhole *must* fire);
//! * a concrete end-to-end forgery against [`ModCounterScheme`] — the
//!   natural `g`-bit scheme one would write for block paths (a chain
//!   counter mod `2^g`). All paths of blocks are accepted with
//!   *identical* labeled blocks, and [`forge_cycle`] builds a cycle of
//!   `2^g` blocks on which **every node accepts**: the soundness failure
//!   the lemma predicts, reproduced on a real verifier run.

use crate::blocks::{
    block_size, cycle_of_blocks, left_part, path_of_blocks, right_part, BlockInstance,
};
use dpc_core::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::Graph;
use dpc_runtime::bits::BitWriter;
use dpc_runtime::{NodeCtx, Payload};

/// `ln(p!)` via the exact sum (fine for the `p` ranges involved).
pub fn ln_factorial(p: u64) -> f64 {
    (2..=p).map(|i| (i as f64).ln()).sum()
}

/// Smallest `p` with `p! > 2^{(k−1) g p}` — past this point two paths of
/// blocks *must* share a labeled-block set, whatever the scheme does.
pub fn crossover_p(k: u32, g: u32) -> u64 {
    let c = ((k - 1) * g) as f64 * std::f64::consts::LN_2;
    let mut p = 1u64;
    let mut lnfact = 0.0;
    loop {
        p += 1;
        lnfact += (p as f64).ln();
        if lnfact > c * p as f64 {
            return p;
        }
        if p > 1_000_000_000 {
            unreachable!("ln p! grows superlinearly");
        }
    }
}

/// The natural `g`-bit scheme for paths of blocks: every node's
/// certificate is its block's position along the chain, **mod `2^g`**.
///
/// The verifier at a node checks: its block is a local clique with one
/// agreed counter value; neighbors outside the block (recognized by
/// identifier block-arithmetic, which an LCP may use) carry counter
/// `±1 mod 2^g` on the appropriate side. This accepts every path of
/// blocks; with `g` bits it cannot tell a long chain from a ring whose
/// length is a multiple of `2^g` — exactly Lemma 5's point.
#[derive(Debug, Clone, Copy)]
pub struct ModCounterScheme {
    /// Forbidden-clique parameter `k` (block size `k−1`).
    pub k: usize,
    /// Certificate size in bits.
    pub g: u32,
}

impl ModCounterScheme {
    /// Creates the scheme.
    pub fn new(k: usize, g: u32) -> Self {
        assert!(k >= 3 && (1..=16).contains(&g));
        ModCounterScheme { k, g }
    }

    fn modulus(&self) -> u64 {
        1u64 << self.g
    }

    /// Block index of an identifier (the paper's `r`).
    fn block_of(&self, id: u64) -> u64 {
        id / block_size(self.k) as u64
    }

    /// Assignment giving every node of chain position `t` the value
    /// `t mod 2^g`.
    pub fn assign(&self, inst: &BlockInstance) -> Assignment {
        let s = block_size(self.k);
        let certs = (0..inst.graph.node_count())
            .map(|v| {
                let t = (v / s) as u64 % self.modulus();
                let mut w = BitWriter::new();
                w.write_bits(t, self.g);
                Payload::from_writer(w)
            })
            .collect();
        Assignment { certs }
    }
}

impl ProofLabelingScheme for ModCounterScheme {
    fn name(&self) -> &'static str {
        "mod-counter"
    }

    fn prove(&self, _g: &Graph) -> Result<Assignment, ProveError> {
        // the generic entry point cannot know chain positions; use
        // `assign` with the BlockInstance instead
        Err(ProveError::MissingWitness(
            "use ModCounterScheme::assign with a BlockInstance",
        ))
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        let read = |p: &Payload| -> Option<u64> {
            let mut r = p.reader();
            let v = r.read_bits(self.g).ok()?;
            (r.remaining() == 0).then_some(v)
        };
        let Some(mine) = read(own) else { return false };
        let m = self.modulus();
        let s = block_size(self.k) as u64;
        let my_block = self.block_of(ctx.id);
        let mut in_block = 0usize;
        for (p, &nid) in ctx.neighbor_ids.iter().enumerate() {
            let Some(val) = read(&neighbors[p]) else {
                return false;
            };
            let nb_block = self.block_of(nid);
            if nb_block == my_block {
                in_block += 1;
                if val != mine {
                    return false;
                }
            } else {
                // a connection edge: the side tells the expected counter.
                // My intra-block offset decides whether this neighbor can
                // be on my right (I am in the right part) or left.
                let my_off = ctx.id % s;
                let nb_off = nid % s;
                let i_am_right = my_off >= s - crate::blocks::right_part(self.k) as u64;
                let i_am_left = my_off < crate::blocks::left_part(self.k) as u64;
                if i_am_right && nb_off < crate::blocks::left_part(self.k) as u64 {
                    if val != (mine + 1) % m {
                        return false;
                    }
                } else if i_am_left && nb_off >= s - crate::blocks::right_part(self.k) as u64 {
                    if (val + 1) % m != mine {
                        return false;
                    }
                } else {
                    return false; // an edge the construction never builds
                }
            }
        }
        // the whole block is visible: K_{k-1} means k-2 in-block neighbors
        in_block == block_size(self.k) - 1
    }
}

/// [`ModCounterScheme`] with a *generic* honest prover: the PLS for the
/// class of **paths of blocks** servable through the standard
/// `prove(&Graph)` entry point (and hence the certification service).
///
/// [`ModCounterScheme::prove`] deliberately refuses — the raw scheme
/// only knows counter values given chain positions. This wrapper
/// reconstructs the chain from the identifiers (block `r` = `id/(k−1)`,
/// intra-block offset = `id mod (k−1)`), validates that the graph is
/// *exactly* a path of blocks (complete intra-block cliques, complete
/// right-part → left-part connections, path-shaped block adjacency),
/// and assigns each node its block's chain position mod `2^g`.
///
/// Soundness is unchanged (the verifier is the same), so the Lemma 5
/// forgery still applies: this scheme exists to be served, measured,
/// and attacked, not to fix the lower bound.
///
/// ```
/// use dpc_lowerbounds::blocks::path_of_blocks;
/// use dpc_lowerbounds::counting::BlockPathScheme;
/// use dpc_core::scheme::ProofLabelingScheme;
///
/// let scheme = BlockPathScheme::new(4, 8);
/// let inst = path_of_blocks(4, &[2, 1, 3]);
/// let outcome = dpc_core::harness::run_pls(&scheme, &inst.graph).unwrap();
/// assert!(outcome.all_accept());
/// // a clique is not a path of blocks
/// assert!(scheme.prove(&dpc_graph::generators::complete(6)).is_err());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BlockPathScheme {
    inner: ModCounterScheme,
}

impl BlockPathScheme {
    /// Wraps `ModCounterScheme::new(k, g)`.
    pub fn new(k: usize, g: u32) -> Self {
        BlockPathScheme {
            inner: ModCounterScheme::new(k, g),
        }
    }

    /// The wrapped scheme (for forgery experiments).
    pub fn inner(&self) -> &ModCounterScheme {
        &self.inner
    }

    /// Chain position of every node's block, if the graph is exactly a
    /// path of blocks for parameter `k`.
    fn chain_positions(&self, g: &Graph) -> Result<Vec<u64>, ProveError> {
        const NOT_PATH: ProveError = ProveError::NotInClass("paths of blocks");
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        let s = block_size(self.inner.k);
        let n = g.node_count();
        if n == 0 || !n.is_multiple_of(s) {
            return Err(NOT_PATH);
        }
        // group nodes by block r = id / s; offsets within a block must
        // be exactly {0, .., s-1} (ids are distinct, so so are blocks)
        let mut blocks: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        for v in g.nodes() {
            let id = g.id_of(v);
            blocks.entry(id / s as u64).or_default().push(v);
        }
        for members in blocks.values() {
            if members.len() != s {
                return Err(NOT_PATH);
            }
            let mut seen = vec![false; s];
            for &v in members {
                seen[(g.id_of(v) % s as u64) as usize] = true;
            }
            if seen.iter().any(|&b| !b) {
                return Err(NOT_PATH);
            }
            // intra-block edges form a complete clique
            for (i, &u) in members.iter().enumerate() {
                for &w in &members[i + 1..] {
                    if !g.has_edge(u, w) {
                        return Err(NOT_PATH);
                    }
                }
            }
        }
        // classify cross-block edges: always right part -> left part,
        // and count them per ordered block pair
        let lp = left_part(self.inner.k) as u64;
        let rp = right_part(self.inner.k) as u64;
        let mut links: std::collections::HashMap<(u64, u64), usize> =
            std::collections::HashMap::new();
        for e in g.edges() {
            let (iu, iv) = (g.id_of(e.u), g.id_of(e.v));
            let (bu, bv) = (iu / s as u64, iv / s as u64);
            if bu == bv {
                continue; // clique edge, validated above
            }
            let (ou, ov) = (iu % s as u64, iv % s as u64);
            // the right part is offsets [s-rp, s), the left part [0, lp)
            let (from, to) = if ou >= s as u64 - rp && ov < lp {
                (bu, bv)
            } else if ov >= s as u64 - rp && ou < lp {
                (bv, bu)
            } else {
                return Err(NOT_PATH); // an edge the construction never builds
            };
            *links.entry((from, to)).or_insert(0) += 1;
        }
        // the block digraph must be a simple directed path covering
        // every block, with every connection complete (rp * lp edges)
        let mut succ: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut pred: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (&(from, to), &count) in &links {
            if count != (rp * lp) as usize {
                return Err(NOT_PATH);
            }
            if succ.insert(from, to).is_some() || pred.insert(to, from).is_some() {
                return Err(NOT_PATH);
            }
        }
        let start = match blocks
            .keys()
            .filter(|r| !pred.contains_key(r))
            .collect::<Vec<_>>()[..]
        {
            [&r] => r,
            // no start block: the chain closed into a cycle of blocks
            // (or several components, already excluded by connectivity)
            _ => return Err(NOT_PATH),
        };
        let mut position = std::collections::HashMap::new();
        let mut cur = start;
        for t in 0..blocks.len() as u64 {
            position.insert(cur, t);
            match succ.get(&cur) {
                Some(&next) => cur = next,
                None if t + 1 == blocks.len() as u64 => {}
                None => return Err(NOT_PATH),
            }
        }
        Ok(g.nodes()
            .map(|v| position[&(g.id_of(v) / s as u64)])
            .collect())
    }
}

impl ProofLabelingScheme for BlockPathScheme {
    fn name(&self) -> &'static str {
        "mod-counter"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        let positions = self.chain_positions(g)?;
        let m = self.inner.modulus();
        let certs = positions
            .into_iter()
            .map(|t| {
                let mut w = BitWriter::new();
                w.write_bits(t % m, self.inner.g);
                Payload::from_writer(w)
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        self.inner.verify(ctx, own, neighbors)
    }
}

/// Outcome of the forgery experiment.
#[derive(Debug, Clone)]
pub struct Forgery {
    /// The illegal instance (a cycle of blocks).
    pub cycle: BlockInstance,
    /// The forged certificates.
    pub assignment: Assignment,
    /// Verdict: true iff *every* node of the illegal instance accepted.
    pub fully_accepted: bool,
}

/// Builds the cycle of `2^g` blocks with counter certificates
/// `0, 1, …, 2^g − 1` and runs the verifier everywhere. Every node sees
/// a view that also occurs in an accepted path of blocks, so all accept
/// — a complete soundness failure for the `g`-bit scheme.
pub fn forge_cycle(scheme: &ModCounterScheme) -> Forgery {
    let len = scheme.modulus() as usize;
    let blocks: Vec<usize> = (1..=len).collect();
    let cycle = cycle_of_blocks(scheme.k, &blocks);
    let assignment = scheme.assign(&cycle);
    let outcome = dpc_core::harness::run_with_assignment(scheme, &cycle.graph, &assignment);
    Forgery {
        cycle,
        assignment,
        fully_accepted: outcome.all_accept(),
    }
}

/// Completeness side: the scheme accepts every path of blocks.
pub fn accepts_path(scheme: &ModCounterScheme, perm: &[usize]) -> bool {
    let path = path_of_blocks(scheme.k, perm);
    let a = scheme.assign(&path);
    dpc_core::harness::run_with_assignment(scheme, &path.graph, &a).all_accept()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_decreases_reasonably() {
        // larger g needs a longer path before pigeonhole fires
        let p1 = crossover_p(4, 1);
        let p2 = crossover_p(4, 2);
        let p4 = crossover_p(4, 4);
        assert!(p1 < p2 && p2 < p4, "{p1} {p2} {p4}");
        // sanity: ln(p!) > (k-1) g p ln2 at the crossover
        for (g, p) in [(1u32, p1), (2, p2), (4, p4)] {
            let c = 3.0 * g as f64 * std::f64::consts::LN_2;
            assert!(ln_factorial(p) > c * p as f64);
            assert!(ln_factorial(p - 1) <= c * (p - 1) as f64);
        }
    }

    #[test]
    fn mod_counter_accepts_all_paths() {
        let scheme = ModCounterScheme::new(4, 2);
        assert!(accepts_path(&scheme, &[1, 2, 3, 4, 5, 6]));
        assert!(accepts_path(&scheme, &[3, 1, 4, 2, 6, 5]));
        let scheme5 = ModCounterScheme::new(5, 3);
        assert!(accepts_path(&scheme5, &(1..=10).collect::<Vec<_>>()));
    }

    #[test]
    fn forged_cycle_fully_accepted() {
        for g in 1..=4u32 {
            let scheme = ModCounterScheme::new(4, g);
            let f = forge_cycle(&scheme);
            assert!(
                f.fully_accepted,
                "g={g}: the 2^g-block cycle must fool every node"
            );
            // and the instance really is illegal
            assert!(crate::blocks::certify_cycle_has_kk(&f.cycle));
            assert!(dpc_graph::minors::has_k4_minor(&f.cycle.graph));
        }
    }

    #[test]
    fn wrong_length_cycles_are_caught() {
        // a cycle whose length is NOT a multiple of 2^g is rejected:
        // the counter cannot wrap
        let scheme = ModCounterScheme::new(4, 2);
        let blocks: Vec<usize> = (1..=5).collect(); // 5 % 4 != 0
        let cycle = cycle_of_blocks(scheme.k, &blocks);
        let a = scheme.assign(&cycle);
        let out = dpc_core::harness::run_with_assignment(&scheme, &cycle.graph, &a);
        assert!(!out.all_accept());
    }

    #[test]
    fn certificate_size_is_exactly_g() {
        let scheme = ModCounterScheme::new(4, 3);
        let path = path_of_blocks(4, &[1, 2]);
        let a = scheme.assign(&path);
        assert_eq!(a.max_bits(), 3);
    }

    #[test]
    fn block_path_scheme_proves_paths_generically() {
        let scheme = BlockPathScheme::new(4, 8);
        for perm in [vec![1, 2, 3], vec![3, 1, 4, 2, 5], vec![2, 1]] {
            let inst = path_of_blocks(4, &perm);
            let out = dpc_core::harness::run_pls(&scheme, &inst.graph)
                .unwrap_or_else(|e| panic!("perm {perm:?}: {e}"));
            assert!(out.all_accept(), "perm {perm:?}");
            assert_eq!(out.max_cert_bits, 8);
        }
        // k = 5 too
        let scheme5 = BlockPathScheme::new(5, 4);
        let inst = path_of_blocks(5, &[2, 3, 1]);
        assert!(dpc_core::harness::run_pls(&scheme5, &inst.graph)
            .unwrap()
            .all_accept());
    }

    #[test]
    fn block_path_scheme_survives_wire_roundtrip() {
        // the service re-decodes graphs from the canonical wire
        // encoding; ids (not node indices) must carry the structure
        let scheme = BlockPathScheme::new(4, 8);
        let inst = path_of_blocks(4, &[2, 1, 3]);
        let g = &inst.graph;
        // simulate an id-preserving structural round-trip: rebuild from
        // sorted edges + ids, as wire decode does
        let mut edges: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|e| if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) })
            .collect();
        edges.sort_unstable();
        let rebuilt = Graph::from_edges(g.node_count() as u32, &edges).with_ids(g.ids().to_vec());
        let out = dpc_core::harness::run_pls(&scheme, &rebuilt).unwrap();
        assert!(out.all_accept());
    }

    #[test]
    fn block_path_scheme_declines_non_paths() {
        let scheme = BlockPathScheme::new(4, 3);
        // a cycle of blocks is outside the class (pigeonhole instance!)
        let cyc = cycle_of_blocks(4, &[1, 2, 3, 4]);
        assert_eq!(
            scheme.prove(&cyc.graph).unwrap_err(),
            ProveError::NotInClass("paths of blocks")
        );
        // ordinary graphs are outside the class
        for g in [
            dpc_graph::generators::complete(6),
            dpc_graph::generators::grid(3, 3),
            dpc_graph::generators::path(9),
        ] {
            assert!(scheme.prove(&g).is_err(), "{} nodes", g.node_count());
        }
        // a path of blocks with one clique edge missing is rejected
        let inst = path_of_blocks(4, &[1, 2]);
        let broken = inst.graph.edge_subgraph(|id, _| id != 0);
        if broken.is_connected() {
            assert!(scheme.prove(&broken).is_err());
        }
    }

    #[test]
    fn ln_factorial_matches_direct() {
        let direct: f64 = (2..=10u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(10) - direct).abs() < 1e-9);
        assert_eq!(ln_factorial(1), 0.0);
    }
}
