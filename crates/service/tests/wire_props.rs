//! Property tests for the wire codec: `decode(encode(x)) == x` across
//! every generator family, including shuffled-identifier variants.

use dpc_core::harness::certify_pls;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_graph::{generators, Graph};
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::wire::{self, Request, Response};
use proptest::prelude::*;

/// One representative of every generator family (the shared
/// cross-crate table — see `generators::sample_family`).
fn family_graph(which: u32, n: u32, seed: u64) -> Graph {
    generators::sample_family(which, n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Graph wire encoding round-trips every family exactly, with
    /// default and with shuffled identifiers.
    #[test]
    fn graph_codec_identity(which in 0u32..generators::SAMPLE_FAMILY_COUNT, n in 5u32..40, seed in 0u64..1000) {
        let g = family_graph(which, n, seed);
        for g in [g.clone(), generators::shuffle_ids(&g, seed)] {
            let mut out = Vec::new();
            wire::encode_graph(&mut out, &g);
            let mut cursor = out.as_slice();
            let h = wire::decode_graph(&mut cursor).unwrap();
            prop_assert!(cursor.is_empty(), "full consumption");
            prop_assert!(wire::graphs_equal(&g, &h));
            // encoding is canonical: re-encoding the decoded graph is
            // byte-identical
            let mut again = Vec::new();
            wire::encode_graph(&mut again, &h);
            prop_assert_eq!(out, again);
        }
    }

    /// Requests round-trip through the frame body codec — for *every*
    /// scheme id the standard registry serves, plus an unregistered id
    /// (the codec is registry-agnostic; routing unknown ids is the
    /// server's job).
    #[test]
    fn request_codec_identity(which in 0u32..generators::SAMPLE_FAMILY_COUNT, n in 5u32..30, seed in 0u64..500) {
        let g = family_graph(which, n, seed);
        let registry = SchemeRegistry::standard();
        let mut ids: Vec<SchemeId> =
            registry.entries().iter().map(|e| e.id).collect();
        ids.push(SchemeId(4321)); // unregistered but well-formed
        for scheme in ids {
            let requests = [
                Request::Certify { graph: g.clone(), bypass_cache: seed.is_multiple_of(2), cached_only: false, summary: false, scheme },
                Request::Check { graph: g.clone(), scheme },
                Request::Gen { family: "grid".into(), n, seed, scheme },
                Request::SoundnessProbe { graph: g.clone(), seed, scheme },
                Request::Stats,
            ];
            for req in requests {
                let back = Request::decode(&req.encode()).unwrap();
                prop_assert_eq!(req.scheme(), back.scheme(), "scheme changed in flight");
                match (&req, &back) {
                    (Request::Certify { graph: a, bypass_cache: fa, .. },
                     Request::Certify { graph: b, bypass_cache: fb, .. }) => {
                        prop_assert!(wire::graphs_equal(a, b));
                        prop_assert_eq!(fa, fb);
                    }
                    (Request::Check { graph: a, .. }, Request::Check { graph: b, .. }) => {
                        prop_assert!(wire::graphs_equal(a, b));
                    }
                    (Request::Gen { family: a, n: na, seed: sa, .. },
                     Request::Gen { family: b, n: nb, seed: sb, .. }) => {
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(na, nb);
                        prop_assert_eq!(sa, sb);
                    }
                    (Request::SoundnessProbe { graph: a, seed: sa, .. },
                     Request::SoundnessProbe { graph: b, seed: sb, .. }) => {
                        prop_assert!(wire::graphs_equal(a, b));
                        prop_assert_eq!(sa, sb);
                    }
                    (Request::Stats, Request::Stats) => {}
                    _ => prop_assert!(false, "kind changed in flight"),
                }
            }
        }
    }

    /// Certified responses round-trip with byte-identical certificates.
    #[test]
    fn certified_response_identity(n in 6u32..40, seed in 0u64..500) {
        let g = generators::stacked_triangulation(n, seed);
        let certified = certify_pls(&PlanarityScheme::new(), &g).unwrap();
        let resp = Response::Certified {
            cached: seed.is_multiple_of(2),
            outcome: certified.outcome.clone(),
            assignment: certified.assignment.clone(),
        };
        match Response::decode(&resp.encode()).unwrap() {
            Response::Certified { cached, outcome, assignment } => {
                prop_assert_eq!(cached, seed.is_multiple_of(2));
                prop_assert_eq!(outcome, certified.outcome);
                prop_assert_eq!(
                    assignment.certs.len(),
                    certified.assignment.certs.len()
                );
                for (a, b) in assignment.certs.iter().zip(&certified.assignment.certs) {
                    prop_assert_eq!(a.bit_len, b.bit_len);
                    prop_assert_eq!(a.as_bytes(), b.as_bytes());
                }
            }
            other => prop_assert!(false, "kind changed: {:?}", other),
        }
    }

    /// Streaming the canonical graph bytes through the incremental
    /// decoder in arbitrary chunk sizes reconstructs exactly the graph
    /// a single-frame decode yields — for every generator family, with
    /// default and with shuffled identifiers — and the decoder's
    /// between-chunk carry never exceeds one partial uvarint.
    #[test]
    fn chunked_reassembly_matches_single_frame(
        which in 0u32..generators::SAMPLE_FAMILY_COUNT,
        n in 5u32..40,
        seed in 0u64..1000,
        chunk in 1usize..64,
    ) {
        let g = family_graph(which, n, seed);
        for g in [g.clone(), generators::shuffle_ids(&g, seed)] {
            let mut payload = Vec::new();
            wire::encode_graph(&mut payload, &g);
            let mut dec = wire::GraphStreamDecoder::new();
            for piece in payload.chunks(chunk) {
                dec.feed(piece).unwrap();
                prop_assert!(dec.carry_len() <= 9, "carry stays bounded");
            }
            let h = dec.finish().unwrap();
            prop_assert!(wire::graphs_equal(&g, &h));
            // canonicality survives the streamed path: re-encoding the
            // reassembled graph is byte-identical to the original
            let mut again = Vec::new();
            wire::encode_graph(&mut again, &h);
            prop_assert_eq!(payload, again);
        }
    }

    /// Malformed chunk traffic never panics, only errors: truncating a
    /// chunk frame body anywhere, flipping a payload byte under its
    /// CRC, tearing the stream short, or feeding garbage bytes.
    #[test]
    fn malformed_chunk_frames_error_cleanly(
        which in 0u32..generators::SAMPLE_FAMILY_COUNT,
        n in 5u32..25,
        seed in 0u64..200,
        victim in 0usize..1024,
    ) {
        let g = family_graph(which, n, seed);
        let mut payload = Vec::new();
        wire::encode_graph(&mut payload, &g);
        let body = wire::encode_chunk_request(9, 0, &payload);
        // truncation anywhere inside the body is an error
        for cut in 0..body.len() {
            prop_assert!(Request::decode(&body[..cut]).is_err());
        }
        // flipping any payload byte breaks the per-chunk CRC
        let payload_start = body.len() - 4 - payload.len();
        let mut corrupt = body.clone();
        corrupt[payload_start + victim % payload.len()] ^= 0x5a;
        prop_assert!(Request::decode(&corrupt).is_err());
        // a torn stream (missing tail bytes) fails at finish
        let mut dec = wire::GraphStreamDecoder::new();
        dec.feed(&payload[..payload.len() - 1]).unwrap();
        prop_assert!(dec.finish().is_err());
        // garbage must be handled without panicking — an error, or a
        // decode that still round-trips canonically, never a crash
        let garbage: Vec<u8> = payload.iter().map(|b| !b).collect();
        let mut dec = wire::GraphStreamDecoder::new();
        if dec.feed(&garbage).is_ok() {
            if let Ok(h) = dec.finish() {
                let mut again = Vec::new();
                wire::encode_graph(&mut again, &h);
                prop_assert_eq!(garbage, again, "accepted bytes must be canonical");
            }
        }
    }

    /// Truncating any encoded request never panics, only errors —
    /// including truncation inside the scheme-id extension block.
    #[test]
    fn truncation_is_an_error_not_a_panic(which in 0u32..generators::SAMPLE_FAMILY_COUNT, n in 5u32..25, seed in 0u64..200) {
        let g = family_graph(which, n, seed);
        let body = Request::Certify {
            graph: g.clone(),
            bypass_cache: false,
            cached_only: false,
            summary: false,
            scheme: SchemeId::PLANARITY,
        }.encode();
        for cut in 0..body.len().min(48) {
            prop_assert!(Request::decode(&body[..cut]).is_err());
        }
        // with a scheme-id extension the block sits at the tail:
        // cutting *inside* it (tag without length, length without
        // payload) must error; cutting the whole block off falls back
        // to a valid v1 planarity request — that is the compatibility
        // rule, not a bug
        let ext = Request::Certify {
            graph: g,
            bypass_cache: false,
            cached_only: false,
            summary: false,
            scheme: SchemeId::MOD_COUNTER,
        }.encode();
        for cut in ext.len() - 2..ext.len() {
            prop_assert!(Request::decode(&ext[..cut]).is_err());
        }
        let v1 = Request::decode(&ext[..ext.len() - 3]).unwrap();
        prop_assert_eq!(v1.scheme(), Some(SchemeId::PLANARITY));
        // random corruption of the tag byte
        let mut corrupt = body.clone();
        corrupt[0] = 99;
        prop_assert!(Request::decode(&corrupt).is_err());
    }
}

#[test]
fn all_other_response_kinds_roundtrip() {
    use dpc_service::wire::{CheckVerdict, SoundnessLine};
    let responses = vec![
        Response::Error("nope".into()),
        Response::Declined {
            cached: true,
            reason: "instance is not in the class: planar graphs".into(),
        },
        Response::Checked(CheckVerdict::Planar { faces: 7, genus: 0 }),
        Response::Checked(CheckVerdict::NonPlanar {
            k5: false,
            branch_nodes: vec![1, 5, 9, 2, 4, 8],
            witness_edges: 12,
        }),
        Response::Generated(generators::grid(4, 4)),
        Response::Soundness(vec![
            SoundnessLine {
                attack: "garbage".into(),
                rejects: Some(14),
            },
            SoundnessLine {
                attack: "replay-planarized".into(),
                rejects: None,
            },
        ]),
    ];
    for resp in responses {
        let back = Response::decode(&resp.encode()).unwrap();
        assert_eq!(format!("{resp:?}"), format!("{back:?}"));
    }
}
