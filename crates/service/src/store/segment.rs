//! The append-only segment-file certificate store (the cold tier).
//!
//! Certificates are immutable, so the on-disk format never updates in
//! place: records are appended to numbered *segment files* and the
//! only index is in memory, rebuilt by scanning the segments at
//! startup. Reads go through positioned `pread`s (`read_exact_at`) on
//! shared file handles — the page cache does the caching, which is
//! the moral equivalent of an mmap'd store without the `unsafe`.
//!
//! File format (everything little-endian / LEB128):
//!
//! ```text
//! segment  := magic "DPCSEG1\n" , record*
//! record   := total u32 LE      bytes after this field (body + crc)
//!             body              kind uvarint, keyed len+bytes,
//!                               suffix len+bytes   (StoreRecord body)
//!             crc   u32 LE      CRC-32 (IEEE) over the body
//! ```
//!
//! Crash behavior: appends are ordinary buffered writes (write-behind;
//! [`SegmentStore::flush`] fsyncs), so a torn final record is possible
//! after a hard crash. The startup scan stops a segment at the first
//! bad record; for the *active* (last) segment the torn tail is
//! truncated so new appends start clean.
//!
//! There are no tombstones: a record leaves the index either by a
//! byte-budget drop (oldest first) or never, and compaction simply
//! rewrites the live records into fresh segments and deletes the old
//! files. It runs off the request path — `maintain` (called by the
//! server's background flusher) compacts once dead bytes exceed the
//! live ones (and a floor); `dpc store compact` forces it offline.

use super::{crc32, CertStore, StoreRecord, StoreStats};
use crate::registry::{SchemeId, SchemeRegistry};
use dpc_graph::canon::GraphHash;
use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DPCSEG1\n";

/// Upper bound on one framed record (matches the wire frame cap).
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// Sizing and location of a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment file once the active one exceeds this.
    pub segment_max_bytes: u64,
    /// Optional budget on live record bytes; exceeding it drops the
    /// oldest records (they were proved earliest and, being content
    /// addressed, can always be re-proved).
    pub byte_budget: Option<u64>,
}

impl SegmentConfig {
    /// A store in `dir` with default sizing (64 MiB segments, no
    /// budget).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SegmentConfig {
            dir: dir.into(),
            segment_max_bytes: 64 << 20,
            byte_budget: None,
        }
    }
}

struct Segment {
    id: u64,
    path: PathBuf,
    file: Arc<File>,
    len: u64,
}

#[derive(Clone, Copy)]
struct Loc {
    seg: usize,
    offset: u64,
    /// Whole framed record: length prefix + body + crc.
    len: u32,
}

#[derive(Default)]
struct Inner {
    segments: Vec<Segment>,
    index: HashMap<u128, Loc>,
    /// Keys in insertion order (budget drops pop the front).
    order: VecDeque<u128>,
    live_bytes: u64,
}

impl Inner {
    fn file_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }

    fn garbage_bytes(&self) -> u64 {
        let headers = self.segments.len() as u64 * SEGMENT_MAGIC.len() as u64;
        self.file_bytes()
            .saturating_sub(headers)
            .saturating_sub(self.live_bytes)
    }
}

/// What one [`SegmentStore::merge_from`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Records read from the source.
    pub scanned: u64,
    /// Records newly appended to the destination.
    pub merged: u64,
    /// Records the destination already held (same content key — the
    /// existing bytes are equivalent by content addressing).
    pub duplicates: u64,
    /// Source records that could not be read back (I/O error or CRC
    /// mismatch on the read path); they are skipped, not copied.
    pub source_errors: u64,
}

/// What [`SegmentStore::verify`] found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Live records successfully read and CRC-checked.
    pub records: u64,
    /// Records holding certificates.
    pub certified: u64,
    /// Records holding cached refusals.
    pub declined: u64,
    /// Bytes of live records.
    pub bytes: u64,
    /// Human-readable problems (unreadable records, undecodable
    /// suffixes, scheme ids absent from the registry). Empty = clean.
    pub problems: Vec<String>,
}

/// The append-only segment-file store. All methods take `&self`;
/// writers serialize on an internal mutex, reads only hold it long
/// enough to resolve the index.
pub struct SegmentStore {
    cfg: SegmentConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    dropped: AtomicU64,
    read_errors: AtomicU64,
    compactions: AtomicU64,
}

enum FrameErr {
    /// Fewer bytes than the record announces (torn tail).
    Truncated,
    /// CRC or structural mismatch.
    Bad(String),
}

fn frame(record: &StoreRecord) -> Vec<u8> {
    let body = record.encode_body();
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Parses one framed record from the front of `buf`; returns the
/// record and the framed byte count.
fn parse_frame(buf: &[u8]) -> Result<(StoreRecord, usize), FrameErr> {
    if buf.len() < 4 {
        return Err(FrameErr::Truncated);
    }
    let total = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if !(4..=MAX_RECORD_BYTES).contains(&total) {
        return Err(FrameErr::Bad(format!("record of {total} bytes")));
    }
    if buf.len() < 4 + total {
        return Err(FrameErr::Truncated);
    }
    let body = &buf[4..total];
    let crc = u32::from_le_bytes(buf[total..4 + total].try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(FrameErr::Bad("CRC mismatch".into()));
    }
    let record = StoreRecord::decode_body(body).map_err(|e| FrameErr::Bad(e.to_string()))?;
    Ok((record, 4 + total))
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.dpcs"))
}

fn open_segment(dir: &Path, id: u64, create: bool) -> io::Result<Segment> {
    let path = segment_path(dir, id);
    let file = OpenOptions::new()
        .read(true)
        .append(true)
        .create(create)
        .open(&path)?;
    let mut len = file.metadata()?.len();
    if create && len == 0 {
        (&file).write_all(SEGMENT_MAGIC)?;
        len = SEGMENT_MAGIC.len() as u64;
    }
    Ok(Segment {
        id,
        path,
        file: Arc::new(file),
        len,
    })
}

impl SegmentStore {
    /// Opens (or creates) the store in `cfg.dir`, scanning every
    /// segment to rebuild the in-memory index. A torn tail on the
    /// active segment is truncated; corruption elsewhere stops that
    /// segment's scan (the bytes beyond it become garbage for the
    /// next compaction) and is counted in `stats().read_errors`.
    pub fn open(cfg: SegmentConfig) -> io::Result<SegmentStore> {
        fs::create_dir_all(&cfg.dir)?;
        let mut ids = Vec::new();
        for entry in fs::read_dir(&cfg.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".dpcs"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let store = SegmentStore {
            cfg,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        };
        {
            let mut inner = store.inner.lock().expect("store poisoned");
            if ids.is_empty() {
                inner.segments.push(open_segment(&store.cfg.dir, 0, true)?);
            } else {
                for (pos, &id) in ids.iter().enumerate() {
                    let last = pos == ids.len() - 1;
                    let seg = open_segment(&store.cfg.dir, id, false)?;
                    store.scan_segment(&mut inner, seg, last)?;
                }
            }
            store.enforce_budget(&mut inner);
        }
        Ok(store)
    }

    /// Scans one segment, indexing its records (first key wins —
    /// matching the cache's duplicate-insert semantics), then adds it
    /// to the segment list. `active` marks the last segment, whose
    /// torn tail (if any) is truncated.
    fn scan_segment(&self, inner: &mut Inner, mut seg: Segment, active: bool) -> io::Result<()> {
        // positioned read of the whole segment (append-mode handles
        // share no cursor, so read_exact_at from offset 0 is exact)
        let mut bytes = vec![0u8; seg.len as usize];
        seg.file.read_exact_at(&mut bytes, 0)?;
        let mut offset = SEGMENT_MAGIC.len();
        let seg_idx = inner.segments.len();
        if bytes.len() < offset || &bytes[..offset] != SEGMENT_MAGIC {
            // not one of ours (or torn before the magic finished):
            // usable only if active and resettable
            self.read_errors.fetch_add(1, Ordering::Relaxed);
            if active {
                seg.file.set_len(0)?;
                (&*seg.file).write_all(SEGMENT_MAGIC)?;
                seg.len = SEGMENT_MAGIC.len() as u64;
            }
            inner.segments.push(seg);
            return Ok(());
        }
        loop {
            if offset == bytes.len() {
                break;
            }
            match parse_frame(&bytes[offset..]) {
                Ok((record, framed)) => {
                    let key = record.key().0;
                    if let std::collections::hash_map::Entry::Vacant(slot) = inner.index.entry(key)
                    {
                        slot.insert(Loc {
                            seg: seg_idx,
                            offset: offset as u64,
                            len: framed as u32,
                        });
                        inner.order.push_back(key);
                        inner.live_bytes += framed as u64;
                    }
                    offset += framed;
                }
                Err(FrameErr::Truncated) => {
                    if active {
                        // torn tail after a crash: truncate so the
                        // next append starts at a record boundary
                        seg.file.set_len(offset as u64)?;
                        seg.len = offset as u64;
                    } else {
                        self.read_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                Err(FrameErr::Bad(_)) => {
                    // corruption: stop scanning this segment; the
                    // remainder is garbage until compaction
                    self.read_errors.fetch_add(1, Ordering::Relaxed);
                    if active {
                        seg.file.set_len(offset as u64)?;
                        seg.len = offset as u64;
                    }
                    break;
                }
            }
        }
        inner.segments.push(seg);
        Ok(())
    }

    fn enforce_budget(&self, inner: &mut Inner) {
        let Some(budget) = self.cfg.byte_budget else {
            return;
        };
        while inner.live_bytes > budget && inner.index.len() > 1 {
            let Some(key) = inner.order.pop_front() else {
                break;
            };
            if let Some(loc) = inner.index.remove(&key) {
                inner.live_bytes -= loc.len as u64;
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Rewrites the live records into fresh segments and deletes the
    /// old files. Returns `(file_bytes_before, file_bytes_after)`.
    pub fn compact(&self) -> io::Result<(u64, u64)> {
        let mut inner = self.inner.lock().expect("store poisoned");
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> io::Result<(u64, u64)> {
        let before = inner.file_bytes();
        let next_id = inner.segments.last().map_or(0, |s| s.id + 1);
        // stream each live framed record (in insertion order, raw —
        // already CRC-checked on scan) straight into fresh segments;
        // memory stays O(one record), not O(store). An error leaves
        // `inner` untouched: the orphan new files have higher ids
        // than the originals, so the next scan indexes the originals
        // first and the orphan copies read as duplicates (garbage).
        let mut new_segments = vec![open_segment(&self.cfg.dir, next_id, true)?];
        let mut index = HashMap::with_capacity(inner.order.len());
        let mut live_bytes = 0u64;
        let mut framed = Vec::new();
        for &key in &inner.order {
            let loc = inner.index[&key];
            let old_seg = &inner.segments[loc.seg];
            framed.resize(loc.len as usize, 0);
            old_seg.file.read_exact_at(&mut framed, loc.offset)?;
            if new_segments.last().expect("nonempty").len + framed.len() as u64
                > self.cfg.segment_max_bytes
                && new_segments.last().expect("nonempty").len > SEGMENT_MAGIC.len() as u64
            {
                let id = new_segments.last().expect("nonempty").id + 1;
                new_segments.push(open_segment(&self.cfg.dir, id, true)?);
            }
            let seg_idx = new_segments.len() - 1;
            let seg = new_segments.last_mut().expect("nonempty");
            (&*seg.file).write_all(&framed)?;
            index.insert(
                key,
                Loc {
                    seg: seg_idx,
                    offset: seg.len,
                    len: framed.len() as u32,
                },
            );
            seg.len += framed.len() as u64;
            live_bytes += framed.len() as u64;
        }
        for seg in &new_segments {
            seg.file.sync_all()?;
        }
        let old = std::mem::replace(&mut inner.segments, new_segments);
        for seg in old {
            let _ = fs::remove_file(&seg.path);
        }
        inner.index = index;
        inner.live_bytes = live_bytes;
        // order is unchanged: every key it names survived compaction
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok((before, inner.file_bytes()))
    }

    /// Re-reads every live record, checking its CRC, decoding its
    /// suffix, and checking its scheme id against `registry`.
    pub fn verify(&self, registry: &SchemeRegistry) -> VerifyReport {
        let mut report = VerifyReport::default();
        for (i, item) in self.iter().enumerate() {
            match item {
                Ok(record) => {
                    report.records += 1;
                    report.bytes += (record.keyed.len() + record.suffix.len()) as u64;
                    match record.kind {
                        super::RecordKind::Certified => report.certified += 1,
                        super::RecordKind::Declined => report.declined += 1,
                    }
                    if let Err(e) = record.to_entry() {
                        report
                            .problems
                            .push(format!("record {i}: undecodable suffix: {e}"));
                    }
                    match record.scheme_id() {
                        Some(id) if registry.get(SchemeId(id)).is_some() => {}
                        Some(id) => report
                            .problems
                            .push(format!("record {i}: scheme id {id} is not registered")),
                        None => report
                            .problems
                            .push(format!("record {i}: keyed bytes carry no scheme id")),
                    }
                }
                Err(e) => report.problems.push(format!("record {i}: unreadable: {e}")),
            }
        }
        report
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &SegmentConfig {
        &self.cfg
    }

    /// Streams every live record of `src` into this store, deduplicating
    /// by content key: a record whose keyed bytes this store already
    /// indexes is skipped (content addressing makes the resident copy
    /// equivalent — certificates are immutable). This is how a drained
    /// or dead node's certificates rehome without re-proving: records
    /// are read one at a time (CRC-checked by the source's read path)
    /// and appended through the ordinary [`CertStore::put`], so memory
    /// stays O(one record) and destination invariants (segment roll,
    /// byte budget, index) hold throughout. Call [`CertStore::flush`]
    /// afterwards to make the union durable.
    ///
    /// Destination write errors abort with `Err`; source read errors
    /// skip the record and are counted in the report.
    pub fn merge_from(&self, src: &dyn CertStore) -> io::Result<MergeReport> {
        let mut report = MergeReport::default();
        for item in src.iter() {
            match item {
                Ok(record) => {
                    report.scanned += 1;
                    if self.put(&record)? {
                        report.merged += 1;
                    } else {
                        report.duplicates += 1;
                    }
                }
                Err(_) => report.source_errors += 1,
            }
        }
        Ok(report)
    }

    /// Insertion-ordered `(file handle, location)` snapshot of the
    /// live index, taken under the lock; reads happen lock-free.
    fn loc_snapshot(&self) -> Vec<(Arc<File>, Loc)> {
        let inner = self.inner.lock().expect("store poisoned");
        inner
            .order
            .iter()
            .filter_map(|key| {
                inner
                    .index
                    .get(key)
                    .map(|&loc| (Arc::clone(&inner.segments[loc.seg].file), loc))
            })
            .collect()
    }

    fn read_loc(&self, file: &File, loc: Loc) -> io::Result<StoreRecord> {
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact_at(&mut buf, loc.offset)?;
        match parse_frame(&buf) {
            Ok((record, consumed)) if consumed == buf.len() => Ok(record),
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record shorter than its index entry",
            )),
            Err(FrameErr::Truncated) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "record truncated under its index entry",
            )),
            Err(FrameErr::Bad(msg)) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
        }
    }
}

impl CertStore for SegmentStore {
    fn get(&self, key: GraphHash, keyed: &[u8]) -> Option<StoreRecord> {
        let target = {
            let inner = self.inner.lock().expect("store poisoned");
            match inner.index.get(&key.0) {
                Some(&loc) => (Arc::clone(&inner.segments[loc.seg].file), loc),
                None => {
                    drop(inner);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        match self.read_loc(&target.0, target.1) {
            Ok(record) if record.keyed == keyed => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            Ok(_) => {
                // 128-bit collision (or stale read during compaction):
                // the keyed guard turns it into a miss, never into the
                // wrong certificates
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.read_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, record: &StoreRecord) -> io::Result<bool> {
        let framed = frame(record);
        if framed.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record exceeds the size limit",
            ));
        }
        let key = record.key().0;
        let mut inner = self.inner.lock().expect("store poisoned");
        if inner.index.contains_key(&key) {
            return Ok(false);
        }
        let roll = {
            let active = inner.segments.last().expect("at least one segment");
            active.len + framed.len() as u64 > self.cfg.segment_max_bytes
                && active.len > SEGMENT_MAGIC.len() as u64
        };
        if roll {
            let id = inner.segments.last().expect("nonempty").id + 1;
            inner.segments.push(open_segment(&self.cfg.dir, id, true)?);
        }
        let seg_idx = inner.segments.len() - 1;
        let seg = inner.segments.last_mut().expect("nonempty");
        let offset = seg.len;
        if let Err(e) = (&*seg.file).write_all(&framed) {
            // the append may have partially landed (e.g. transient
            // ENOSPC): roll the file back to the last record boundary
            // so the tracked length — and with it the offset of every
            // future record — stays truthful. If even the truncate
            // fails, adopt the file's real length: the partial bytes
            // then read as one corrupt record (CRC), dropped by the
            // next scan or compaction.
            if seg.file.set_len(offset).is_err() {
                if let Ok(meta) = seg.file.metadata() {
                    seg.len = meta.len();
                }
            }
            return Err(e);
        }
        seg.len += framed.len() as u64;
        inner.index.insert(
            key,
            Loc {
                seg: seg_idx,
                offset,
                len: framed.len() as u32,
            },
        );
        inner.order.push_back(key);
        inner.live_bytes += framed.len() as u64;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(&mut inner);
        // GC is NOT triggered here: the record is durable and indexed
        // at this point, and compaction is O(live bytes) — that cost
        // belongs to `maintain` (the server's background thread or
        // `dpc store compact`), never to the insert that tipped the
        // garbage threshold
        Ok(true)
    }

    fn remove(&self, key: GraphHash) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let Some(loc) = inner.index.remove(&key.0) else {
            return Ok(false);
        };
        inner.live_bytes -= loc.len as u64;
        // keep `order` naming exactly the indexed keys: compaction
        // walks it and expects every entry to resolve. Removal is the
        // rare quarantine path, so the linear scan is acceptable.
        inner.order.retain(|&k| k != key.0);
        self.dropped.fetch_add(1, Ordering::Relaxed);
        // the framed bytes stay in the segment file as garbage until
        // the next compaction; the index is what serves reads
        Ok(true)
    }

    fn maintain(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store poisoned");
        // tombstone-free GC: once dead bytes outweigh the live ones
        // (and a floor that keeps small stores from churning), fold
        // the live records into fresh segments
        if inner.garbage_bytes() > inner.live_bytes.max(1 << 20) {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.lock().expect("store poisoned").index.len() as u64
    }

    fn bytes(&self) -> u64 {
        self.inner.lock().expect("store poisoned").live_bytes
    }

    fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store poisoned");
        StoreStats {
            records: inner.index.len() as u64,
            live_bytes: inner.live_bytes,
            file_bytes: inner.file_bytes(),
            segments: inner.segments.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
        }
    }

    fn flush(&self) -> io::Result<()> {
        let inner = self.inner.lock().expect("store poisoned");
        for seg in &inner.segments {
            seg.file.sync_all()?;
        }
        Ok(())
    }

    fn iter(&self) -> Box<dyn Iterator<Item = io::Result<StoreRecord>> + '_> {
        let locs = self.loc_snapshot();
        Box::new(
            locs.into_iter()
                .map(move |(file, loc)| self.read_loc(&file, loc)),
        )
    }

    fn iter_newest_first(&self) -> Box<dyn Iterator<Item = io::Result<StoreRecord>> + '_> {
        // reverse the (cheap) location list, not the (expensive)
        // record reads — records are only read as the iterator is
        // consumed, so a budget-bounded warm load touches the disk
        // exactly as many times as it loads entries
        let locs = self.loc_snapshot();
        Box::new(
            locs.into_iter()
                .rev()
                .map(move |(file, loc)| self.read_loc(&file, loc)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::sample_entry;
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Unique scratch directory, removed on drop (std only — the
    /// workspace has no tempfile crate).
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU32 = AtomicU32::new(0);
            let path = std::env::temp_dir().join(format!(
                "dpc-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn records(n: usize) -> Vec<StoreRecord> {
        (0..n)
            .map(|i| sample_entry(14 + (i % 5) as u32, i as u64).record())
            .collect()
    }

    #[test]
    fn put_get_and_reopen() {
        let dir = TempDir::new("segstore");
        let recs = records(5);
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
            for r in &recs {
                assert!(store.put(r).unwrap());
                assert!(!store.put(r).unwrap(), "duplicate put is a no-op");
            }
            for r in &recs {
                assert_eq!(store.get(r.key(), &r.keyed).unwrap(), *r);
            }
            assert!(store.get(recs[0].key(), b"not the keyed bytes").is_none());
            store.flush().unwrap();
            let s = store.stats();
            assert_eq!(s.records, 5);
            assert_eq!(s.segments, 1);
            assert!(s.live_bytes > 0);
        }
        // reopen: the scan rebuilds the index from the files alone
        let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
        assert_eq!(store.len(), 5);
        for r in &recs {
            assert_eq!(store.get(r.key(), &r.keyed).unwrap(), *r, "byte-identical");
        }
        let order: Vec<_> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(order, recs, "iter preserves insertion order");
        let newest: Vec<_> = store.iter_newest_first().map(|r| r.unwrap()).collect();
        let reversed: Vec<_> = recs.iter().rev().cloned().collect();
        assert_eq!(newest, reversed, "iter_newest_first is the mirror");
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = TempDir::new("segtorn");
        let recs = records(3);
        let path = {
            let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
            for r in &recs {
                store.put(r).unwrap();
            }
            store.flush().unwrap();
            segment_path(&dir.0, 0)
        };
        // tear the last record: chop half of the file's final bytes
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
        assert_eq!(store.len(), 2, "torn record dropped");
        assert_eq!(store.get(recs[0].key(), &recs[0].keyed).unwrap(), recs[0]);
        assert!(store.get(recs[2].key(), &recs[2].keyed).is_none());
        // and the tail was truncated, so a new append reads back fine
        store.put(&recs[2]).unwrap();
        drop(store);
        let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(recs[2].key(), &recs[2].keyed).unwrap(), recs[2]);
    }

    #[test]
    fn corrupted_record_fails_crc_and_stops_the_scan() {
        let dir = TempDir::new("segcrc");
        let recs = records(3);
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
            for r in &recs {
                store.put(r).unwrap();
            }
            store.flush().unwrap();
        }
        // flip a byte inside the second record's body
        let path = segment_path(&dir.0, 0);
        let mut bytes = fs::read(&path).unwrap();
        let second_start = SEGMENT_MAGIC.len() + frame(&recs[0]).len();
        bytes[second_start + 10] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
        assert_eq!(store.len(), 1, "scan stops at the corrupt record");
        assert!(store.stats().read_errors >= 1);
        assert_eq!(store.get(recs[0].key(), &recs[0].keyed).unwrap(), recs[0]);
    }

    #[test]
    fn segments_roll_and_budget_drops_the_oldest() {
        let dir = TempDir::new("segbudget");
        let recs = records(8);
        let per = frame(&recs[0]).len() as u64;
        let cfg = SegmentConfig {
            dir: dir.0.clone(),
            segment_max_bytes: per * 2,
            byte_budget: Some(per * 4),
        };
        let store = SegmentStore::open(cfg.clone()).unwrap();
        for r in &recs {
            store.put(r).unwrap();
        }
        let s = store.stats();
        assert!(s.segments >= 2, "small segment_max forces rolls: {s:?}");
        assert!(s.dropped >= 1, "budget drops records: {s:?}");
        assert!(
            s.live_bytes <= per * 5,
            "live bytes within budget slack: {s:?}"
        );
        // the newest records survive, the oldest were dropped
        let last = recs.last().unwrap();
        assert!(store.get(last.key(), &last.keyed).is_some());
        assert!(store.get(recs[0].key(), &recs[0].keyed).is_none());
        // reopen under the same budget: scan + enforcement agree
        drop(store);
        let store = SegmentStore::open(cfg).unwrap();
        assert!(store.bytes() <= per * 5);
        assert!(store.get(last.key(), &last.keyed).is_some());
    }

    #[test]
    fn compaction_reclaims_dropped_records() {
        let dir = TempDir::new("segcompact");
        let recs = records(8);
        let per = frame(&recs[0]).len() as u64;
        let store = SegmentStore::open(SegmentConfig {
            dir: dir.0.clone(),
            segment_max_bytes: per * 3,
            byte_budget: Some(per * 3),
        })
        .unwrap();
        for r in &recs {
            store.put(r).unwrap();
        }
        let (before, after) = store.compact().unwrap();
        assert!(
            after < before,
            "compaction reclaims bytes: {before} -> {after}"
        );
        let s = store.stats();
        assert_eq!(
            s.file_bytes,
            s.live_bytes + s.segments * SEGMENT_MAGIC.len() as u64,
            "no garbage after compaction: {s:?}"
        );
        // survivors still readable, in order, and the store reopens
        let survivors: Vec<_> = store.iter().map(|r| r.unwrap()).collect();
        assert!(!survivors.is_empty());
        for r in &survivors {
            assert_eq!(store.get(r.key(), &r.keyed).unwrap(), *r);
        }
        drop(store);
        let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
        let reopened: Vec<_> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(reopened, survivors);
    }

    #[test]
    fn merge_unions_two_stores_and_deduplicates() {
        let dir_a = TempDir::new("segmerge-a");
        let dir_b = TempDir::new("segmerge-b");
        let recs = records(6);
        // a holds records 0..4, b holds 2..6: overlap of two
        let a = SegmentStore::open(SegmentConfig::new(&dir_a.0)).unwrap();
        for r in &recs[..4] {
            a.put(r).unwrap();
        }
        let b = SegmentStore::open(SegmentConfig::new(&dir_b.0)).unwrap();
        for r in &recs[2..] {
            b.put(r).unwrap();
        }
        let report = a.merge_from(&b).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.merged, 2, "only the records a did not hold");
        assert_eq!(report.duplicates, 2);
        assert_eq!(report.source_errors, 0);
        assert_eq!(a.len(), 6);
        // merged records are byte-identical to the source's
        for r in &recs {
            assert_eq!(a.get(r.key(), &r.keyed).unwrap(), *r);
        }
        // the union survives a restart and verifies clean
        a.flush().unwrap();
        drop(a);
        let a = SegmentStore::open(SegmentConfig::new(&dir_a.0)).unwrap();
        assert_eq!(a.len(), 6);
        assert!(a.verify(&SchemeRegistry::standard()).problems.is_empty());
        // merging the same source again is a pure no-op
        let again = a.merge_from(&b).unwrap();
        assert_eq!(again.merged, 0);
        assert_eq!(again.duplicates, 4);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn verify_flags_unknown_schemes_and_passes_clean_stores() {
        let dir = TempDir::new("segverify");
        let store = SegmentStore::open(SegmentConfig::new(&dir.0)).unwrap();
        for r in records(3) {
            store.put(&r).unwrap();
        }
        let report = store.verify(&SchemeRegistry::standard());
        assert_eq!(report.records, 3);
        assert_eq!(report.certified, 3);
        assert!(report.problems.is_empty(), "{:?}", report.problems);
        // a record whose scheme id is not registered is flagged
        let mut alien = sample_entry(16, 99).record();
        alien.keyed[0] = 0x7f; // scheme id 127
        store.put(&alien).unwrap();
        let report = store.verify(&SchemeRegistry::standard());
        assert_eq!(report.records, 4);
        assert_eq!(report.problems.len(), 1);
        assert!(report.problems[0].contains("scheme id 127"), "{report:?}");
    }
}
