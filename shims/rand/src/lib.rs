//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate stands in for the real `rand`. It implements the exact API
//! surface the workspace calls — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`] — over a deterministic xoshiro256**
//! generator seeded through SplitMix64 (the same seeding scheme the
//! real `rand` uses for small seeds). Streams differ from upstream
//! `rand`, which is fine: nothing in the workspace depends on specific
//! stream values, only on determinism per seed.

#![forbid(unsafe_code)]

/// Sources of uniformly distributed raw 64-bit values.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A type samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Lemire-style widening multiply keeps the modulo bias
                // far below anything observable at these span sizes.
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                if low == high {
                    return low;
                }
                let span = (high as u128) - (low as u128) + 1;
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Uniform sample over the whole domain.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

fn unit_f64(x: u64) -> f64 {
    // 53 high bits → uniform in [0, 1)
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// ChaCha12-backed `StdRng`; statistical quality is ample for
    /// experiment seeding and property tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `use rand::prelude::*` compatibility.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // degenerate inclusive range
        assert_eq!(rng.gen_range(5u64..=5), 5);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} not near 10k"
            );
        }
    }
}
