//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate stands in for the real `proptest`. Supported surface:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `fn name(arg in strategy, ...) { body }` items;
//! * range strategies (`low..high` over integers and floats);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: inputs are sampled from a fixed
//! deterministic stream (seeded per test by hashing the test name), and
//! failures are not shrunk — the failing sample is reported as-is.
//! Determinism is a feature here: CI failures always reproduce locally.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.start().to_owned()..=self.end().to_owned())
    }
}

/// Deterministic per-test generator: the test name is hashed (FNV-1a)
/// into the seed so distinct properties see distinct streams.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that samples its arguments `cases` times and runs the
/// body on every sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let run = || -> () { $body };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                        panic!(
                            "property {} failed at case {}/{} with inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// `use proptest::prelude::*` compatibility.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(n in 3u32..60, f in 0.0f64..1.0, k in 0usize..5) {
            prop_assert!((3..60).contains(&n));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(k < 5);
        }

        #[test]
        fn bodies_run_per_case(a in 1u32..10, b in 1u32..10) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn inner(x in 0u32..10) {
                    prop_assert!(x > 100, "always fails: x in 0..10");
                }
            }
            inner();
        });
        assert!(result.is_err());
    }

    #[test]
    fn per_test_streams_are_deterministic() {
        use rand::Rng;
        let mut a = rng_for("some::test");
        let mut b = rng_for("some::test");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = rng_for("other::test");
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }
}
