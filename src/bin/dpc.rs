//! `dpc` — command-line front end.
//!
//! Graphs are exchanged in graph6 format (nauty / House of Graphs).
//!
//! ```text
//! dpc check <graph6>        planarity verdict with a certificate
//!                           (faces/genus, or the Kuratowski witness)
//! dpc certify <graph6>      run the Theorem 1 PLS end to end
//! dpc embed <graph6>        print the rotation system and faces
//! dpc kuratowski <graph6>   extract a subdivided K5/K3,3
//! dpc gen <family> <n> [seed]   emit a generated graph as graph6
//!                           families: tree|cycle|grid|triangulation|
//!                           planar|outerplanar|k5sub|k33sub
//! ```

use dpc::core::harness::run_pls;
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::{generators, graph6, Graph};
use dpc::planar::kuratowski::extract_kuratowski;
use dpc::planar::lr::{planarity, Planarity};
use dpc::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&refs) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Dispatches a command line; returns the output text.
fn run(args: &[&str]) -> Result<String, String> {
    match args {
        ["check", s] => check(parse(s)?),
        ["certify", s] => certify(parse(s)?),
        ["embed", s] => embed(parse(s)?),
        ["kuratowski", s] => kuratowski(parse(s)?),
        ["gen", family, n, rest @ ..] => {
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            gen(family, n, seed)
        }
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: dpc check|certify|embed|kuratowski <graph6>  |  dpc gen <family> <n> [seed]".to_string()
}

fn parse(s: &str) -> Result<Graph, String> {
    graph6::decode(s).map_err(|e| format!("bad graph6 input: {e}"))
}

fn check(g: Graph) -> Result<String, String> {
    let mut out = format!(
        "graph: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    );
    match planarity(&g) {
        Planarity::Planar(rot) => {
            rot.euler_check().map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "PLANAR (certified: {} faces, Euler genus {})\n",
                rot.face_count(),
                rot.genus()
            ));
        }
        Planarity::NonPlanar => {
            let w = extract_kuratowski(&g).ok_or("inconsistent planarity result")?;
            out.push_str(&format!(
                "NOT PLANAR (certified: subdivided {:?} on {} edges, branch nodes {:?})\n",
                w.kind,
                w.edges.len(),
                w.branch_nodes
            ));
        }
    }
    Ok(out)
}

fn certify(g: Graph) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let scheme = PlanarityScheme::new();
    match run_pls(&scheme, &g) {
        Ok(outcome) => Ok(format!(
            "scheme: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nverdict: {}\n",
            scheme.name(),
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Err(e) => Ok(format!(
            "prover declines: {e}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n"
        )),
    }
}

fn embed(g: Graph) -> Result<String, String> {
    match planarity(&g) {
        Planarity::Planar(rot) => {
            let mut out = String::new();
            for v in 0..g.node_count() as u32 {
                out.push_str(&format!("rotation({v}): {:?}\n", rot.rotation(v)));
            }
            for (i, f) in rot.faces().iter().enumerate() {
                let cycle: Vec<u32> = f.iter().map(|&(u, _)| u).collect();
                out.push_str(&format!("face {i}: {cycle:?}\n"));
            }
            Ok(out)
        }
        Planarity::NonPlanar => Err("graph is not planar; no embedding".to_string()),
    }
}

fn kuratowski(g: Graph) -> Result<String, String> {
    match extract_kuratowski(&g) {
        Some(w) => {
            let mut out = format!(
                "{:?} subdivision, branch nodes {:?}\n",
                w.kind, w.branch_nodes
            );
            for (u, v) in &w.edges {
                out.push_str(&format!("  {u} -- {v}\n"));
            }
            Ok(out)
        }
        None => Err("graph is planar; no Kuratowski subgraph".to_string()),
    }
}

fn gen(family: &str, n: u32, seed: u64) -> Result<String, String> {
    let g = match family {
        "tree" => generators::random_tree(n, seed),
        "cycle" => generators::cycle(n.max(3)),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as u32;
            generators::grid(side.max(2), side.max(2))
        }
        "triangulation" => generators::stacked_triangulation(n.max(3), seed),
        "planar" => generators::random_planar(n.max(3), 0.5, seed),
        "outerplanar" => generators::random_maximal_outerplanar(n.max(3), seed),
        "k5sub" => generators::k5_subdivision(n),
        "k33sub" => generators::k33_subdivision(n),
        _ => return Err(format!("unknown family {family:?}")),
    };
    Ok(format!("{}\n", graph6::encode(&g)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_planar_and_nonplanar() {
        let out = run(&["check", "Bw"]).unwrap(); // K3
        assert!(out.contains("PLANAR"));
        let out = run(&["check", "D~{"]).unwrap(); // K5
        assert!(out.contains("NOT PLANAR"));
        assert!(out.contains("K5"));
    }

    #[test]
    fn certify_round_trip() {
        let g6 = run(&["gen", "triangulation", "40", "7"]).unwrap();
        let out = run(&["certify", g6.trim()]).unwrap();
        assert!(out.contains("all nodes accept"));
        assert!(out.contains("rounds: 1"));
        let out = run(&["certify", "D~{"]).unwrap();
        assert!(out.contains("prover declines"));
    }

    #[test]
    fn embed_lists_faces() {
        let out = run(&["embed", "Bw"]).unwrap(); // triangle: two faces
        assert_eq!(out.matches("face ").count(), 2);
        assert!(run(&["embed", "D~{"]).is_err());
    }

    #[test]
    fn kuratowski_extraction() {
        let g6 = run(&["gen", "k33sub", "2", "1"]).unwrap();
        let out = run(&["kuratowski", g6.trim()]).unwrap();
        assert!(out.contains("K33"));
        assert!(run(&["kuratowski", "Bw"]).is_err());
    }

    #[test]
    fn usage_and_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["gen", "nosuch", "5"]).is_err());
        assert!(run(&["check", "\u{1}"]).is_err());
    }
}
