//! Certification-service benches: end-to-end latency of cache hits vs
//! cache misses over real loopback TCP, and request throughput.
//!
//! The `cache` group is the serving-layer acceptance gate: on
//! `grid(100,100)` a repeated Certify must be served from the
//! content-addressed cache at least 10x faster than a fresh prove
//! (bypass flag) — in practice the gap is orders of magnitude, since
//! a hit memcpys a pre-encoded `Arc`-shared suffix while a miss runs
//! the full Theorem 1 prover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_graph::generators;
use dpc_service::client::Client;
use dpc_service::server::{serve, ServeConfig};
use dpc_service::wire::Response;

fn expect_certified(resp: Response) {
    match resp {
        Response::Certified { .. } => {}
        other => panic!("unexpected response: {other:?}"),
    }
}

fn bench_cache(c: &mut Criterion) {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let g = generators::grid(100, 100);
    // populate the cache once
    expect_certified(client.certify(&g, false).expect("warm-up certify"));

    let mut group = c.benchmark_group("service_cache");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("hit", "grid100"), |b| {
        b.iter(|| expect_certified(client.certify(&g, false).expect("hit")));
    });
    group.bench_function(BenchmarkId::new("miss_fresh_prove", "grid100"), |b| {
        b.iter(|| expect_certified(client.certify(&g, true).expect("bypass")));
    });
    group.finish();
    handle.shutdown();
}

fn bench_throughput(c: &mut Criterion) {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    // distinct small graphs: after the first pass all of them are hits,
    // so this measures the steady-state serving path
    let graphs: Vec<_> = (0..64u64)
        .map(|s| generators::stacked_triangulation(60, s))
        .collect();

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("pipelined_certify", graphs.len()),
        &graphs,
        |b, graphs| {
            b.iter(|| {
                for g in graphs {
                    client
                        .send(&dpc_service::Request::Certify {
                            graph: g.clone(),
                            bypass_cache: false,
                            cached_only: false,
                            summary: false,
                            scheme: dpc_service::SchemeId::PLANARITY,
                        })
                        .expect("send");
                }
                for _ in graphs {
                    expect_certified(client.recv().expect("recv"));
                }
            });
        },
    );
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_cache, bench_throughput);
criterion_main!(benches);
