//! The folklore scheme certifying **non**-planarity (Section 2).
//!
//! By Kuratowski's theorem a non-planar graph contains a subdivided `K5`
//! or `K3,3`. The prover extracts one
//! ([`dpc_planar::kuratowski::extract_kuratowski`]) and certifies it:
//!
//! * every certificate carries the kind (`K5`/`K3,3`) and the
//!   identifiers of the 5 or 6 **branch nodes** (agreement + connectivity
//!   makes these globally consistent);
//! * a node on the subdivision carries its *role*: `Branch(label)` with
//!   the list of its incident branch paths (label pair + the identifier
//!   of the first node on the path), or `Internal(path, pos, prev, next)`
//!   — chain pointers that are locally checkable hop by hop;
//! * a spanning tree rooted at a branch node proves the witness exists
//!   (without it, a certificate claiming "no witness nodes anywhere"
//!   would be vacuously accepted).
//!
//! All of this is `O(log n)` bits per node.

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use crate::schemes::tree_base::{build_tree_certs, check_tree, TreeCert};
use dpc_graph::minors::KuratowskiKind;
use dpc_graph::{Graph, NodeId};
use dpc_planar::kuratowski::extract_kuratowski;
use dpc_runtime::bits::{BitReader, BitWriter, DecodeError};
use dpc_runtime::{NodeCtx, Payload};
use std::collections::HashMap;

/// A label pair `(a, b)`, `a < b`, naming one branch path.
type Pair = (u8, u8);

#[derive(Debug, Clone, PartialEq, Eq)]
struct PathEnd {
    path: Pair,
    /// Identifier of the adjacent node on this path.
    nbr_id: u64,
    /// True if the path has length 1, i.e. the neighbor is the far
    /// branch node itself.
    nbr_is_far: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Role {
    /// Not on the witness.
    Off,
    /// Branch node with the given label and incident paths.
    Branch { label: u8, ends: Vec<PathEnd> },
    /// Internal node of a branch path, at 1-based position `pos`
    /// counting from the smaller-label endpoint.
    Internal {
        path: Pair,
        pos: u64,
        prev_id: u64,
        next_id: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct NpCert {
    tree: TreeCert,
    is_k5: bool,
    /// Identifiers of the branch nodes, indexed by label (5 or 6).
    branch_ids: Vec<u64>,
    role: Role,
}

fn write_pair(w: &mut BitWriter, p: Pair) {
    w.write_bits(p.0 as u64, 3);
    w.write_bits(p.1 as u64, 3);
}

fn read_pair(r: &mut BitReader<'_>) -> Result<Pair, DecodeError> {
    Ok((r.read_bits(3)? as u8, r.read_bits(3)? as u8))
}

impl NpCert {
    fn encode(&self) -> Payload {
        let mut w = BitWriter::new();
        self.tree.encode(&mut w);
        w.write_bool(self.is_k5);
        for &b in &self.branch_ids {
            w.write_varint(b);
        }
        match &self.role {
            Role::Off => w.write_bits(0, 2),
            Role::Branch { label, ends } => {
                w.write_bits(1, 2);
                w.write_bits(*label as u64, 3);
                w.write_varint(ends.len() as u64);
                for e in ends {
                    write_pair(&mut w, e.path);
                    w.write_varint(e.nbr_id);
                    w.write_bool(e.nbr_is_far);
                }
            }
            Role::Internal {
                path,
                pos,
                prev_id,
                next_id,
            } => {
                w.write_bits(2, 2);
                write_pair(&mut w, *path);
                w.write_varint(*pos);
                w.write_varint(*prev_id);
                w.write_varint(*next_id);
            }
        }
        Payload::from_writer(w)
    }

    fn decode(p: &Payload) -> Option<NpCert> {
        let mut r = p.reader();
        let tree = TreeCert::decode(&mut r).ok()?;
        let is_k5 = r.read_bool().ok()?;
        let nb = if is_k5 { 5 } else { 6 };
        let mut branch_ids = Vec::with_capacity(nb);
        for _ in 0..nb {
            branch_ids.push(r.read_varint().ok()?);
        }
        let role = match r.read_bits(2).ok()? {
            0 => Role::Off,
            1 => {
                let label = r.read_bits(3).ok()? as u8;
                let cnt = r.read_varint().ok()?;
                if cnt > 6 {
                    return None;
                }
                let mut ends = Vec::with_capacity(cnt as usize);
                for _ in 0..cnt {
                    ends.push(PathEnd {
                        path: read_pair(&mut r).ok()?,
                        nbr_id: r.read_varint().ok()?,
                        nbr_is_far: r.read_bool().ok()?,
                    });
                }
                Role::Branch { label, ends }
            }
            2 => Role::Internal {
                path: read_pair(&mut r).ok()?,
                pos: r.read_varint().ok()?,
                prev_id: r.read_varint().ok()?,
                next_id: r.read_varint().ok()?,
            },
            _ => return None,
        };
        (r.remaining() == 0).then_some(NpCert {
            tree,
            is_k5,
            branch_ids,
            role,
        })
    }
}

/// Expected partner labels of a branch with label `l`.
fn partners(is_k5: bool, l: u8) -> Vec<u8> {
    if is_k5 {
        (0..5).filter(|&x| x != l).collect()
    } else if l < 3 {
        vec![3, 4, 5]
    } else {
        vec![0, 1, 2]
    }
}

/// PLS for the class of **non-planar** graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonPlanarityScheme;

impl NonPlanarityScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        NonPlanarityScheme
    }
}

impl ProofLabelingScheme for NonPlanarityScheme {
    fn name(&self) -> &'static str {
        "non-planarity"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        let w = extract_kuratowski(g).ok_or(ProveError::NotInClass("non-planar graphs"))?;
        let is_k5 = w.kind == KuratowskiKind::K5;
        // adjacency of the witness subgraph
        let mut wadj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(u, v) in &w.edges {
            wadj.entry(u).or_default().push(v);
            wadj.entry(v).or_default().push(u);
        }
        // label the branch nodes
        let mut branches = w.branch_nodes.clone();
        branches.sort_unstable();
        let mut label_of: HashMap<NodeId, u8> = HashMap::new();
        if is_k5 {
            for (i, &b) in branches.iter().enumerate() {
                label_of.insert(b, i as u8);
            }
        } else {
            // bipartition: walk each path from branches[0] to find partners
            let far_of = |start: NodeId, first: NodeId| -> NodeId {
                let mut prev = start;
                let mut cur = first;
                while !branches.contains(&cur) {
                    let nxt = wadj[&cur].iter().copied().find(|&x| x != prev).unwrap();
                    prev = cur;
                    cur = nxt;
                }
                cur
            };
            let b0 = branches[0];
            let side_b: Vec<NodeId> = wadj[&b0].iter().map(|&f| far_of(b0, f)).collect();
            let mut a: Vec<NodeId> = branches
                .iter()
                .copied()
                .filter(|b| !side_b.contains(b))
                .collect();
            let mut b: Vec<NodeId> = side_b.clone();
            a.sort_unstable();
            b.sort_unstable();
            b.dedup();
            assert_eq!(a.len(), 3, "K3,3 bipartition");
            assert_eq!(b.len(), 3, "K3,3 bipartition");
            for (i, &x) in a.iter().enumerate() {
                label_of.insert(x, i as u8);
            }
            for (i, &x) in b.iter().enumerate() {
                label_of.insert(x, (3 + i) as u8);
            }
        }
        let nlabels = if is_k5 { 5 } else { 6 };
        let mut branch_ids = vec![0u64; nlabels];
        for (&node, &l) in &label_of {
            branch_ids[l as usize] = g.id_of(node);
        }
        // walk every path from its smaller-label endpoint; assign roles
        let mut roles: Vec<Role> = vec![Role::Off; g.node_count()];
        let mut ends_of: HashMap<NodeId, Vec<PathEnd>> = HashMap::new();
        for (&bu, &lu) in &label_of {
            for &first in &wadj[&bu] {
                // walk to the far branch
                let mut chain = vec![bu, first];
                while !label_of.contains_key(chain.last().unwrap()) {
                    let cur = *chain.last().unwrap();
                    let prev = chain[chain.len() - 2];
                    let nxt = wadj[&cur].iter().copied().find(|&x| x != prev).unwrap();
                    chain.push(nxt);
                }
                let bv = *chain.last().unwrap();
                let lv = label_of[&bv];
                if lu > lv {
                    continue; // walk each path once, from the smaller label
                }
                let pair: Pair = (lu, lv);
                let len = chain.len() - 1;
                ends_of.entry(bu).or_default().push(PathEnd {
                    path: pair,
                    nbr_id: g.id_of(chain[1]),
                    nbr_is_far: len == 1,
                });
                ends_of.entry(bv).or_default().push(PathEnd {
                    path: pair,
                    nbr_id: g.id_of(chain[len - 1]),
                    nbr_is_far: len == 1,
                });
                for (pos, &node) in chain.iter().enumerate().take(len).skip(1) {
                    roles[node as usize] = Role::Internal {
                        path: pair,
                        pos: pos as u64,
                        prev_id: g.id_of(chain[pos - 1]),
                        next_id: g.id_of(chain[pos + 1]),
                    };
                }
            }
        }
        for (&node, &l) in &label_of {
            let mut ends = ends_of.remove(&node).unwrap();
            ends.sort_by_key(|e| e.path);
            roles[node as usize] = Role::Branch { label: l, ends };
        }
        // spanning tree rooted at a branch node
        let root = branches[0];
        let tree = dpc_graph::traversal::bfs_spanning_tree(g, root);
        let tree_certs = build_tree_certs(g, &tree);
        let certs = g
            .nodes()
            .map(|v| {
                NpCert {
                    tree: tree_certs[v as usize],
                    is_k5,
                    branch_ids: branch_ids.clone(),
                    role: roles[v as usize].clone(),
                }
                .encode()
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        verify_impl(ctx, own, neighbors).is_some()
    }
}

fn verify_impl(ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> Option<()> {
    let own = NpCert::decode(own)?;
    let nbs: Vec<NpCert> = neighbors
        .iter()
        .map(NpCert::decode)
        .collect::<Option<Vec<_>>>()?;
    // spanning tree + agreement on kind and branch ids
    let tree_nbs: Vec<TreeCert> = nbs.iter().map(|c| c.tree).collect();
    let info = check_tree(ctx, &own.tree, &tree_nbs)?;
    for nb in &nbs {
        if nb.is_k5 != own.is_k5 || nb.branch_ids != own.branch_ids {
            return None;
        }
    }
    // distinct branch identifiers
    {
        let mut ids = own.branch_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != own.branch_ids.len() {
            return None;
        }
    }
    // the root of the spanning tree must be a branch node
    if info.parent_port.is_none() && !matches!(own.role, Role::Branch { .. }) {
        return None;
    }
    let is_k5 = own.is_k5;
    let port_of_id = |id: u64| ctx.neighbor_ids.iter().position(|&x| x == id);
    match &own.role {
        Role::Off => Some(()),
        Role::Branch { label, ends } => {
            let l = *label;
            if l as usize >= own.branch_ids.len() || own.branch_ids[l as usize] != ctx.id {
                return None;
            }
            // exactly one path per partner label
            let mut expected: Vec<Pair> = partners(is_k5, l)
                .into_iter()
                .map(|x| (l.min(x), l.max(x)))
                .collect();
            expected.sort_unstable();
            let mut got: Vec<Pair> = ends.iter().map(|e| e.path).collect();
            got.sort_unstable();
            if got != expected {
                return None;
            }
            for e in ends {
                let p = port_of_id(e.nbr_id)?;
                let far_label = if e.path.0 == l { e.path.1 } else { e.path.0 };
                if e.nbr_is_far {
                    // direct edge to the far branch node
                    match &nbs[p].role {
                        Role::Branch {
                            label: fl,
                            ends: fe,
                        } => {
                            if *fl != far_label {
                                return None;
                            }
                            let back = fe.iter().find(|x| x.path == e.path)?;
                            if !back.nbr_is_far || back.nbr_id != ctx.id {
                                return None;
                            }
                        }
                        _ => return None,
                    }
                } else {
                    match &nbs[p].role {
                        Role::Internal {
                            path,
                            pos,
                            prev_id,
                            next_id,
                        } => {
                            if *path != e.path {
                                return None;
                            }
                            if e.path.0 == l {
                                // I am the start: neighbor is position 1
                                if *pos != 1 || *prev_id != ctx.id {
                                    return None;
                                }
                            } else {
                                // I am the end: neighbor points forward to me
                                if *next_id != ctx.id {
                                    return None;
                                }
                            }
                        }
                        _ => return None,
                    }
                }
            }
            Some(())
        }
        Role::Internal {
            path,
            pos,
            prev_id,
            next_id,
        } => {
            let (a, b) = *path;
            let ok_pair = if is_k5 {
                a < b && b < 5
            } else {
                a < 3 && (3..6).contains(&b)
            };
            if !ok_pair || *pos < 1 || prev_id == next_id {
                return None;
            }
            let pp = port_of_id(*prev_id)?;
            let np = port_of_id(*next_id)?;
            // previous hop
            match &nbs[pp].role {
                Role::Branch { label, ends } => {
                    if *label != a || *pos != 1 {
                        return None;
                    }
                    let back = ends.iter().find(|x| x.path == *path)?;
                    if back.nbr_id != ctx.id || back.nbr_is_far {
                        return None;
                    }
                }
                Role::Internal {
                    path: p2,
                    pos: pos2,
                    next_id: nx2,
                    ..
                } => {
                    if *p2 != *path || *pos2 + 1 != *pos || *nx2 != ctx.id {
                        return None;
                    }
                }
                Role::Off => return None,
            }
            // next hop
            match &nbs[np].role {
                Role::Branch { label, ends } => {
                    if *label != b {
                        return None;
                    }
                    let back = ends.iter().find(|x| x.path == *path)?;
                    if back.nbr_id != ctx.id || back.nbr_is_far {
                        return None;
                    }
                }
                Role::Internal {
                    path: p2,
                    pos: pos2,
                    prev_id: pv2,
                    ..
                } => {
                    if *p2 != *path || *pos2 != *pos + 1 || *pv2 != ctx.id {
                        return None;
                    }
                }
                Role::Off => return None,
            }
            Some(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_kuratowski_graphs() {
        for g in [
            generators::complete(5),
            generators::complete_bipartite(3, 3),
            generators::k5_subdivision(2),
            generators::k33_subdivision(3),
            generators::complete(6),
            generators::hypercube(4),
        ] {
            let out = run_pls(&NonPlanarityScheme, &g).unwrap();
            assert!(out.all_accept(), "{g:?}");
            assert_eq!(out.rounds, 1);
        }
    }

    #[test]
    fn accepts_planted_witnesses() {
        for seed in 0..4u64 {
            let g = generators::planted_kuratowski(30, seed % 2 == 0, 2, seed);
            let out = run_pls(&NonPlanarityScheme, &g).unwrap();
            assert!(out.all_accept(), "seed {seed}");
            assert!(out.max_cert_bits < 600);
        }
    }

    #[test]
    fn prover_declines_planar() {
        assert_eq!(
            NonPlanarityScheme
                .prove(&generators::grid(4, 4))
                .unwrap_err(),
            ProveError::NotInClass("non-planar graphs")
        );
    }

    #[test]
    fn forged_witness_on_planar_graph_rejected() {
        // replay certificates of a non-planar graph onto a planar graph of
        // the same size: claims reference edges that do not exist
        let bad = generators::k5_subdivision(1); // 15 nodes
        let a = NonPlanarityScheme.prove(&bad).unwrap();
        let planar = generators::shuffle_ids(&generators::stacked_triangulation(15, 3), 1);
        let out = run_with_assignment(&NonPlanarityScheme, &planar, &a);
        assert!(!out.all_accept());
    }

    #[test]
    fn role_tampering_rejected() {
        let g = generators::k33_subdivision(2);
        let honest = NonPlanarityScheme.prove(&g).unwrap();
        // strip the role of an internal node (first node with Internal role)
        for v in 0..g.node_count() {
            let mut c = NpCert::decode(&honest.certs[v]).unwrap();
            if matches!(c.role, Role::Internal { .. }) {
                c.role = Role::Off;
                let mut forged = honest.clone();
                forged.certs[v] = c.encode();
                let out = run_with_assignment(&NonPlanarityScheme, &g, &forged);
                assert!(!out.all_accept(), "chain break at node {v} must be caught");
                return;
            }
        }
        panic!("no internal node found");
    }

    #[test]
    fn branch_id_disagreement_rejected() {
        let g = generators::complete(5);
        let honest = NonPlanarityScheme.prove(&g).unwrap();
        let mut c = NpCert::decode(&honest.certs[2]).unwrap();
        c.branch_ids[0] ^= 1;
        let mut forged = honest;
        forged.certs[2] = c.encode();
        let out = run_with_assignment(&NonPlanarityScheme, &g, &forged);
        assert!(!out.all_accept());
    }

    #[test]
    fn garbage_rejected() {
        let g = generators::complete(5);
        let out = run_with_assignment(&NonPlanarityScheme, &g, &Assignment::empty(5));
        assert_eq!(out.reject_count(), 5);
    }
}
