//! Service counters, per-stage latency histograms, the slow-request
//! log, and the Prometheus text renderer.
//!
//! Everything on the hot path is lock-free (`AtomicU64` with relaxed
//! ordering — counters need atomicity, not ordering) so requests
//! never serialize on a metrics mutex. Latencies go into a
//! power-of-two histogram: bucket `i` counts requests that took
//! `[2^i, 2^(i+1))` microseconds, and quantiles are read back as the
//! lower bound of the bucket where the cumulative count crosses the
//! target — integer in, integer out, no floating-point accumulation.
//!
//! Beyond the end-to-end latency histogram, every request is traced
//! through five pipeline stages ([`STAGE_NAMES`]): a [`Trace`] is
//! stamped when the frame is decoded and rides with the request to
//! the final write flush, depositing one observation per stage into
//! [`StageMetrics`]. Requests whose stage total crosses the server's
//! `--slow-ms` threshold additionally leave a full breakdown in the
//! capped [`SlowLog`]. The only lock in this module guards that log,
//! and it is touched exclusively by slow requests and `SlowLog`
//! snapshots.

use dpc_runtime::{get_uvarint, put_uvarint, DecodeError};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets (covers up to ~2^39 µs).
pub const LATENCY_BUCKETS: usize = 40;

/// Lock-free latency histogram with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Immutable bucket counts, as shipped in a Stats response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts observations in `[2^i, 2^(i+1))` µs
    /// (bucket 0 covers `[0, 2)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (0 < q <= 1) in microseconds: the lower bound
    /// of the bucket where the cumulative count reaches `ceil(q * n)`.
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        1u64 << (self.buckets.len() - 1).min(63)
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Adds another histogram bucket-wise (the shorter side is
    /// zero-padded). Power-of-two buckets make fleet aggregation
    /// exact: the merged quantiles are the quantiles of the pooled
    /// observations, bucket-resolution included.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Bucket-wise saturating subtraction of an earlier snapshot of
    /// the *same* histogram: the observations recorded between the
    /// two snapshots. This is what `dpc top` renders per poll
    /// interval.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &b)| b.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// The five traced pipeline stages, in request order. Index `i` here
/// matches field order in [`StageMetrics`] / [`StageSnapshot`] and
/// the v5 wire order.
pub const STAGE_NAMES: [&str; 5] = [
    "read_decode",
    "queue_wait",
    "service",
    "reorder_wait",
    "write_flush",
];

/// Lock-free per-stage latency histograms, one per traced stage.
#[derive(Debug, Default)]
pub struct StageMetrics {
    /// Frame bytes available → request decoded.
    pub read_decode: LatencyHistogram,
    /// Enqueued → dequeued by a worker.
    pub queue_wait: LatencyHistogram,
    /// Dequeued → response body built (cache/store lookup, batch,
    /// prove).
    pub service: LatencyHistogram,
    /// Response ready → eligible to write (pipelined predecessors
    /// flushed first).
    pub reorder_wait: LatencyHistogram,
    /// Write-eligible → frame fully handed to the kernel.
    pub write_flush: LatencyHistogram,
}

impl StageMetrics {
    /// A point-in-time copy of every stage histogram.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            read_decode: self.read_decode.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            service: self.service.snapshot(),
            reorder_wait: self.reorder_wait.snapshot(),
            write_flush: self.write_flush.snapshot(),
        }
    }
}

/// Immutable per-stage histograms, as shipped in the Stats v5 tail.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    /// Frame bytes available → request decoded.
    pub read_decode: HistogramSnapshot,
    /// Enqueued → dequeued by a worker.
    pub queue_wait: HistogramSnapshot,
    /// Dequeued → response body built.
    pub service: HistogramSnapshot,
    /// Response ready → eligible to write.
    pub reorder_wait: HistogramSnapshot,
    /// Write-eligible → frame fully handed to the kernel.
    pub write_flush: HistogramSnapshot,
}

impl StageSnapshot {
    /// The stages paired with their [`STAGE_NAMES`] labels, in wire
    /// order.
    pub fn named(&self) -> [(&'static str, &HistogramSnapshot); 5] {
        [
            (STAGE_NAMES[0], &self.read_decode),
            (STAGE_NAMES[1], &self.queue_wait),
            (STAGE_NAMES[2], &self.service),
            (STAGE_NAMES[3], &self.reorder_wait),
            (STAGE_NAMES[4], &self.write_flush),
        ]
    }

    /// Adds another node's stage histograms bucket-wise.
    pub fn absorb(&mut self, other: &StageSnapshot) {
        self.read_decode.absorb(&other.read_decode);
        self.queue_wait.absorb(&other.queue_wait);
        self.service.absorb(&other.service);
        self.reorder_wait.absorb(&other.reorder_wait);
        self.write_flush.absorb(&other.write_flush);
    }

    /// Stage-wise [`HistogramSnapshot::diff`] against an earlier
    /// snapshot.
    pub fn diff(&self, earlier: &StageSnapshot) -> StageSnapshot {
        StageSnapshot {
            read_decode: self.read_decode.diff(&earlier.read_decode),
            queue_wait: self.queue_wait.diff(&earlier.queue_wait),
            service: self.service.diff(&earlier.service),
            reorder_wait: self.reorder_wait.diff(&earlier.reorder_wait),
            write_flush: self.write_flush.diff(&earlier.write_flush),
        }
    }
}

/// One request's identity and accumulated stage timings, stamped at
/// decode and threaded along the reply path to the final write.
/// Microsecond stage fields are filled in as each stage completes;
/// the reorder/write stages are measured (and the slow-log decision
/// made) by whichever component performs the write.
#[derive(Debug, Clone, Copy)]
pub struct Trace {
    /// `connection_id << 32 | sequence` — unique per request within
    /// one server process.
    pub trace_id: u64,
    /// Request wire tag (`wire::REQ_*`).
    pub kind: u8,
    /// Scheme wire id, or 0 for requests that carry no scheme.
    pub scheme: u16,
    /// When the request frame was decoded (birth of the trace).
    pub born: Instant,
    /// Frame bytes available → decoded.
    pub read_decode_us: u64,
    /// Enqueued → dequeued.
    pub queue_wait_us: u64,
    /// Dequeued → response built.
    pub service_us: u64,
}

impl Trace {
    /// A fresh trace born now, with all stage timings zero.
    pub fn new(trace_id: u64, kind: u8, scheme: u16) -> Trace {
        Trace {
            trace_id,
            kind,
            scheme,
            born: Instant::now(),
            read_decode_us: 0,
            queue_wait_us: 0,
            service_us: 0,
        }
    }
}

/// Upper bound on retained slow-request entries; the oldest entry is
/// dropped when a new one arrives at capacity.
pub const SLOW_LOG_CAP: usize = 128;

/// One slow request's full stage breakdown, as shipped in a SlowLog
/// response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlowLogEntry {
    /// `connection_id << 32 | sequence` of the offending request.
    pub trace_id: u64,
    /// Request wire tag (`wire::REQ_*`).
    pub kind: u8,
    /// Scheme wire id, or 0 for requests that carry no scheme.
    pub scheme: u16,
    /// How long ago the entry was recorded, stamped when the log is
    /// snapshotted for a response.
    pub age_us: u64,
    /// Sum of the five stage timings.
    pub total_us: u64,
    /// Frame bytes available → decoded.
    pub read_decode_us: u64,
    /// Enqueued → dequeued.
    pub queue_wait_us: u64,
    /// Dequeued → response built.
    pub service_us: u64,
    /// Response built → eligible to write.
    pub reorder_wait_us: u64,
    /// Write-eligible → flushed to the kernel.
    pub write_flush_us: u64,
}

impl SlowLogEntry {
    /// Human label for the request tag (mirrors `wire::REQ_*`).
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            1 => "certify",
            2 => "check",
            3 => "gen",
            4 => "soundness",
            5 => "stats",
            6 => "slowlog",
            7 => "storelist",
            8 => "storepush",
            9 => "chunkbegin",
            10 => "chunk",
            11 => "chunkend",
            12 => "ibegin",
            13 => "irespond",
            14 => "audit",
            _ => "?",
        }
    }

    /// Appends the wire encoding of one slow-log entry (10 uvarints).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.trace_id,
            self.kind as u64,
            self.scheme as u64,
            self.age_us,
            self.total_us,
            self.read_decode_us,
            self.queue_wait_us,
            self.service_us,
            self.reorder_wait_us,
            self.write_flush_us,
        ] {
            put_uvarint(out, v);
        }
    }

    /// Decodes one entry from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut &[u8]) -> Result<SlowLogEntry, DecodeError> {
        let trace_id = get_uvarint(buf)?;
        let kind = get_uvarint(buf)?;
        let scheme = get_uvarint(buf)?;
        if kind > u8::MAX as u64 || scheme > u16::MAX as u64 {
            return Err(DecodeError::OutOfBits);
        }
        let mut e = SlowLogEntry {
            trace_id,
            kind: kind as u8,
            scheme: scheme as u16,
            ..SlowLogEntry::default()
        };
        for field in [
            &mut e.age_us,
            &mut e.total_us,
            &mut e.read_decode_us,
            &mut e.queue_wait_us,
            &mut e.service_us,
            &mut e.reorder_wait_us,
            &mut e.write_flush_us,
        ] {
            *field = get_uvarint(buf)?;
        }
        Ok(e)
    }
}

/// Capped in-memory log of requests whose stage total crossed the
/// server's slow threshold. The mutex is off the fast path: only
/// slow requests and `dpc slowlog` snapshots take it.
#[derive(Debug)]
pub struct SlowLog {
    threshold_us: u64,
    entries: Mutex<VecDeque<(Instant, SlowLogEntry)>>,
}

impl SlowLog {
    /// A log that records requests slower than `threshold_us`
    /// (0 disables recording entirely).
    pub fn new(threshold_us: u64) -> SlowLog {
        SlowLog {
            threshold_us,
            entries: Mutex::new(VecDeque::with_capacity(8)),
        }
    }

    /// The configured threshold in microseconds (0 = disabled).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Records one slow request, evicting the oldest entry at
    /// capacity. `entry.age_us` is ignored; age is stamped at
    /// snapshot time.
    pub fn record(&self, entry: SlowLogEntry) {
        if self.threshold_us == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() >= SLOW_LOG_CAP {
            entries.pop_front();
        }
        entries.push_back((Instant::now(), entry));
    }

    /// The retained entries, newest first, with `age_us` stamped.
    pub fn snapshot(&self) -> Vec<SlowLogEntry> {
        let entries = self.entries.lock().expect("slow log poisoned");
        entries
            .iter()
            .rev()
            .map(|(at, e)| {
                let mut e = e.clone();
                e.age_us = at.elapsed().as_micros().min(u64::MAX as u128) as u64;
                e
            })
            .collect()
    }
}

/// Live counters of one registered scheme (indexed by registry slot).
#[derive(Debug, Default)]
pub struct SchemeMetrics {
    /// Certify requests routed to this scheme.
    pub certify: AtomicU64,
    /// Certificate-cache hits under this scheme's keys.
    pub hits: AtomicU64,
    /// Certificate-cache misses under this scheme's keys.
    pub misses: AtomicU64,
    /// Honest-prover executions for this scheme.
    pub proves: AtomicU64,
    /// Certify latency under this scheme (queue + service).
    pub latency: LatencyHistogram,
}

/// Live server counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Certify requests received.
    pub certify: AtomicU64,
    /// Check requests received.
    pub check: AtomicU64,
    /// Gen requests received.
    pub gen: AtomicU64,
    /// Soundness probes received.
    pub soundness: AtomicU64,
    /// Stats requests received.
    pub stats: AtomicU64,
    /// Malformed requests answered with an error.
    pub errors: AtomicU64,
    /// Worker batches that contained more than one certify request.
    pub batches: AtomicU64,
    /// Certify requests that rode in a multi-request batch.
    pub batched_certifies: AtomicU64,
    /// Honest-prover executions (cache misses + bypasses).
    pub proves: AtomicU64,
    /// End-to-end request latency (queue + service).
    pub latency: LatencyHistogram,
    /// Per-scheme counters, one slot per registry entry.
    pub per_scheme: Vec<SchemeMetrics>,
    /// Currently open connections (gauge: incremented on accept,
    /// decremented on close).
    pub conns_open: AtomicU64,
    /// Connections accepted since boot.
    pub conns_accepted: AtomicU64,
    /// Accept attempts that returned `EAGAIN` — one per reactor
    /// accept burst, so the ratio to `conns_accepted` reads as
    /// connections-per-wakeup (always 0 in threaded mode, whose
    /// accept call blocks).
    pub accept_eagain: AtomicU64,
    /// Connections closed by the idle-connection timeout.
    pub idle_timeouts: AtomicU64,
    /// Per-stage request latency (v5).
    pub stages: StageMetrics,
    /// Jobs that found the worker queue full and parked on their
    /// connection instead (v5; reactor only — the threaded reader
    /// blocks in `push`).
    pub queue_full_stalls: AtomicU64,
    /// Times a stalled connection's read interest was dropped so the
    /// kernel buffers the back-pressure (v5).
    pub read_interest_drops: AtomicU64,
    /// Times a parked job finally enqueued and read interest was
    /// restored (v5).
    pub read_interest_restores: AtomicU64,
    /// Times a worker completion had to wake an event loop via its
    /// eventfd (v5) — completions that landed while the loop was
    /// already awake don't count, so the ratio to responses reads as
    /// wakeups-per-response.
    pub inbox_wakeups: AtomicU64,
    /// Records absorbed from StorePush frames (v6) — replica writes,
    /// read-repair backfills, and peer anti-entropy all land here.
    pub repl_push_merged: AtomicU64,
    /// StorePush records already present, deduplicated by content
    /// key (v6).
    pub repl_push_duplicates: AtomicU64,
    /// Records this node pushed to peers that were missing them (v6;
    /// anti-entropy sweep client side).
    pub repl_pushed: AtomicU64,
    /// Completed anti-entropy sweep rounds over the peer set (v6).
    pub repl_sweeps: AtomicU64,
    /// Peer exchanges that failed mid-sweep (dial or wire errors;
    /// v6). The sweep retries on its next round, so a transient
    /// non-zero value here is self-healing.
    pub repl_errors: AtomicU64,
    /// Chunked graph-upload sessions opened (v7).
    pub chunk_sessions: AtomicU64,
    /// GraphChunk frames accepted into a session (v7).
    pub chunk_chunks: AtomicU64,
    /// Payload bytes streamed through chunk sessions (v7).
    pub chunk_bytes: AtomicU64,
    /// Chunk sessions aborted: replaced by a new Begin, killed by a
    /// protocol error, or abandoned when the connection closed (v7).
    pub chunk_aborts: AtomicU64,
    /// High-water mark of the stream decoder's carry buffer in bytes
    /// (v7 max-gauge, `fetch_max`). Bounded by one varint (< 10), so
    /// this *is* the proof that reassembly memory is O(chunk), not
    /// O(graph encoding).
    pub chunk_carry_peak: AtomicU64,
    /// Graph components this node delegated to ring peers during a
    /// composite summary certify (v7).
    pub delegated_proves: AtomicU64,
    /// Delegations that failed (peer unreachable, broken stream, or
    /// error response) and fell back to a local prove (v7).
    pub delegated_errors: AtomicU64,
    /// Component outcomes folded into one merged Outcome (v7; one per
    /// composite certify, not per component).
    pub outcome_merges: AtomicU64,
    /// Completed audit sweeps over the stored certificates (v8).
    pub audit_sweeps: AtomicU64,
    /// Stored records sampled by the auditor (v8).
    pub audit_sampled: AtomicU64,
    /// Sampled records whose bytes were CRC-valid but failed
    /// re-verification — fingerprint mismatch, outcome inconsistency,
    /// or a per-node verifier reject (v8).
    pub audit_failed: AtomicU64,
    /// Failed records actually purged from both cache tiers (v8;
    /// tracks `audit_failed` unless a quarantine itself errored).
    pub audit_quarantined: AtomicU64,
    /// Interactive (dMAM) wire sessions opened (v8).
    pub interactive_sessions: AtomicU64,
    /// Interactive verdicts that rejected at least one node (v8).
    pub interactive_rejects: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters with no per-scheme slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh zeroed counters with one per-scheme slot per registry
    /// entry.
    pub fn with_scheme_slots(slots: usize) -> Self {
        Metrics {
            per_scheme: (0..slots).map(|_| SchemeMetrics::default()).collect(),
            ..Metrics::default()
        }
    }
}

/// A point-in-time copy of one scheme's counters, as shipped in the
/// per-scheme table of a Stats response.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemeStats {
    /// Stable wire id of the scheme.
    pub id: u16,
    /// Scheme name, echoed by the server.
    pub name: String,
    /// Certify requests routed to the scheme.
    pub certify: u64,
    /// Cache hits under the scheme's keys.
    pub hits: u64,
    /// Cache misses under the scheme's keys.
    pub misses: u64,
    /// Honest-prover executions for the scheme.
    pub proves: u64,
    /// Certify latency histogram of the scheme.
    pub latency: HistogramSnapshot,
}

/// Upper bound on per-scheme table rows accepted on decode.
const MAX_SCHEME_ROWS: usize = 4096;

fn encode_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_uvarint(out, h.buckets.len() as u64);
    for &b in &h.buckets {
        put_uvarint(out, b);
    }
}

fn decode_histogram(buf: &mut &[u8]) -> Result<HistogramSnapshot, DecodeError> {
    let buckets = get_uvarint(buf)? as usize;
    if buckets > LATENCY_BUCKETS {
        // our histograms are fixed-width; more buckets is corruption
        return Err(DecodeError::OutOfBits);
    }
    Ok(HistogramSnapshot {
        buckets: (0..buckets)
            .map(|_| get_uvarint(buf))
            .collect::<Result<_, _>>()?,
    })
}

impl SchemeStats {
    /// Appends the wire encoding of one table row.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.id as u64);
        dpc_runtime::put_string(out, &self.name);
        for v in [self.certify, self.hits, self.misses, self.proves] {
            put_uvarint(out, v);
        }
        encode_histogram(out, &self.latency);
    }

    /// Decodes one table row from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut &[u8]) -> Result<SchemeStats, DecodeError> {
        let id = get_uvarint(buf)?;
        if id > u16::MAX as u64 {
            return Err(DecodeError::OutOfBits);
        }
        let mut s = SchemeStats {
            id: id as u16,
            name: dpc_runtime::get_string(buf)?,
            ..SchemeStats::default()
        };
        for field in [&mut s.certify, &mut s.hits, &mut s.misses, &mut s.proves] {
            *field = get_uvarint(buf)?;
        }
        s.latency = decode_histogram(buf)?;
        Ok(s)
    }

    /// Adds another row's counters and latency into this one (same
    /// scheme measured on another node).
    pub fn absorb(&mut self, other: &SchemeStats) {
        self.certify += other.certify;
        self.hits += other.hits;
        self.misses += other.misses;
        self.proves += other.proves;
        self.latency.absorb(&other.latency);
    }
}

/// A point-in-time copy of every counter, as shipped in a Stats
/// response. Cache fields are merged in by the server from the
/// certificate cache's own counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Certify requests received.
    pub certify: u64,
    /// Check requests received.
    pub check: u64,
    /// Gen requests received.
    pub gen: u64,
    /// Soundness probes received.
    pub soundness: u64,
    /// Stats requests received.
    pub stats: u64,
    /// Malformed requests answered with an error.
    pub errors: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Bytes charged against the cache budget.
    pub cache_bytes: u64,
    /// Worker batches with more than one certify request.
    pub batches: u64,
    /// Certify requests that rode in a multi-request batch.
    pub batched_certifies: u64,
    /// Honest-prover executions.
    pub proves: u64,
    /// Request latency histogram.
    pub latency: HistogramSnapshot,
    /// Per-scheme counters, one row per registered scheme.
    pub per_scheme: Vec<SchemeStats>,
    /// Cold-tier lookups that found a record (v3; 0 without a store).
    pub store_hits: u64,
    /// Cold-tier lookups that found nothing (v3).
    pub store_misses: u64,
    /// Hot-tier evictions demoted to the cold tier instead of lost
    /// (v3).
    pub store_demotes: u64,
    /// Cold hits promoted back into the hot tier (v3).
    pub store_promotes: u64,
    /// Live records in the cold tier (v3 gauge).
    pub store_records: u64,
    /// Live record bytes in the cold tier (v3 gauge).
    pub store_bytes: u64,
    /// Cold-tier segment files (v3 gauge; > 0 iff a store is
    /// attached).
    pub store_segments: u64,
    /// Write-behind appends that failed (v3). Non-zero means up to
    /// this many certificates are *not* in the store despite the
    /// demotion counter — they re-prove after a restart.
    pub store_write_errors: u64,
    /// Currently open connections (v4 gauge).
    pub conns_open: u64,
    /// Connections accepted since boot (v4).
    pub conns_accepted: u64,
    /// Accept attempts that returned `EAGAIN` (v4; reactor only —
    /// the threaded accept loop blocks instead).
    pub accept_eagain: u64,
    /// Connections closed by the idle timeout (v4).
    pub idle_timeouts: u64,
    /// Per-stage latency histograms (v5).
    pub stages: StageSnapshot,
    /// Jobs parked on their connection because the worker queue was
    /// full (v5; reactor only).
    pub queue_full_stalls: u64,
    /// Read-interest drops while a job was parked (v5).
    pub read_interest_drops: u64,
    /// Read-interest restores after a parked job enqueued (v5).
    pub read_interest_restores: u64,
    /// Worker completions that had to wake an event loop (v5).
    pub inbox_wakeups: u64,
    /// Jobs sitting in the worker queue right now (v5 gauge).
    pub queue_depth: u64,
    /// Records absorbed from StorePush frames (v6): replica writes,
    /// read-repair backfills, and peer anti-entropy pushes.
    pub repl_push_merged: u64,
    /// StorePush records that were already present (v6).
    pub repl_push_duplicates: u64,
    /// Records this node pushed to peers that lacked them (v6).
    pub repl_pushed: u64,
    /// Completed anti-entropy sweep rounds (v6).
    pub repl_sweeps: u64,
    /// Failed peer exchanges during sweeps (v6).
    pub repl_errors: u64,
    /// Chunked graph-upload sessions opened (v7).
    pub chunk_sessions: u64,
    /// GraphChunk frames accepted into a session (v7).
    pub chunk_chunks: u64,
    /// Payload bytes streamed through chunk sessions (v7).
    pub chunk_bytes: u64,
    /// Chunk sessions aborted or abandoned (v7).
    pub chunk_aborts: u64,
    /// Peak carry-buffer bytes across all chunk sessions (v7 gauge;
    /// < 10 proves O(chunk) reassembly memory).
    pub chunk_carry_peak: u64,
    /// Components delegated to ring peers (v7).
    pub delegated_proves: u64,
    /// Delegations that fell back to a local prove (v7).
    pub delegated_errors: u64,
    /// Merged component outcomes (v7; one per composite certify).
    pub outcome_merges: u64,
    /// Completed audit sweeps over the stored certificates (v8).
    pub audit_sweeps: u64,
    /// Stored records sampled by the auditor (v8).
    pub audit_sampled: u64,
    /// Sampled records that were CRC-valid but failed re-verification
    /// (v8).
    pub audit_failed: u64,
    /// Failed records purged from both cache tiers (v8).
    pub audit_quarantined: u64,
    /// Interactive (dMAM) wire sessions opened (v8).
    pub interactive_sessions: u64,
    /// Interactive verdicts that rejected at least one node (v8).
    pub interactive_rejects: u64,
}

impl StatsSnapshot {
    /// Total requests received.
    pub fn requests_total(&self) -> u64 {
        self.certify + self.check + self.gen + self.soundness + self.stats
    }

    /// The row of a scheme, by name.
    pub fn scheme(&self, name: &str) -> Option<&SchemeStats> {
        self.per_scheme.iter().find(|s| s.name == name)
    }

    /// Appends the wire encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.certify,
            self.check,
            self.gen,
            self.soundness,
            self.stats,
            self.errors,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_entries,
            self.cache_bytes,
            self.batches,
            self.batched_certifies,
            self.proves,
        ] {
            put_uvarint(out, v);
        }
        encode_histogram(out, &self.latency);
        put_uvarint(out, self.per_scheme.len() as u64);
        for row in &self.per_scheme {
            row.encode_into(out);
        }
        // version-3 tail: storage-tier counters and gauges, strictly
        // after every v2 field so the v2 prefix decodes unchanged
        for v in [
            self.store_hits,
            self.store_misses,
            self.store_demotes,
            self.store_promotes,
            self.store_records,
            self.store_bytes,
            self.store_segments,
            self.store_write_errors,
        ] {
            put_uvarint(out, v);
        }
        // version-4 tail: connection counters, strictly after the v3
        // tail for the same reason
        for v in [
            self.conns_open,
            self.conns_accepted,
            self.accept_eagain,
            self.idle_timeouts,
        ] {
            put_uvarint(out, v);
        }
        // version-5 tail: per-stage histograms then back-pressure
        // counters, strictly after the v4 tail
        for (_, h) in self.stages.named() {
            encode_histogram(out, h);
        }
        for v in [
            self.queue_full_stalls,
            self.read_interest_drops,
            self.read_interest_restores,
            self.inbox_wakeups,
            self.queue_depth,
        ] {
            put_uvarint(out, v);
        }
        // version-6 tail: replication counters, strictly after the v5
        // tail so every older decoder still reads its own prefix
        for v in [
            self.repl_push_merged,
            self.repl_push_duplicates,
            self.repl_pushed,
            self.repl_sweeps,
            self.repl_errors,
        ] {
            put_uvarint(out, v);
        }
        // version-7 tail: chunked-upload and distributed-proving
        // counters, strictly after the v6 tail
        for v in [
            self.chunk_sessions,
            self.chunk_chunks,
            self.chunk_bytes,
            self.chunk_aborts,
            self.chunk_carry_peak,
            self.delegated_proves,
            self.delegated_errors,
            self.outcome_merges,
        ] {
            put_uvarint(out, v);
        }
        // version-8 tail: audit and interactive-session counters,
        // strictly after the v7 tail
        for v in [
            self.audit_sweeps,
            self.audit_sampled,
            self.audit_failed,
            self.audit_quarantined,
            self.interactive_sessions,
            self.interactive_rejects,
        ] {
            put_uvarint(out, v);
        }
    }

    /// Decodes a snapshot from the front of `buf`, advancing it.
    pub fn decode_from(buf: &mut &[u8]) -> Result<StatsSnapshot, DecodeError> {
        let mut s = StatsSnapshot::default();
        for field in [
            &mut s.certify,
            &mut s.check,
            &mut s.gen,
            &mut s.soundness,
            &mut s.stats,
            &mut s.errors,
            &mut s.cache_hits,
            &mut s.cache_misses,
            &mut s.cache_evictions,
            &mut s.cache_entries,
            &mut s.cache_bytes,
            &mut s.batches,
            &mut s.batched_certifies,
            &mut s.proves,
        ] {
            *field = get_uvarint(buf)?;
        }
        s.latency = decode_histogram(buf)?;
        let rows = get_uvarint(buf)? as usize;
        if rows > MAX_SCHEME_ROWS {
            return Err(DecodeError::OutOfBits);
        }
        s.per_scheme = (0..rows)
            .map(|_| SchemeStats::decode_from(buf))
            .collect::<Result<_, _>>()?;
        // the v3 storage tail is absent in version-2 bodies; absence
        // decodes as zeros (no store attached)
        if !buf.is_empty() {
            for field in [
                &mut s.store_hits,
                &mut s.store_misses,
                &mut s.store_demotes,
                &mut s.store_promotes,
                &mut s.store_records,
                &mut s.store_bytes,
                &mut s.store_segments,
                &mut s.store_write_errors,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        // the v4 connection tail is absent in v2/v3 bodies; absence
        // decodes as zeros (a server predating connection accounting)
        if !buf.is_empty() {
            for field in [
                &mut s.conns_open,
                &mut s.conns_accepted,
                &mut s.accept_eagain,
                &mut s.idle_timeouts,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        // the v5 tracing tail is absent in v2–v4 bodies; absence
        // decodes as zeros (a server predating stage tracing)
        if !buf.is_empty() {
            s.stages = StageSnapshot {
                read_decode: decode_histogram(buf)?,
                queue_wait: decode_histogram(buf)?,
                service: decode_histogram(buf)?,
                reorder_wait: decode_histogram(buf)?,
                write_flush: decode_histogram(buf)?,
            };
            for field in [
                &mut s.queue_full_stalls,
                &mut s.read_interest_drops,
                &mut s.read_interest_restores,
                &mut s.inbox_wakeups,
                &mut s.queue_depth,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        // the v6 replication tail is absent in v2–v5 bodies; absence
        // decodes as zeros (a server predating replication)
        if !buf.is_empty() {
            for field in [
                &mut s.repl_push_merged,
                &mut s.repl_push_duplicates,
                &mut s.repl_pushed,
                &mut s.repl_sweeps,
                &mut s.repl_errors,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        // the v7 chunk/distribution tail is absent in v2–v6 bodies;
        // absence decodes as zeros (a server predating giant graphs)
        if !buf.is_empty() {
            for field in [
                &mut s.chunk_sessions,
                &mut s.chunk_chunks,
                &mut s.chunk_bytes,
                &mut s.chunk_aborts,
                &mut s.chunk_carry_peak,
                &mut s.delegated_proves,
                &mut s.delegated_errors,
                &mut s.outcome_merges,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        // the v8 audit/interactive tail is absent in v2–v7 bodies;
        // absence decodes as zeros (a server predating auditing)
        if !buf.is_empty() {
            for field in [
                &mut s.audit_sweeps,
                &mut s.audit_sampled,
                &mut s.audit_failed,
                &mut s.audit_quarantined,
                &mut s.interactive_sessions,
                &mut s.interactive_rejects,
            ] {
                *field = get_uvarint(buf)?;
            }
        }
        Ok(s)
    }

    /// Folds another node's snapshot into this one: the fleet view
    /// `dpc cluster-stats` renders. Counters and gauges sum (gauges
    /// like `cache_entries` or `store_records` become fleet totals),
    /// latency histograms add bucket-wise, and per-scheme rows merge
    /// by scheme id — a scheme registered on only some nodes still
    /// gets one row.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        self.certify += other.certify;
        self.check += other.check;
        self.gen += other.gen;
        self.soundness += other.soundness;
        self.stats += other.stats;
        self.errors += other.errors;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_entries += other.cache_entries;
        self.cache_bytes += other.cache_bytes;
        self.batches += other.batches;
        self.batched_certifies += other.batched_certifies;
        self.proves += other.proves;
        self.latency.absorb(&other.latency);
        for row in &other.per_scheme {
            match self.per_scheme.iter_mut().find(|r| r.id == row.id) {
                Some(mine) => mine.absorb(row),
                None => self.per_scheme.push(row.clone()),
            }
        }
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.store_demotes += other.store_demotes;
        self.store_promotes += other.store_promotes;
        self.store_records += other.store_records;
        self.store_bytes += other.store_bytes;
        self.store_segments += other.store_segments;
        self.store_write_errors += other.store_write_errors;
        self.conns_open += other.conns_open;
        self.conns_accepted += other.conns_accepted;
        self.accept_eagain += other.accept_eagain;
        self.idle_timeouts += other.idle_timeouts;
        self.stages.absorb(&other.stages);
        self.queue_full_stalls += other.queue_full_stalls;
        self.read_interest_drops += other.read_interest_drops;
        self.read_interest_restores += other.read_interest_restores;
        self.inbox_wakeups += other.inbox_wakeups;
        self.queue_depth += other.queue_depth;
        self.repl_push_merged += other.repl_push_merged;
        self.repl_push_duplicates += other.repl_push_duplicates;
        self.repl_pushed += other.repl_pushed;
        self.repl_sweeps += other.repl_sweeps;
        self.repl_errors += other.repl_errors;
        self.chunk_sessions += other.chunk_sessions;
        self.chunk_chunks += other.chunk_chunks;
        self.chunk_bytes += other.chunk_bytes;
        self.chunk_aborts += other.chunk_aborts;
        // a peak is a max, not a sum: the fleet's high-water mark is
        // the worst node's high-water mark
        self.chunk_carry_peak = self.chunk_carry_peak.max(other.chunk_carry_peak);
        self.delegated_proves += other.delegated_proves;
        self.delegated_errors += other.delegated_errors;
        self.outcome_merges += other.outcome_merges;
        self.audit_sweeps += other.audit_sweeps;
        self.audit_sampled += other.audit_sampled;
        self.audit_failed += other.audit_failed;
        self.audit_quarantined += other.audit_quarantined;
        self.interactive_sessions += other.interactive_sessions;
        self.interactive_rejects += other.interactive_rejects;
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} (certify {}, check {}, gen {}, soundness {}, stats {}, errors {})",
            self.requests_total(),
            self.certify,
            self.check,
            self.gen,
            self.soundness,
            self.stats,
            self.errors,
        )?;
        writeln!(
            f,
            "cache: {} hits, {} misses, {} evictions, {} entries, {} bytes",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_entries,
            self.cache_bytes,
        )?;
        if self.store_segments > 0 {
            writeln!(
                f,
                "store: {} records, {} bytes, {} segments; cold hits {}, \
                 cold misses {}, demotions {}, promotions {}{}",
                self.store_records,
                self.store_bytes,
                self.store_segments,
                self.store_hits,
                self.store_misses,
                self.store_demotes,
                self.store_promotes,
                if self.store_write_errors > 0 {
                    format!(
                        " (WARNING: {} write-behind failures — that many \
                         certificates are not persisted)",
                        self.store_write_errors
                    )
                } else {
                    String::new()
                },
            )?;
        }
        if self.conns_accepted > 0 || self.conns_open > 0 {
            writeln!(
                f,
                "connections: {} open, {} accepted, {} accept retries, {} idle-timeouts",
                self.conns_open, self.conns_accepted, self.accept_eagain, self.idle_timeouts,
            )?;
        }
        writeln!(
            f,
            "prover: {} executions; batching: {} batches covering {} requests",
            self.proves, self.batches, self.batched_certifies,
        )?;
        write!(
            f,
            "latency: {} samples, p50 {} us, p99 {} us",
            self.latency.count(),
            self.latency.p50_us(),
            self.latency.p99_us(),
        )?;
        if self.stages.named().iter().any(|(_, h)| h.count() > 0) {
            for (name, h) in self.stages.named() {
                write!(
                    f,
                    "\nstage {:<12} {} samples, p50 {} us, p99 {} us",
                    name,
                    h.count(),
                    h.p50_us(),
                    h.p99_us(),
                )?;
            }
        }
        if self.queue_full_stalls
            + self.read_interest_drops
            + self.read_interest_restores
            + self.inbox_wakeups
            + self.queue_depth
            > 0
        {
            write!(
                f,
                "\nbackpressure: {} queue-full stalls, {} read-interest drops, \
                 {} restores, {} inbox wakeups, {} queued now",
                self.queue_full_stalls,
                self.read_interest_drops,
                self.read_interest_restores,
                self.inbox_wakeups,
                self.queue_depth,
            )?;
        }
        if self.repl_push_merged
            + self.repl_push_duplicates
            + self.repl_pushed
            + self.repl_sweeps
            + self.repl_errors
            > 0
        {
            write!(
                f,
                "\nreplication: {} absorbed, {} duplicates, {} pushed to peers, \
                 {} sweeps, {} sweep errors",
                self.repl_push_merged,
                self.repl_push_duplicates,
                self.repl_pushed,
                self.repl_sweeps,
                self.repl_errors,
            )?;
        }
        if self.chunk_sessions + self.chunk_aborts > 0 {
            write!(
                f,
                "\nchunked uploads: {} sessions, {} chunks, {} bytes, \
                 {} aborted, carry peak {} bytes",
                self.chunk_sessions,
                self.chunk_chunks,
                self.chunk_bytes,
                self.chunk_aborts,
                self.chunk_carry_peak,
            )?;
        }
        if self.delegated_proves + self.delegated_errors + self.outcome_merges > 0 {
            write!(
                f,
                "\ndistributed: {} components delegated, {} delegation \
                 failures, {} outcome merges",
                self.delegated_proves, self.delegated_errors, self.outcome_merges,
            )?;
        }
        if self.audit_sweeps + self.audit_sampled > 0 {
            write!(
                f,
                "\naudit: {} sweeps, {} sampled, {} failed, {} quarantined",
                self.audit_sweeps, self.audit_sampled, self.audit_failed, self.audit_quarantined,
            )?;
        }
        if self.interactive_sessions + self.interactive_rejects > 0 {
            write!(
                f,
                "\ninteractive: {} sessions, {} rejecting verdicts",
                self.interactive_sessions, self.interactive_rejects,
            )?;
        }
        for s in &self.per_scheme {
            write!(
                f,
                "\nscheme {:>3} {:<18} {} certifies, {} hits, {} misses, {} proves, p50 {} us",
                s.id,
                s.name,
                s.certify,
                s.hits,
                s.misses,
                s.proves,
                s.latency.p50_us(),
            )?;
        }
        Ok(())
    }
}

/// Renders a snapshot in Prometheus text exposition format 0.0.4 —
/// what `dpc serve --metrics-addr` serves to scrapers. Pure function
/// so the rendering is unit-testable without a socket.
///
/// Histogram buckets hold integer microseconds in `[2^i, 2^(i+1))`,
/// so the cumulative count through bucket `i` is exactly the number
/// of observations `<= 2^(i+1) - 1` — that value (1, 3, 7, 15, …) is
/// the emitted inclusive `le` bound. No `_sum` series is emitted —
/// the source histograms record bucket counts only. Counters end in
/// `_total`; gauges don't.
pub fn prometheus_text(s: &StatsSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(4096);
    let mut metric = |name: &str, kind: &str, help: &str, series: &[(String, u64)]| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, value) in series {
            let _ = writeln!(out, "{name}{labels} {value}");
        }
    };
    metric(
        "dpc_requests_total",
        "counter",
        "Requests received, by wire kind.",
        &[
            ("{kind=\"certify\"}".into(), s.certify),
            ("{kind=\"check\"}".into(), s.check),
            ("{kind=\"gen\"}".into(), s.gen),
            ("{kind=\"soundness\"}".into(), s.soundness),
            ("{kind=\"stats\"}".into(), s.stats),
        ],
    );
    let plain: [(&str, &str, &str, u64); 40] = [
        (
            "dpc_errors_total",
            "counter",
            "Malformed requests answered with an error.",
            s.errors,
        ),
        (
            "dpc_proves_total",
            "counter",
            "Honest-prover executions.",
            s.proves,
        ),
        (
            "dpc_batches_total",
            "counter",
            "Worker batches with more than one certify.",
            s.batches,
        ),
        (
            "dpc_batched_certifies_total",
            "counter",
            "Certify requests that rode in a multi-request batch.",
            s.batched_certifies,
        ),
        (
            "dpc_cache_hits_total",
            "counter",
            "Cache hits.",
            s.cache_hits,
        ),
        (
            "dpc_cache_misses_total",
            "counter",
            "Cache misses.",
            s.cache_misses,
        ),
        (
            "dpc_cache_evictions_total",
            "counter",
            "Cache evictions.",
            s.cache_evictions,
        ),
        (
            "dpc_cache_entries",
            "gauge",
            "Live cache entries.",
            s.cache_entries,
        ),
        (
            "dpc_cache_bytes",
            "gauge",
            "Bytes charged against the cache budget.",
            s.cache_bytes,
        ),
        (
            "dpc_store_hits_total",
            "counter",
            "Cold-tier lookups that found a record.",
            s.store_hits,
        ),
        (
            "dpc_store_misses_total",
            "counter",
            "Cold-tier lookups that found nothing.",
            s.store_misses,
        ),
        (
            "dpc_store_records",
            "gauge",
            "Live records in the cold tier.",
            s.store_records,
        ),
        (
            "dpc_store_bytes",
            "gauge",
            "Live record bytes in the cold tier.",
            s.store_bytes,
        ),
        (
            "dpc_conns_open",
            "gauge",
            "Currently open connections.",
            s.conns_open,
        ),
        (
            "dpc_conns_accepted_total",
            "counter",
            "Connections accepted since boot.",
            s.conns_accepted,
        ),
        (
            "dpc_idle_timeouts_total",
            "counter",
            "Connections closed by the idle timeout.",
            s.idle_timeouts,
        ),
        (
            "dpc_queue_depth",
            "gauge",
            "Jobs waiting in the worker queue.",
            s.queue_depth,
        ),
        (
            "dpc_queue_full_stalls_total",
            "counter",
            "Jobs parked on their connection because the queue was full.",
            s.queue_full_stalls,
        ),
        (
            "dpc_read_interest_drops_total",
            "counter",
            "Read-interest drops while a job was parked.",
            s.read_interest_drops,
        ),
        (
            "dpc_read_interest_restores_total",
            "counter",
            "Read-interest restores after a parked job enqueued.",
            s.read_interest_restores,
        ),
        (
            "dpc_inbox_wakeups_total",
            "counter",
            "Worker completions that had to wake an event loop.",
            s.inbox_wakeups,
        ),
        (
            "dpc_repl_push_merged_total",
            "counter",
            "Records absorbed from StorePush frames.",
            s.repl_push_merged,
        ),
        (
            "dpc_repl_push_duplicates_total",
            "counter",
            "StorePush records that were already present.",
            s.repl_push_duplicates,
        ),
        (
            "dpc_repl_pushed_total",
            "counter",
            "Records pushed to peers that lacked them.",
            s.repl_pushed,
        ),
        (
            "dpc_repl_sweeps_total",
            "counter",
            "Completed anti-entropy sweep rounds.",
            s.repl_sweeps,
        ),
        (
            "dpc_repl_errors_total",
            "counter",
            "Failed peer exchanges during sweeps.",
            s.repl_errors,
        ),
        (
            "dpc_chunk_sessions_total",
            "counter",
            "Chunked graph-upload sessions opened.",
            s.chunk_sessions,
        ),
        (
            "dpc_chunk_chunks_total",
            "counter",
            "GraphChunk frames accepted into a session.",
            s.chunk_chunks,
        ),
        (
            "dpc_chunk_bytes_total",
            "counter",
            "Payload bytes streamed through chunk sessions.",
            s.chunk_bytes,
        ),
        (
            "dpc_chunk_aborts_total",
            "counter",
            "Chunk sessions aborted or abandoned.",
            s.chunk_aborts,
        ),
        (
            "dpc_chunk_carry_peak_bytes",
            "gauge",
            "Peak stream-decoder carry buffer across chunk sessions.",
            s.chunk_carry_peak,
        ),
        (
            "dpc_delegated_proves_total",
            "counter",
            "Graph components delegated to ring peers.",
            s.delegated_proves,
        ),
        (
            "dpc_delegated_errors_total",
            "counter",
            "Delegations that fell back to a local prove.",
            s.delegated_errors,
        ),
        (
            "dpc_outcome_merges_total",
            "counter",
            "Component outcomes folded into one merged Outcome.",
            s.outcome_merges,
        ),
        (
            "dpc_audit_sweeps_total",
            "counter",
            "Completed audit sweeps over the stored certificates.",
            s.audit_sweeps,
        ),
        (
            "dpc_audit_sampled_total",
            "counter",
            "Stored records sampled by the auditor.",
            s.audit_sampled,
        ),
        (
            "dpc_audit_failed_total",
            "counter",
            "Sampled records that were CRC-valid but failed re-verification.",
            s.audit_failed,
        ),
        (
            "dpc_audit_quarantined_total",
            "counter",
            "Failed records purged from both cache tiers.",
            s.audit_quarantined,
        ),
        (
            "dpc_interactive_sessions_total",
            "counter",
            "Interactive (dMAM) wire sessions opened.",
            s.interactive_sessions,
        ),
        (
            "dpc_interactive_rejects_total",
            "counter",
            "Interactive verdicts that rejected at least one node.",
            s.interactive_rejects,
        ),
    ];
    for (name, kind, help, value) in plain {
        metric(name, kind, help, &[(String::new(), value)]);
    }
    let mut histogram = |name: &str, help: &str, series: &[(&str, &HistogramSnapshot)]| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (label, h) in series {
            let sep = if label.is_empty() { "" } else { "," };
            let last_nonzero = h
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .map(|i| i + 1)
                .unwrap_or(0);
            let mut cum = 0u64;
            for (i, &b) in h.buckets[..last_nonzero].iter().enumerate() {
                cum += b;
                let le = (1u64 << (i + 1)) - 1;
                let _ = writeln!(out, "{name}_bucket{{{label}{sep}le=\"{le}\"}} {cum}");
            }
            let count = h.count();
            let _ = writeln!(out, "{name}_bucket{{{label}{sep}le=\"+Inf\"}} {count}");
            if label.is_empty() {
                let _ = writeln!(out, "{name}_count {count}");
            } else {
                let _ = writeln!(out, "{name}_count{{{label}}} {count}");
            }
        }
    };
    histogram(
        "dpc_request_duration_us",
        "End-to-end request latency (enqueue to response built), microseconds.",
        &[("", &s.latency)],
    );
    let stage_series: Vec<(String, &HistogramSnapshot)> = s
        .stages
        .named()
        .iter()
        .map(|&(name, h)| (format!("stage=\"{name}\""), h))
        .collect();
    histogram(
        "dpc_stage_duration_us",
        "Per-stage request latency, microseconds.",
        &stage_series
            .iter()
            .map(|(l, h)| (l.as_str(), *h))
            .collect::<Vec<_>>(),
    );
    if !s.per_scheme.is_empty() {
        type SchemeField = fn(&SchemeStats) -> u64;
        let families: [(&str, &str, SchemeField); 3] = [
            (
                "dpc_scheme_certify_total",
                "Certify requests routed to the scheme.",
                |r| r.certify,
            ),
            (
                "dpc_scheme_hits_total",
                "Cache hits under the scheme's keys.",
                |r| r.hits,
            ),
            (
                "dpc_scheme_proves_total",
                "Honest-prover executions for the scheme.",
                |r| r.proves,
            ),
        ];
        for (name, help, get) in families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for row in &s.per_scheme {
                let _ = writeln!(out, "{name}{{scheme=\"{}\"}} {}", row.name, get(row));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(2));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2, "[0, 2) us");
        assert_eq!(s.buckets[1], 2, "[2, 4) us");
        assert_eq!(s.buckets[9], 1, "[512, 1024) us");
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn quantiles_are_bucket_lower_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let s = h.snapshot();
        assert_eq!(s.p50_us(), 64);
        assert_eq!(s.p99_us(), 64);
        assert_eq!(s.quantile_us(1.0), 1 << 16);
        assert_eq!(HistogramSnapshot::default().p50_us(), 0);
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let snapshot = StatsSnapshot {
            certify: 10,
            cache_hits: 9,
            cache_bytes: 1 << 30,
            latency: h.snapshot(),
            per_scheme: vec![
                SchemeStats {
                    id: 0,
                    name: "planarity".into(),
                    certify: 7,
                    hits: 5,
                    misses: 2,
                    proves: 2,
                    latency: h.snapshot(),
                },
                SchemeStats {
                    id: 8,
                    name: "mod-counter".into(),
                    certify: 3,
                    ..SchemeStats::default()
                },
            ],
            store_hits: 11,
            store_misses: 4,
            store_demotes: 2,
            store_promotes: 9,
            store_records: 40,
            store_bytes: 1 << 16,
            store_segments: 2,
            store_write_errors: 1,
            conns_open: 3,
            conns_accepted: 12,
            accept_eagain: 5,
            idle_timeouts: 1,
            stages: StageSnapshot {
                queue_wait: h.snapshot(),
                write_flush: h.snapshot(),
                ..StageSnapshot::default()
            },
            queue_full_stalls: 2,
            inbox_wakeups: 6,
            queue_depth: 1,
            repl_push_merged: 13,
            repl_push_duplicates: 4,
            repl_pushed: 9,
            repl_sweeps: 3,
            repl_errors: 1,
            chunk_sessions: 2,
            chunk_chunks: 17,
            chunk_bytes: 1 << 22,
            chunk_aborts: 1,
            chunk_carry_peak: 9,
            delegated_proves: 6,
            delegated_errors: 1,
            outcome_merges: 2,
            audit_sweeps: 5,
            audit_sampled: 20,
            audit_failed: 2,
            audit_quarantined: 2,
            interactive_sessions: 3,
            interactive_rejects: 1,
            ..Default::default()
        };
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        let mut cursor = buf.as_slice();
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, snapshot);
        assert_eq!(back.scheme("mod-counter").unwrap().certify, 3);
        assert!(back.scheme("nosuch").is_none());
        let text = format!("{back}");
        assert!(text.contains("planarity"), "{text}");
        assert!(text.contains("mod-counter"), "{text}");
        assert!(text.contains("demotions 2"), "{text}");
        assert!(text.contains("1 write-behind failure"), "{text}");
        assert!(
            text.contains("connections: 3 open, 12 accepted, 5 accept retries, 1 idle-timeouts"),
            "{text}"
        );
        assert!(text.contains("stage queue_wait"), "{text}");
        assert!(text.contains("backpressure: 2 queue-full stalls"), "{text}");
        assert!(
            text.contains("replication: 13 absorbed, 4 duplicates, 9 pushed to peers"),
            "{text}"
        );
        assert!(
            text.contains("chunked uploads: 2 sessions, 17 chunks"),
            "{text}"
        );
        assert!(
            text.contains("distributed: 6 components delegated, 1 delegation"),
            "{text}"
        );
        assert!(
            text.contains("audit: 5 sweeps, 20 sampled, 2 failed, 2 quarantined"),
            "{text}"
        );
        assert!(
            text.contains("interactive: 3 sessions, 1 rejecting verdicts"),
            "{text}"
        );
    }

    #[test]
    fn v2_stats_body_decodes_with_zero_store_fields() {
        // a version-2 body is a version-8 body minus the v3 store
        // tail (8 varints), the v4 connection tail (4 varints), the
        // v5 tracing tail (5 empty histograms + 5 varints), the v6
        // replication tail (5 varints), the v7 chunk tail (8
        // varints), and the v8 audit tail (6 varints); a v8 decoder
        // reads it as "no store, no connections, no tracing, no
        // replication, no chunking, no auditing"
        let v2_like = StatsSnapshot {
            certify: 5,
            cache_hits: 3,
            ..StatsSnapshot::default()
        };
        let mut v6 = Vec::new();
        v2_like.encode_into(&mut v6);
        let v2 = &v6[..v6.len() - 41]; // the 41 tail bytes are all 0x00
        let mut cursor = v2;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v2_like);
        assert_eq!(back.store_segments, 0);
        assert_eq!(back.conns_accepted, 0);
        // and the store/connection lines stay out of the rendered text
        assert!(!format!("{back}").contains("store:"));
        assert!(!format!("{back}").contains("connections:"));
    }

    #[test]
    fn v3_stats_body_decodes_with_zero_connection_fields() {
        // a version-3 body is a version-8 body minus the v4, v5, v6,
        // v7, and v8 tails; the store tail must still land in the
        // store fields, not bleed into the connection fields
        let v3_like = StatsSnapshot {
            certify: 5,
            store_hits: 7,
            store_segments: 2,
            ..StatsSnapshot::default()
        };
        let mut v6 = Vec::new();
        v3_like.encode_into(&mut v6);
        let v3 = &v6[..v6.len() - 33]; // v4 (4) + v5 (10) + v6 (5) + v7 (8) + v8 (6) tails are 0x00
        let mut cursor = v3;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v3_like);
        assert_eq!(back.store_hits, 7);
        assert_eq!(back.conns_open, 0);
    }

    #[test]
    fn v4_stats_body_decodes_with_zero_tracing_fields() {
        // a version-4 body is a version-8 body minus the tracing
        // tail (5 empty histograms + 5 counters, all 0x00 when
        // empty), the v6 replication tail (5 counters), the v7
        // chunk tail (8 counters), and the v8 audit tail (6
        // counters); the connection tail must still land in the
        // connection fields
        let v4_like = StatsSnapshot {
            certify: 5,
            conns_open: 2,
            conns_accepted: 9,
            ..StatsSnapshot::default()
        };
        let mut v6 = Vec::new();
        v4_like.encode_into(&mut v6);
        let v4 = &v6[..v6.len() - 29];
        let mut cursor = v4;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v4_like);
        assert_eq!(back.conns_accepted, 9);
        assert_eq!(back.stages, StageSnapshot::default());
        assert_eq!(back.queue_full_stalls, 0);
    }

    #[test]
    fn v5_stats_body_decodes_with_zero_replication_fields() {
        // a version-5 body is a version-8 body minus the replication
        // tail (5 varints), the chunk tail (8 varints), and the
        // audit tail (6 varints, all 0x00 when zero); the tracing
        // tail must still land in the tracing fields
        let v5_like = StatsSnapshot {
            certify: 5,
            queue_full_stalls: 3,
            queue_depth: 2,
            ..StatsSnapshot::default()
        };
        let mut v6 = Vec::new();
        v5_like.encode_into(&mut v6);
        let v5 = &v6[..v6.len() - 19];
        let mut cursor = v5;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v5_like);
        assert_eq!(back.queue_full_stalls, 3);
        assert_eq!(back.repl_push_merged, 0);
        assert_eq!(back.repl_sweeps, 0);
        // and the replication line stays out of the rendered text
        assert!(!format!("{back}").contains("replication:"));
    }

    #[test]
    fn v6_stats_body_decodes_with_zero_chunk_fields() {
        // a version-6 body is a version-8 body minus the chunk tail
        // (8 varints) and the audit tail (6 varints, all 0x00 when
        // zero); the replication tail must still land in the
        // replication fields
        let v6_like = StatsSnapshot {
            certify: 5,
            repl_push_merged: 4,
            repl_sweeps: 2,
            ..StatsSnapshot::default()
        };
        let mut v7 = Vec::new();
        v6_like.encode_into(&mut v7);
        let v6 = &v7[..v7.len() - 14];
        let mut cursor = v6;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v6_like);
        assert_eq!(back.repl_push_merged, 4);
        assert_eq!(back.chunk_sessions, 0);
        assert_eq!(back.delegated_proves, 0);
        // and the chunk/distribution lines stay out of the text
        assert!(!format!("{back}").contains("chunked uploads:"));
        assert!(!format!("{back}").contains("distributed:"));
    }

    #[test]
    fn v7_stats_body_decodes_with_zero_audit_fields() {
        // a version-7 body is a version-8 body minus the audit tail
        // (6 varints, all 0x00 when zero); the chunk tail must still
        // land in the chunk fields
        let v7_like = StatsSnapshot {
            certify: 5,
            chunk_sessions: 3,
            delegated_proves: 2,
            ..StatsSnapshot::default()
        };
        let mut v8 = Vec::new();
        v7_like.encode_into(&mut v8);
        let v7 = &v8[..v8.len() - 6];
        let mut cursor = v7;
        let back = StatsSnapshot::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, v7_like);
        assert_eq!(back.chunk_sessions, 3);
        assert_eq!(back.audit_sweeps, 0);
        assert_eq!(back.interactive_sessions, 0);
        // and the audit/interactive lines stay out of the text
        assert!(!format!("{back}").contains("audit:"));
        assert!(!format!("{back}").contains("interactive:"));
    }

    #[test]
    fn absorb_folds_two_nodes_into_one_fleet_view() {
        let h1 = LatencyHistogram::new();
        h1.record(Duration::from_micros(3)); // bucket 1
        let h2 = LatencyHistogram::new();
        h2.record(Duration::from_micros(100)); // bucket 6
        let mut a = StatsSnapshot {
            certify: 4,
            cache_hits: 2,
            store_records: 10,
            latency: h1.snapshot(),
            per_scheme: vec![SchemeStats {
                id: 0,
                name: "planarity".into(),
                certify: 4,
                hits: 2,
                misses: 2,
                proves: 2,
                latency: h1.snapshot(),
            }],
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            certify: 3,
            cache_hits: 1,
            store_records: 7,
            latency: h2.snapshot(),
            per_scheme: vec![
                SchemeStats {
                    id: 0,
                    name: "planarity".into(),
                    certify: 2,
                    ..SchemeStats::default()
                },
                SchemeStats {
                    id: 1,
                    name: "bipartite".into(),
                    certify: 1,
                    ..SchemeStats::default()
                },
            ],
            ..StatsSnapshot::default()
        };
        a.absorb(&b);
        assert_eq!(a.certify, 7);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.store_records, 17, "gauges sum to fleet totals");
        assert_eq!(a.latency.count(), 2, "histograms pool observations");
        assert_eq!(a.latency.buckets[1], 1);
        assert_eq!(a.latency.buckets[6], 1);
        // rows merged by id; the scheme present on only one node
        // still shows up
        assert_eq!(a.per_scheme.len(), 2);
        assert_eq!(a.scheme("planarity").unwrap().certify, 6);
        assert_eq!(a.scheme("bipartite").unwrap().certify, 1);
    }

    #[test]
    fn snapshot_decode_bounds_scheme_rows() {
        // a v2-shaped body whose per-scheme row count (its last
        // varint) is a hostile 2^28-1: must be rejected by the row
        // bound, not allocated
        let snapshot = StatsSnapshot::default();
        let mut buf = Vec::new();
        snapshot.encode_into(&mut buf);
        buf.truncate(buf.len() - 41); // drop the v3 + v4 + v5 + v6 + v7 + v8 tails
        *buf.last_mut().unwrap() = 0xff;
        buf.extend_from_slice(&[0xff, 0xff, 0x7f]);
        let mut cursor = buf.as_slice();
        assert!(StatsSnapshot::decode_from(&mut cursor).is_err());
    }

    #[test]
    fn histogram_diff_is_the_between_snapshot_delta() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3)); // bucket 1
        let earlier = h.snapshot();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100)); // bucket 6
        let delta = h.snapshot().diff(&earlier);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.buckets[1], 1);
        assert_eq!(delta.buckets[6], 1);
        // diff against a longer "earlier" saturates instead of
        // underflowing
        let short = HistogramSnapshot {
            buckets: vec![5, 5],
        };
        assert_eq!(short.diff(&earlier).buckets, vec![5, 4]);
    }

    #[test]
    fn slow_log_caps_and_orders_newest_first() {
        let log = SlowLog::new(1000);
        assert_eq!(log.threshold_us(), 1000);
        for i in 0..(SLOW_LOG_CAP as u64 + 10) {
            log.record(SlowLogEntry {
                trace_id: i,
                total_us: 2000 + i,
                ..SlowLogEntry::default()
            });
        }
        let entries = log.snapshot();
        assert_eq!(entries.len(), SLOW_LOG_CAP);
        // newest first; the 10 oldest were evicted
        assert_eq!(entries[0].trace_id, SLOW_LOG_CAP as u64 + 9);
        assert_eq!(entries.last().unwrap().trace_id, 10);

        let disabled = SlowLog::new(0);
        disabled.record(SlowLogEntry::default());
        assert!(disabled.snapshot().is_empty());
    }

    #[test]
    fn slow_log_entry_wire_roundtrip() {
        let entry = SlowLogEntry {
            trace_id: (7 << 32) | 3,
            kind: 1,
            scheme: 4,
            age_us: 1_000_000,
            total_us: 52_000,
            read_decode_us: 12,
            queue_wait_us: 800,
            service_us: 50_000,
            reorder_wait_us: 38,
            write_flush_us: 1_150,
        };
        assert_eq!(entry.kind_name(), "certify");
        let mut buf = Vec::new();
        entry.encode_into(&mut buf);
        let mut cursor = buf.as_slice();
        let back = SlowLogEntry::decode_from(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, entry);
    }

    #[test]
    fn prometheus_text_renders_counters_and_histograms() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3)); // bucket 1: le 3
        h.record(Duration::from_micros(100)); // bucket 6: le 127
        let s = StatsSnapshot {
            certify: 7,
            cache_hits: 5,
            conns_open: 2,
            queue_full_stalls: 1,
            repl_sweeps: 4,
            chunk_sessions: 3,
            chunk_carry_peak: 9,
            delegated_proves: 5,
            latency: h.snapshot(),
            stages: StageSnapshot {
                queue_wait: h.snapshot(),
                ..StageSnapshot::default()
            },
            per_scheme: vec![SchemeStats {
                id: 0,
                name: "planarity".into(),
                certify: 7,
                hits: 5,
                proves: 2,
                ..SchemeStats::default()
            }],
            ..StatsSnapshot::default()
        };
        let text = prometheus_text(&s);
        assert!(
            text.contains("dpc_requests_total{kind=\"certify\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE dpc_requests_total counter"), "{text}");
        assert!(text.contains("dpc_cache_hits_total 5"), "{text}");
        assert!(text.contains("dpc_conns_open 2"), "{text}");
        assert!(text.contains("dpc_queue_full_stalls_total 1"), "{text}");
        assert!(text.contains("dpc_repl_sweeps_total 4"), "{text}");
        assert!(text.contains("dpc_chunk_sessions_total 3"), "{text}");
        assert!(text.contains("dpc_chunk_carry_peak_bytes 9"), "{text}");
        assert!(text.contains("dpc_delegated_proves_total 5"), "{text}");
        assert!(text.contains("dpc_audit_quarantined_total 0"), "{text}");
        assert!(text.contains("dpc_interactive_sessions_total 0"), "{text}");
        // cumulative buckets: 1 through le=3, 2 through le=127, +Inf
        assert!(
            text.contains("dpc_request_duration_us_bucket{le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dpc_request_duration_us_bucket{le=\"127\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("dpc_request_duration_us_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("dpc_request_duration_us_count 2"), "{text}");
        assert!(
            text.contains("dpc_stage_duration_us_bucket{stage=\"queue_wait\",le=\"3\"} 1"),
            "{text}"
        );
        // empty stages still expose a zero count
        assert!(
            text.contains("dpc_stage_duration_us_count{stage=\"write_flush\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("dpc_scheme_certify_total{scheme=\"planarity\"} 7"),
            "{text}"
        );
        // one HELP/TYPE per family, even with multiple series
        assert_eq!(text.matches("# TYPE dpc_scheme_certify_total").count(), 1);
    }
}
