//! Traversals and spanning structures: BFS, iterative DFS, connected
//! components, and spanning trees (the substrate of every certification
//! scheme in the paper — spanning-tree certificates underlie Section 2's
//! folklore schemes and Phase 2 of Algorithm 2).

use crate::graph::{EdgeId, Graph, NodeId};

/// BFS visit order from `root` (only the reachable component).
pub fn bfs_order(g: &Graph, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[root as usize] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in g.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Connected components; `comp[v]` is the component index of `v`,
/// components numbered `0..count` in order of smallest member.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component index per node.
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: u32,
}

/// Computes connected components with BFS.
pub fn components(g: &Graph) -> Components {
    let mut comp = vec![u32::MAX; g.node_count()];
    let mut count = 0;
    for v in g.nodes() {
        if comp[v as usize] == u32::MAX {
            for w in bfs_order(g, v) {
                comp[w as usize] = count;
            }
            count += 1;
        }
    }
    Components { comp, count }
}

/// A rooted spanning tree of a connected graph.
///
/// `parent[root] == None`; `dist` is the hop distance to the root along
/// tree edges; `parent_edge` is the [`EdgeId`] to the parent.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// The root node.
    pub root: NodeId,
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Edge id to the parent (`None` for the root).
    pub parent_edge: Vec<Option<EdgeId>>,
    /// Hop distance to the root along the tree.
    pub dist: Vec<u32>,
    /// Children lists (sorted by node index).
    pub children: Vec<Vec<NodeId>>,
}

impl SpanningTree {
    /// Number of nodes spanned.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// True if edge id `e` is a tree edge.
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.parent_edge.contains(&Some(e))
    }

    /// Set of tree-edge ids, as a boolean mask indexed by [`EdgeId`].
    pub fn tree_edge_mask(&self, g: &Graph) -> Vec<bool> {
        let mut mask = vec![false; g.edge_count()];
        for pe in self.parent_edge.iter().flatten() {
            mask[*pe as usize] = true;
        }
        mask
    }

    /// Subtree sizes (number of nodes in the subtree rooted at each node),
    /// computed bottom-up in reverse-BFS order.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.parent.len();
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        // BFS over the tree from the root.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &self.children[v as usize] {
                queue.push_back(c);
            }
        }
        let mut size = vec![1u32; n];
        for &v in order.iter().rev() {
            if let Some(p) = self.parent[v as usize] {
                size[p as usize] += size[v as usize];
            }
        }
        size
    }
}

/// BFS spanning tree of a connected graph.
///
/// # Panics
///
/// Panics if the graph is not connected (the distributed model assumes a
/// connected network).
pub fn bfs_spanning_tree(g: &Graph, root: NodeId) -> SpanningTree {
    let n = g.node_count();
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut dist = vec![u32::MAX; n];
    let mut children = vec![Vec::new(); n];
    let mut queue = std::collections::VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    let mut visited = 1usize;
    while let Some(v) = queue.pop_front() {
        for &(w, e) in g.adjacency(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                parent[w as usize] = Some(v);
                parent_edge[w as usize] = Some(e);
                children[v as usize].push(w);
                visited += 1;
                queue.push_back(w);
            }
        }
    }
    assert_eq!(visited, n, "graph must be connected");
    SpanningTree {
        root,
        parent,
        parent_edge,
        dist,
        children,
    }
}

/// Iterative DFS spanning tree (children discovered in adjacency order).
///
/// # Panics
///
/// Panics if the graph is not connected.
pub fn dfs_spanning_tree(g: &Graph, root: NodeId) -> SpanningTree {
    let n = g.node_count();
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut dist = vec![u32::MAX; n];
    let mut children = vec![Vec::new(); n];
    let mut stack = vec![(root, 0usize)];
    dist[root as usize] = 0;
    let mut visited = 1usize;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        let adj = g.adjacency(v);
        if *i >= adj.len() {
            stack.pop();
            continue;
        }
        let (w, e) = adj[*i];
        *i += 1;
        if dist[w as usize] == u32::MAX {
            dist[w as usize] = dist[v as usize] + 1;
            parent[w as usize] = Some(v);
            parent_edge[w as usize] = Some(e);
            children[v as usize].push(w);
            visited += 1;
            stack.push((w, 0));
        }
    }
    assert_eq!(visited, n, "graph must be connected");
    SpanningTree {
        root,
        parent,
        parent_edge,
        dist,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_order_covers_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2]);
        assert_eq!(bfs_order(&g, 4), vec![4, 3]);
    }

    #[test]
    fn components_count() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let c = components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.comp[0], c.comp[2]);
        assert_ne!(c.comp[0], c.comp[3]);
    }

    #[test]
    fn bfs_tree_distances_are_shortest() {
        let g = generators::cycle(8);
        let t = bfs_spanning_tree(&g, 0);
        assert_eq!(t.dist[4], 4);
        assert_eq!(t.dist[7], 1);
        assert_eq!(t.parent[0], None);
        // n-1 tree edges
        let mask = t.tree_edge_mask(&g);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 7);
    }

    #[test]
    fn dfs_tree_spans_and_subtree_sizes_sum() {
        let g = generators::grid(3, 4);
        let t = dfs_spanning_tree(&g, 0);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[t.root as usize] as usize, g.node_count());
        // every non-root subtree size < n and >= 1
        for v in g.nodes() {
            if v != t.root {
                assert!(sizes[v as usize] >= 1);
                assert!((sizes[v as usize] as usize) < g.node_count());
            }
        }
        // parent/child consistency
        for v in g.nodes() {
            for &c in &t.children[v as usize] {
                assert_eq!(t.parent[c as usize], Some(v));
                assert_eq!(t.dist[c as usize], t.dist[v as usize] + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn spanning_tree_requires_connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = bfs_spanning_tree(&g, 0);
    }

    #[test]
    fn dfs_tree_on_tree_is_identity() {
        let g = generators::random_tree(40, 7);
        let t = dfs_spanning_tree(&g, 0);
        let mask = t.tree_edge_mask(&g);
        assert!(
            mask.iter().all(|&b| b),
            "every edge of a tree is a tree edge"
        );
    }
}
