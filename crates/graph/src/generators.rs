//! Workload generators for the experiments: planar families, non-planar
//! families, and the transformations used by the lower-bound section.
//!
//! All generators produce **connected simple graphs** (the model of the
//! paper assumes connected networks) and are deterministic given the seed.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Path on `n >= 1` nodes, `0 - 1 - ... - n-1`.
pub fn path(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).unwrap();
    }
    b.build()
}

/// Cycle on `n >= 3` nodes.
pub fn cycle(n: u32) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).unwrap();
    }
    b.add_edge(n - 1, 0).unwrap();
    b.build()
}

/// Star `K_{1,n-1}`: node 0 is the center.
pub fn star(n: u32) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).unwrap();
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).unwrap();
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{p,q}`; the first `p` nodes form one side.
pub fn complete_bipartite(p: u32, q: u32) -> Graph {
    let mut b = GraphBuilder::new(p + q);
    for u in 0..p {
        for v in 0..q {
            b.add_edge(u, p + v).unwrap();
        }
    }
    b.build()
}

/// `rows x cols` grid graph (planar).
pub fn grid(rows: u32, cols: u32) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: u32, c: u32| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).unwrap();
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).unwrap();
            }
        }
    }
    b.build()
}

/// Wheel `W_n`: a cycle on `n-1 >= 3` nodes plus a hub adjacent to all
/// (planar, 3-degenerate is false: hub has high degree — good ablation case).
pub fn wheel(n: u32) -> Graph {
    assert!(n >= 4);
    let mut b = GraphBuilder::new(n);
    let k = n - 1;
    for v in 1..k {
        b.add_edge(v - 1, v).unwrap();
    }
    b.add_edge(k - 1, 0).unwrap();
    for v in 0..k {
        b.add_edge(n - 1, v).unwrap();
    }
    b.build()
}

/// Uniform random labelled tree on `n` nodes (Prüfer-free attachment:
/// node `v` attaches to a uniformly random earlier node).
pub fn random_tree(n: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.add_edge(p, v).unwrap();
    }
    b.build()
}

/// Caterpillar: a spine path of length `spine` with `legs` pendant nodes
/// hanging off random spine nodes.
pub fn caterpillar(spine: u32, legs: u32, seed: u64) -> Graph {
    assert!(spine >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(spine + legs);
    for v in 1..spine {
        b.add_edge(v - 1, v).unwrap();
    }
    for l in 0..legs {
        let s = rng.gen_range(0..spine);
        b.add_edge(s, spine + l).unwrap();
    }
    b.build()
}

/// Random **stacked triangulation** (Apollonian-style maximal planar
/// graph): start from a triangle; repeatedly pick a random existing face
/// and insert a new node adjacent to its three corners. Always maximal
/// planar with `m = 3n - 6`.
pub fn stacked_triangulation(n: u32, seed: u64) -> Graph {
    assert!(n >= 3, "triangulation needs n >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.add_edge(0, 1).unwrap();
    b.add_edge(1, 2).unwrap();
    b.add_edge(0, 2).unwrap();
    // faces as corner triples; the initial outer+inner face of the triangle
    let mut faces: Vec<[NodeId; 3]> = vec![[0, 1, 2], [0, 1, 2]];
    for v in 3..n {
        let fi = rng.gen_range(0..faces.len());
        let [a, c, d] = faces[fi];
        b.add_edge(v, a).unwrap();
        b.add_edge(v, c).unwrap();
        b.add_edge(v, d).unwrap();
        faces.swap_remove(fi);
        faces.push([v, a, c]);
        faces.push([v, a, d]);
        faces.push([v, c, d]);
    }
    let g = b.build();
    debug_assert_eq!(g.edge_count(), (3 * n - 6) as usize);
    g
}

/// Random connected planar graph: a random subset of a stacked
/// triangulation's edges containing a spanning tree. `density` in `[0,1]`
/// is the probability of keeping each non-tree edge.
pub fn random_planar(n: u32, density: f64, seed: u64) -> Graph {
    assert!(n >= 3);
    let tri = stacked_triangulation(n, seed);
    let tree = crate::traversal::bfs_spanning_tree(&tri, 0);
    let mask = tree.tree_edge_mask(&tri);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    tri.edge_subgraph(|e, _| mask[e as usize] || rng.gen_bool(density))
}

/// Random **path-outerplanar** graph (Definition 1 of the paper): a
/// Hamiltonian path `0..n-1` plus `extra` non-crossing chords drawn above
/// it (generated by splitting intervals, which keeps the chord family
/// laminar). The identity order is a path-outerplanarity witness.
pub fn random_path_outerplanar(n: u32, extra: u32, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).unwrap();
    }
    // Laminar chords: maintain a pool of intervals; pick one, add its chord
    // (if not a path edge / duplicate), then split it at a random midpoint.
    let mut pool: Vec<(u32, u32)> = vec![(0, n - 1)];
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 20 * extra + 100 {
        attempts += 1;
        let i = rng.gen_range(0..pool.len());
        let (a, bnd) = pool[i];
        if bnd - a < 2 {
            continue;
        }
        if b.add_edge_if_absent(a, bnd).unwrap() {
            added += 1;
        }
        let mid = rng.gen_range(a + 1..bnd);
        pool.swap_remove(i);
        // nested sub-intervals: [a, mid] and [mid, b]; sharing an endpoint
        // with the parent chord is allowed by Definition 1
        pool.push((a, mid));
        pool.push((mid, bnd));
    }
    b.build()
}

/// Random **maximal outerplanar** graph: triangulate the interior of a
/// fan/polygon by recursively splitting ranges. All vertices lie on the
/// outer cycle `0..n-1`.
pub fn random_maximal_outerplanar(n: u32, seed: u64) -> Graph {
    assert!(n >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).unwrap();
    }
    b.add_edge(n - 1, 0).unwrap();
    // triangulate the polygon 0..n-1 by random ear splitting
    let mut stack = vec![(0u32, n - 1)];
    while let Some((a, c)) = stack.pop() {
        if c - a < 2 {
            continue;
        }
        let m = rng.gen_range(a + 1..c);
        if m > a + 1 || c > m + 1 {
            // add chords closing the two sub-polygons
            if m > a + 1 {
                b.add_edge_if_absent(a, m).unwrap();
            }
            if c > m + 1 {
                b.add_edge_if_absent(m, c).unwrap();
            }
        }
        stack.push((a, m));
        stack.push((m, c));
    }
    b.build()
}

/// Random series-parallel graph (K4-minor-free): repeatedly apply series
/// and parallel *expansions* starting from a single edge, then simplify
/// parallels into paths to stay simple.
pub fn random_series_parallel(n: u32, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // maintain an edge multiset as pairs; expand until n nodes exist
    let mut next: u32 = 2;
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    while next < n {
        let i = rng.gen_range(0..edges.len());
        let (u, v) = edges[i];
        if rng.gen_bool(0.55) {
            // series: u - w - v
            let w = next;
            next += 1;
            edges.swap_remove(i);
            edges.push((u, w));
            edges.push((w, v));
        } else {
            // parallel, made simple by subdividing the duplicate: u - w - v
            let w = next;
            next += 1;
            edges.push((u, w));
            edges.push((w, v));
        }
    }
    let mut b = GraphBuilder::new(next);
    for (u, v) in edges {
        b.add_edge_if_absent(u, v).unwrap();
    }
    b.build()
}

/// Subdivision of `K5`: each edge replaced by a path with `extra`
/// internal nodes. `extra = 0` gives `K5` itself.
pub fn k5_subdivision(extra: u32) -> Graph {
    subdivision_of(&complete(5), extra)
}

/// Subdivision of `K3,3`: each edge replaced by a path with `extra`
/// internal nodes.
pub fn k33_subdivision(extra: u32) -> Graph {
    subdivision_of(&complete_bipartite(3, 3), extra)
}

/// Replaces every edge of `g` by a path with `extra` internal nodes.
pub fn subdivision_of(g: &Graph, extra: u32) -> Graph {
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    let mut b = GraphBuilder::new(n + m * extra);
    let mut next = n;
    for e in g.edges() {
        if extra == 0 {
            b.add_edge(e.u, e.v).unwrap();
        } else {
            let mut prev = e.u;
            for _ in 0..extra {
                b.add_edge(prev, next).unwrap();
                prev = next;
                next += 1;
            }
            b.add_edge(prev, e.v).unwrap();
        }
    }
    b.build()
}

/// A non-planar "needle in a haystack": a random planar host with a
/// subdivided `K5` or `K3,3` planted on `attach` of its nodes via an extra
/// bridge. The result is connected and non-planar.
pub fn planted_kuratowski(host_n: u32, k5: bool, extra: u32, seed: u64) -> Graph {
    let host = random_planar(host_n.max(4), 0.4, seed);
    let bad = if k5 {
        k5_subdivision(extra)
    } else {
        k33_subdivision(extra)
    };
    let mut u = host.disjoint_union(&bad);
    // connect with one bridge to keep it connected (a bridge cannot make
    // a planar graph non-planar nor remove non-planarity)
    let mut b = GraphBuilder::new(u.node_count() as u32);
    for e in u.edges() {
        b.add_edge(e.u, e.v).unwrap();
    }
    b.add_edge(0, host.node_count() as u32).unwrap();
    u = b.build();
    u
}

/// Connected `G(n, m)` random graph (uniform among simple graphs after
/// forcing a random spanning tree). With `m > 3n - 6` the result is
/// certainly non-planar.
pub fn gnm_connected(n: u32, m: u32, seed: u64) -> Graph {
    assert!(m + 1 >= n, "need m >= n-1 for connectivity");
    let max_m = (n as u64) * (n as u64 - 1) / 2;
    assert!((m as u64) <= max_m, "too many edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // random spanning tree by random attachment over a shuffled order
    let mut order: Vec<u32> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n as usize {
        let j = rng.gen_range(0..i);
        b.add_edge(order[i], order[j]).unwrap();
    }
    let mut added = n - 1;
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && b.add_edge_if_absent(u, v).unwrap() {
            added += 1;
        }
    }
    b.build()
}

/// `d`-dimensional hypercube `Q_d` (non-planar for `d >= 4`).
pub fn hypercube(d: u32) -> Graph {
    let n = 1u32 << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge(v, w).unwrap();
            }
        }
    }
    b.build()
}

/// Returns a copy of `g` with random distinct identifiers drawn from
/// `0..n^2` (the paper's polynomial-range assumption), seeded.
pub fn shuffle_ids(g: &Graph, seed: u64) -> Graph {
    let n = g.node_count() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<u64> = (0..n * n).collect();
    // partial Fisher-Yates: draw n distinct values
    let mut ids = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
        ids.push(pool[i]);
    }
    g.with_ids(ids)
}

/// Number of families [`sample_family`] cycles through.
pub const SAMPLE_FAMILY_COUNT: u32 = 18;

/// One representative of every generator family, selected by index
/// (taken modulo [`SAMPLE_FAMILY_COUNT`]). Cross-crate property tests
/// (graph6 round-trips, the service wire codec) iterate this single
/// table, so adding a family here extends their coverage in lockstep
/// instead of requiring each hand-rolled dispatch to be updated.
pub fn sample_family(which: u32, n: u32, seed: u64) -> Graph {
    let n = n.max(4);
    match which % SAMPLE_FAMILY_COUNT {
        0 => path(n),
        1 => cycle(n),
        2 => star(n),
        3 => complete(3 + n % 5),
        4 => complete_bipartite(2 + n % 4, 2 + n % 5),
        5 => grid(2 + n % 7, 2 + n % 6),
        6 => wheel(n),
        7 => random_tree(n, seed),
        8 => caterpillar(n, 3, seed),
        9 => stacked_triangulation(n, seed),
        10 => random_planar(n, 0.5, seed),
        11 => random_path_outerplanar(n, 2, seed),
        12 => random_maximal_outerplanar(n, seed),
        13 => random_series_parallel(n, seed),
        14 => k5_subdivision(n % 6),
        15 => k33_subdivision(n % 6),
        16 => planted_kuratowski(n.max(12), seed.is_multiple_of(2), 1 + n % 3, seed),
        _ => hypercube(2 + n % 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_families_shapes() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(complete_bipartite(3, 3).edge_count(), 9);
        assert_eq!(grid(3, 4).edge_count(), 17);
        assert_eq!(wheel(6).edge_count(), 10);
        assert_eq!(hypercube(3).edge_count(), 12);
    }

    #[test]
    fn all_generators_connected() {
        let graphs = vec![
            path(7),
            cycle(7),
            star(7),
            complete(6),
            complete_bipartite(3, 4),
            grid(4, 4),
            wheel(8),
            random_tree(50, 1),
            caterpillar(10, 15, 2),
            stacked_triangulation(40, 3),
            random_planar(40, 0.5, 4),
            random_path_outerplanar(30, 10, 5),
            random_maximal_outerplanar(20, 6),
            random_series_parallel(30, 7),
            k5_subdivision(2),
            k33_subdivision(1),
            planted_kuratowski(30, true, 1, 8),
            gnm_connected(30, 60, 9),
            hypercube(4),
        ];
        for g in graphs {
            assert!(g.is_connected(), "{g:?} must be connected");
        }
    }

    #[test]
    fn triangulation_is_maximal_planar_size() {
        for n in [3u32, 4, 10, 50] {
            let g = stacked_triangulation(n, n as u64);
            assert_eq!(g.edge_count(), (3 * n - 6) as usize);
        }
    }

    #[test]
    fn subdivision_counts() {
        let g = k5_subdivision(3);
        assert_eq!(g.node_count(), 5 + 10 * 3);
        assert_eq!(g.edge_count(), 10 * 4);
        for v in 5..g.node_count() as u32 {
            assert_eq!(g.degree(v), 2, "internal subdivision nodes have degree 2");
        }
    }

    #[test]
    fn path_outerplanar_witness_is_laminar() {
        // Chords must be pairwise nested or disjoint (Definition 1).
        let g = random_path_outerplanar(60, 25, 11);
        let mut chords: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|e| e.canonical())
            .filter(|&(a, b)| b > a + 1)
            .collect();
        chords.sort();
        for i in 0..chords.len() {
            for j in (i + 1)..chords.len() {
                let (a, b) = chords[i];
                let (c, d) = chords[j];
                let ok = b <= c || d <= a || (a <= c && d <= b) || (c <= a && b <= d);
                assert!(ok, "chords ({a},{b}) and ({c},{d}) cross");
            }
        }
    }

    #[test]
    fn gnm_has_requested_edges() {
        let g = gnm_connected(25, 80, 3);
        assert_eq!(g.edge_count(), 80);
        assert!(g.is_connected());
    }

    #[test]
    fn shuffled_ids_are_distinct_and_bounded() {
        let g = shuffle_ids(&grid(5, 5), 42);
        let n = g.node_count() as u64;
        let mut ids: Vec<u64> = g.ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n as usize);
        assert!(ids.iter().all(|&id| id < n * n));
    }
}
