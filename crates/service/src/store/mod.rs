//! Pluggable certificate storage: the [`CertStore`] trait and the
//! tiered stack built on it.
//!
//! The paper's central artifact — a once-computed, locally checkable
//! certificate assignment — is immutable and content-addressed, which
//! makes it the ideal unit of persistent storage: a record never
//! changes, never conflicts, and two stores holding the same key hold
//! the same bytes. This module turns the previously RAM-only
//! [`CertCache`] into the *hot tier* of a pluggable storage stack:
//!
//! * [`CertStore`] — the backend trait (get / put / len / bytes /
//!   stats / flush / iter). Implemented by the in-memory
//!   [`MemStore`], by the lock-striped [`CertCache`] itself, and by
//!   the persistent [`SegmentStore`].
//! * [`segment`] — the append-only segment-file store (the cold
//!   tier): CRC-checked length-prefixed records, an in-memory index
//!   built by scanning segments at startup, tombstone-free
//!   compaction, fsync on flush.
//! * [`tiered`] — [`TieredCache`], the composition the server runs:
//!   the LRU cache in front of an optional cold tier, with warm-load
//!   on boot, write-behind on insert, and promotion on cold hits.
//!
//! The unit of exchange is the [`StoreRecord`]: the *keyed bytes*
//! (scheme id + canonical wire graph — the content address) plus the
//! pre-encoded response suffix, exactly the stable byte formats the
//! wire protocol already pins. A record round-trips byte-identically
//! through any backend, so a certificate served after a restart is
//! the same bytes the prover produced before it.

use crate::cache::{CacheEntry, CertCache, ProveResult};
use dpc_core::harness::Outcome;
use dpc_core::scheme::Assignment;
use dpc_graph::canon::{hash_bytes, GraphHash};
use dpc_runtime::{get_string, get_uvarint, put_uvarint};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod segment;
pub mod tiered;

pub use segment::{MergeReport, SegmentConfig, SegmentStore};
pub use tiered::{TieredCache, TieredStats};

/// What kind of prove result a [`StoreRecord`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A yes-instance: the suffix is `outcome` + `assignment` wire
    /// bytes ([`crate::wire::encode_certified_suffix`]).
    Certified,
    /// A cached refusal: the suffix is the reason string
    /// ([`crate::wire::encode_declined_suffix`]).
    Declined,
}

impl RecordKind {
    fn to_u64(self) -> u64 {
        match self {
            RecordKind::Certified => 1,
            RecordKind::Declined => 2,
        }
    }

    fn from_u64(v: u64) -> Option<RecordKind> {
        match v {
            1 => Some(RecordKind::Certified),
            2 => Some(RecordKind::Declined),
            _ => None,
        }
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One stored prove result, in the stable byte formats the wire
/// protocol pins: the keyed content address (uvarint scheme id +
/// canonical graph encoding) and the pre-encoded response suffix.
/// Every backend exchanges exactly these bytes, so a record is
/// byte-identical wherever it has been.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRecord {
    /// Certified or Declined (selects the suffix layout).
    pub kind: RecordKind,
    /// Scheme id + canonical wire graph: the content address.
    pub keyed: Vec<u8>,
    /// Pre-encoded response suffix (what a hit memcpys).
    pub suffix: Vec<u8>,
}

impl StoreRecord {
    /// The 128-bit content hash of the keyed bytes — the index key of
    /// every store tier (the same hash the hot cache shards by).
    pub fn key(&self) -> GraphHash {
        hash_bytes(&self.keyed)
    }

    /// The scheme id from the front of the keyed bytes, if the keyed
    /// bytes are well-formed (`None` for e.g. an empty bypass key).
    pub fn scheme_id(&self) -> Option<u16> {
        let mut buf = self.keyed.as_slice();
        let id = get_uvarint(&mut buf).ok()?;
        u16::try_from(id).ok()
    }

    /// Encodes the record body: kind, keyed length + bytes, suffix
    /// length + bytes. (Framing — length prefix and CRC — is the
    /// segment file's concern, see [`segment`].)
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.keyed.len() + self.suffix.len() + 12);
        put_uvarint(&mut out, self.kind.to_u64());
        put_uvarint(&mut out, self.keyed.len() as u64);
        out.extend_from_slice(&self.keyed);
        put_uvarint(&mut out, self.suffix.len() as u64);
        out.extend_from_slice(&self.suffix);
        out
    }

    /// Inverse of [`StoreRecord::encode_body`]; the whole body must be
    /// consumed.
    pub fn decode_body(body: &[u8]) -> io::Result<StoreRecord> {
        let mut buf = body;
        let kind = RecordKind::from_u64(get_uvarint(&mut buf).map_err(|e| bad(e.to_string()))?)
            .ok_or_else(|| bad("unknown record kind"))?;
        let keyed_len = get_uvarint(&mut buf).map_err(|e| bad(e.to_string()))? as usize;
        if keyed_len > buf.len() {
            return Err(bad("keyed bytes longer than the record"));
        }
        let keyed = buf[..keyed_len].to_vec();
        buf = &buf[keyed_len..];
        let suffix_len = get_uvarint(&mut buf).map_err(|e| bad(e.to_string()))? as usize;
        if suffix_len > buf.len() {
            return Err(bad("suffix longer than the record"));
        }
        let suffix = buf[..suffix_len].to_vec();
        buf = &buf[suffix_len..];
        if !buf.is_empty() {
            return Err(bad("trailing record bytes"));
        }
        Ok(StoreRecord {
            kind,
            keyed,
            suffix,
        })
    }

    /// Rebuilds a full cache entry by decoding the suffix (the codec
    /// is byte-exact, so the entry's re-served bytes are identical to
    /// the stored ones — the stored suffix is reused as-is).
    pub fn to_entry(&self) -> io::Result<CacheEntry> {
        let mut buf = self.suffix.as_slice();
        let result = match self.kind {
            RecordKind::Certified => {
                let outcome = Outcome::decode_from(&mut buf).map_err(|e| bad(e.to_string()))?;
                let assignment =
                    Assignment::decode_from(&mut buf).map_err(|e| bad(e.to_string()))?;
                ProveResult::Certified {
                    assignment,
                    outcome,
                }
            }
            RecordKind::Declined => ProveResult::Declined {
                reason: get_string(&mut buf).map_err(|e| bad(e.to_string()))?,
            },
        };
        if !buf.is_empty() {
            return Err(bad("trailing suffix bytes"));
        }
        Ok(CacheEntry::with_suffix(
            result,
            self.suffix.clone(),
            self.keyed.clone(),
        ))
    }
}

impl CacheEntry {
    /// The entry as a storable record (clones the shared byte
    /// buffers; the decoded assignment is not needed — the suffix
    /// already holds its exact wire bytes).
    pub fn record(&self) -> StoreRecord {
        StoreRecord {
            kind: match self.result {
                ProveResult::Certified { .. } => RecordKind::Certified,
                ProveResult::Declined { .. } => RecordKind::Declined,
            },
            keyed: self.keyed.clone(),
            suffix: self.suffix.clone(),
        }
    }
}

/// Point-in-time counters and gauges of one store tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Live (indexed) records.
    pub records: u64,
    /// Bytes of live records (as stored, framing included).
    pub live_bytes: u64,
    /// Bytes on disk across all segment files (0 for memory tiers).
    pub file_bytes: u64,
    /// Segment files (0 for memory tiers).
    pub segments: u64,
    /// Lookups that returned a record.
    pub hits: u64,
    /// Lookups that found nothing (or failed the keyed-byte guard).
    pub misses: u64,
    /// Records appended.
    pub appends: u64,
    /// Records dropped by the byte budget (oldest first).
    pub dropped: u64,
    /// Read failures (I/O errors, CRC mismatches on the read path).
    pub read_errors: u64,
}

/// A certificate store backend.
///
/// Records are immutable and content-addressed: `put` of an
/// already-present key is a no-op, `get` verifies the stored keyed
/// bytes against the caller's (so a 128-bit hash collision reads as a
/// miss, never as the wrong certificates). All methods take `&self`;
/// implementations are internally synchronized.
pub trait CertStore: Send + Sync {
    /// Looks up a record by content hash, verifying the keyed bytes.
    fn get(&self, key: GraphHash, keyed: &[u8]) -> Option<StoreRecord>;

    /// Stores a record. Returns `Ok(true)` if newly stored,
    /// `Ok(false)` if the key was already present (content addressing
    /// makes the existing record equivalent).
    fn put(&self, record: &StoreRecord) -> io::Result<bool>;

    /// Number of live records.
    fn len(&self) -> u64;

    /// True when the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of live records.
    fn bytes(&self) -> u64;

    /// Counters and gauges.
    fn stats(&self) -> StoreStats;

    /// Removes a record by content hash — the quarantine path of the
    /// randomized store auditor, which pulls records whose bytes are
    /// CRC-valid but fail re-verification. Returns `Ok(true)` if a
    /// record was removed. The content address makes this safe: a
    /// quarantined certificate is simply re-proved on the next query.
    fn remove(&self, key: GraphHash) -> io::Result<bool> {
        let _ = key;
        Ok(false)
    }

    /// Makes previously written records durable (fsync for file
    /// tiers, a no-op for memory tiers).
    fn flush(&self) -> io::Result<()>;

    /// Periodic background maintenance — for file tiers, compaction
    /// once garbage outweighs the live records. Deliberately *not*
    /// part of `put`: maintenance can rewrite the whole store, and
    /// that cost belongs on a background thread, never on the request
    /// path that happened to insert one record.
    fn maintain(&self) -> io::Result<()> {
        Ok(())
    }

    /// Iterates every live record in insertion order. Items are
    /// `Err` when a record cannot be read back (I/O error, CRC
    /// mismatch); iteration continues past them.
    fn iter(&self) -> Box<dyn Iterator<Item = io::Result<StoreRecord>> + '_>;

    /// Like [`CertStore::iter`], newest first — the order warm loads
    /// want, so a bounded hot tier fills with the records most likely
    /// to be queried next (budget drops discard oldest-first, this is
    /// the mirror image). The default materializes `iter`; file
    /// tiers override it to reverse the index instead of the reads.
    fn iter_newest_first(&self) -> Box<dyn Iterator<Item = io::Result<StoreRecord>> + '_> {
        let mut all: Vec<_> = self.iter().collect();
        all.reverse();
        Box::new(all.into_iter())
    }
}

/// A trivial in-memory [`CertStore`] (tests, and the degenerate cold
/// tier for benchmarks). Insertion-ordered, no budget.
#[derive(Default)]
pub struct MemStore {
    inner: Mutex<MemInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
}

#[derive(Default)]
struct MemInner {
    index: HashMap<u128, usize>,
    records: Vec<StoreRecord>,
    bytes: u64,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CertStore for MemStore {
    fn get(&self, key: GraphHash, keyed: &[u8]) -> Option<StoreRecord> {
        let inner = self.inner.lock().expect("mem store poisoned");
        match inner.index.get(&key.0) {
            Some(&i) if inner.records[i].keyed == keyed => {
                let rec = inner.records[i].clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rec)
            }
            _ => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, record: &StoreRecord) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("mem store poisoned");
        let key = record.key().0;
        if inner.index.contains_key(&key) {
            return Ok(false);
        }
        let i = inner.records.len();
        inner.bytes += (record.keyed.len() + record.suffix.len()) as u64;
        inner.records.push(record.clone());
        inner.index.insert(key, i);
        drop(inner);
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    fn len(&self) -> u64 {
        self.inner.lock().expect("mem store poisoned").records.len() as u64
    }

    fn bytes(&self) -> u64 {
        self.inner.lock().expect("mem store poisoned").bytes
    }

    fn remove(&self, key: GraphHash) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("mem store poisoned");
        let Some(i) = inner.index.remove(&key.0) else {
            return Ok(false);
        };
        let record = inner.records.remove(i);
        inner.bytes -= (record.keyed.len() + record.suffix.len()) as u64;
        for pos in inner.index.values_mut() {
            if *pos > i {
                *pos -= 1;
            }
        }
        Ok(true)
    }

    fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("mem store poisoned");
        StoreStats {
            records: inner.records.len() as u64,
            live_bytes: inner.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            ..StoreStats::default()
        }
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    fn iter(&self) -> Box<dyn Iterator<Item = io::Result<StoreRecord>> + '_> {
        let records = self
            .inner
            .lock()
            .expect("mem store poisoned")
            .records
            .clone();
        Box::new(records.into_iter().map(Ok))
    }
}

/// The hot tier speaks the same trait: a [`CertCache`] is a
/// [`CertStore`] whose records live decoded behind `Arc`s (the
/// adapter re-encodes on the trait boundary; the server's hot path
/// uses the cache's native `Arc`-sharing API instead).
impl CertStore for CertCache {
    fn get(&self, key: GraphHash, keyed: &[u8]) -> Option<StoreRecord> {
        self.lookup(key, keyed).map(|entry| entry.record())
    }

    fn put(&self, record: &StoreRecord) -> io::Result<bool> {
        let entry = Arc::new(record.to_entry()?);
        let kept = self.insert(record.key(), Arc::clone(&entry));
        Ok(Arc::ptr_eq(&kept, &entry))
    }

    fn len(&self) -> u64 {
        CertCache::stats(self).entries
    }

    fn bytes(&self) -> u64 {
        CertCache::stats(self).bytes
    }

    fn remove(&self, key: GraphHash) -> io::Result<bool> {
        Ok(CertCache::remove(self, key))
    }

    fn stats(&self) -> StoreStats {
        let s = CertCache::stats(self);
        StoreStats {
            records: s.entries,
            live_bytes: s.bytes,
            hits: s.hits,
            misses: s.misses,
            dropped: s.evictions,
            ..StoreStats::default()
        }
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    fn iter(&self) -> Box<dyn Iterator<Item = io::Result<StoreRecord>> + '_> {
        Box::new(
            self.entries_snapshot()
                .into_iter()
                .map(|entry| Ok(entry.record())),
        )
    }
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Folds `bytes` into a running CRC-32 state. Start from `!0`, feed
/// the data in any slicing, and complement the final state:
/// `crc32(a ‖ b) == !crc32_update(crc32_update(!0, a), b)`. The
/// chunked graph upload uses this to CRC a whole streamed payload
/// without ever holding it in one buffer.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC32_TABLE[((state ^ b as u32) & 0xff) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) — the per-record
/// integrity check of the segment file format.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::wire;
    use dpc_core::harness::certify_pls;
    use dpc_core::schemes::planarity::PlanarityScheme;
    use dpc_graph::generators;

    pub(crate) fn sample_entry(n: u32, seed: u64) -> CacheEntry {
        let g = generators::stacked_triangulation(n, seed);
        let certified = certify_pls(&PlanarityScheme::new(), &g).unwrap();
        let mut keyed = Vec::new();
        put_uvarint(&mut keyed, 0);
        wire::encode_graph(&mut keyed, &g);
        CacheEntry::new(
            ProveResult::Certified {
                assignment: certified.assignment,
                outcome: certified.outcome,
            },
            keyed,
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value of CRC-32/ISO-HDLC
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // incremental folding over any slicing matches the one-shot
        let data = b"123456789";
        for split in 0..data.len() {
            let state = crc32_update(crc32_update(!0, &data[..split]), &data[split..]);
            assert_eq!(!state, 0xcbf4_3926);
        }
    }

    #[test]
    fn record_body_roundtrip() {
        let entry = sample_entry(20, 1);
        let rec = entry.record();
        assert_eq!(rec.kind, RecordKind::Certified);
        assert_eq!(rec.scheme_id(), Some(0));
        let body = rec.encode_body();
        let back = StoreRecord::decode_body(&body).unwrap();
        assert_eq!(back, rec);
        // truncation and garbage are errors, not panics
        assert!(StoreRecord::decode_body(&body[..body.len() - 1]).is_err());
        assert!(StoreRecord::decode_body(&[]).is_err());
        let mut trailing = body.clone();
        trailing.push(0);
        assert!(StoreRecord::decode_body(&trailing).is_err());
    }

    #[test]
    fn record_rebuilds_a_byte_identical_entry() {
        let entry = sample_entry(25, 2);
        let rec = entry.record();
        let rebuilt = rec.to_entry().unwrap();
        assert_eq!(rebuilt.suffix, entry.suffix, "suffix is reused as-is");
        assert_eq!(rebuilt.keyed, entry.keyed);
        assert_eq!(rebuilt.record(), rec, "round-trip is lossless");
    }

    #[test]
    fn declined_records_roundtrip() {
        let rec = CacheEntry::new(
            ProveResult::Declined {
                reason: "instance is not in the class".into(),
            },
            vec![0, 1, 2],
        )
        .record();
        assert_eq!(rec.kind, RecordKind::Declined);
        let entry = rec.to_entry().unwrap();
        match &entry.result {
            ProveResult::Declined { reason } => {
                assert_eq!(reason, "instance is not in the class")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_suffix_is_an_error_not_a_panic() {
        let mut rec = sample_entry(15, 3).record();
        rec.suffix.truncate(rec.suffix.len() / 2);
        assert!(rec.to_entry().is_err());
        rec.suffix.clear();
        assert!(rec.to_entry().is_err());
    }

    #[test]
    fn mem_store_implements_the_trait() {
        let store = MemStore::new();
        let rec = sample_entry(18, 4).record();
        assert!(store.put(&rec).unwrap());
        assert!(!store.put(&rec).unwrap(), "second put is a no-op");
        assert_eq!(store.len(), 1);
        assert!(store.bytes() > 0);
        let got = store.get(rec.key(), &rec.keyed).unwrap();
        assert_eq!(got, rec);
        assert!(store.get(rec.key(), b"other").is_none(), "keyed guard");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.appends), (1, 1, 1));
        let all: Vec<_> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(all, vec![rec]);
        store.flush().unwrap();
    }

    #[test]
    fn cert_cache_implements_the_trait() {
        let cache = CertCache::new(CacheConfig::default());
        let rec = sample_entry(20, 5).record();
        assert!(CertStore::put(&cache, &rec).unwrap());
        assert!(!CertStore::put(&cache, &rec).unwrap());
        assert_eq!(CertStore::len(&cache), 1);
        let got = CertStore::get(&cache, rec.key(), &rec.keyed).unwrap();
        assert_eq!(got.suffix, rec.suffix);
        let all: Vec<_> = CertStore::iter(&cache).map(|r| r.unwrap()).collect();
        assert_eq!(all.len(), 1);
    }
}
