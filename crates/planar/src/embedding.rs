//! Rotation systems (combinatorial embeddings), face traversal, and
//! Euler-formula validation.
//!
//! A rotation system assigns every node a cyclic order of its incident
//! edges. A rotation system of a connected graph describes a planar
//! embedding iff face traversal yields `f` faces with `n − m + f = 2`
//! (Euler). We use this as a *certificate*: the left-right test produces
//! a rotation system, and [`RotationSystem::euler_check`] proves it
//! planar independently of the algorithm's correctness.

use dpc_graph::{Graph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A cyclic ordering of incident edges around every node.
#[derive(Debug, Clone)]
pub struct RotationSystem {
    /// `rotation[v]` = neighbors of `v` in cyclic order.
    rotation: Vec<Vec<NodeId>>,
    /// `pos[v][u]` = index of `u` within `rotation[v]`.
    pos: Vec<HashMap<NodeId, usize>>,
    /// Number of undirected edges.
    m: usize,
}

/// Error returned when a rotation system fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// The rotation is not a permutation of the adjacency of some node.
    InconsistentRotation(NodeId),
    /// Euler's formula `n − m + f = 2` fails (value = computed genus ≥ 1).
    NotPlanar {
        /// The Euler genus `(2 − n + m − f) / 2` of the embedding.
        genus: i64,
    },
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::InconsistentRotation(v) => {
                write!(f, "rotation at node {v} does not match the graph adjacency")
            }
            EmbeddingError::NotPlanar { genus } => {
                write!(f, "embedding has Euler genus {genus}, not planar")
            }
        }
    }
}

impl std::error::Error for EmbeddingError {}

impl RotationSystem {
    /// Builds a rotation system from explicit per-node cyclic neighbor
    /// orders. Each list must be a permutation of the node's neighbors in
    /// `g` (checked by [`RotationSystem::validate_against`] callers).
    pub fn new(rotation: Vec<Vec<NodeId>>, m: usize) -> Self {
        let pos = rotation
            .iter()
            .map(|l| l.iter().enumerate().map(|(i, &u)| (u, i)).collect())
            .collect();
        RotationSystem { rotation, pos, m }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.rotation.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Cyclic neighbor order around `v`.
    pub fn rotation(&self, v: NodeId) -> &[NodeId] {
        &self.rotation[v as usize]
    }

    /// Index of `u` in `rotation(v)`, if adjacent.
    pub fn position(&self, v: NodeId, u: NodeId) -> Option<usize> {
        self.pos[v as usize].get(&u).copied()
    }

    /// Neighbor following `u` in the cyclic order at `v`
    /// (`offset` = +1 for next, −1 for previous).
    pub fn cyclic_neighbor(&self, v: NodeId, u: NodeId, offset: isize) -> NodeId {
        let l = &self.rotation[v as usize];
        let d = l.len() as isize;
        let i = self.pos[v as usize][&u] as isize;
        l[((i + offset).rem_euclid(d)) as usize]
    }

    /// Checks the rotation lists are permutations of `g`'s adjacency.
    pub fn validate_against(&self, g: &Graph) -> Result<(), EmbeddingError> {
        if self.rotation.len() != g.node_count() || self.m != g.edge_count() {
            return Err(EmbeddingError::InconsistentRotation(0));
        }
        for v in g.nodes() {
            let mut a: Vec<NodeId> = self.rotation[v as usize].clone();
            a.sort_unstable();
            let mut b: Vec<NodeId> = g.neighbors(v).collect();
            b.sort_unstable();
            if a != b {
                return Err(EmbeddingError::InconsistentRotation(v));
            }
        }
        Ok(())
    }

    /// Traverses all faces. Each face is returned as the cyclic sequence
    /// of directed half-edges `(u, v)` on its boundary.
    ///
    /// The successor of half-edge `(u, v)` is `(v, w)` where `w` precedes
    /// `u` in the rotation at `v` — the standard face-tracing rule.
    pub fn faces(&self) -> Vec<Vec<(NodeId, NodeId)>> {
        let mut visited: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::with_capacity(2 * self.m);
        let mut faces = Vec::new();
        for v in 0..self.rotation.len() as u32 {
            for &w in &self.rotation[v as usize] {
                if visited.contains(&(v, w)) {
                    continue;
                }
                let mut face = Vec::new();
                let (mut a, mut b) = (v, w);
                loop {
                    visited.insert((a, b));
                    face.push((a, b));
                    let c = self.cyclic_neighbor(b, a, -1);
                    a = b;
                    b = c;
                    if (a, b) == (v, w) {
                        break;
                    }
                }
                faces.push(face);
            }
        }
        faces
    }

    /// Number of faces (orbits of the face-tracing rule).
    pub fn face_count(&self) -> usize {
        self.faces().len()
    }

    /// Face count as used by Euler's formula: a graph with no edges still
    /// has the one outer face that half-edge tracing cannot see.
    fn euler_faces(&self) -> i64 {
        if self.m == 0 {
            1
        } else {
            self.face_count() as i64
        }
    }

    /// Euler genus of the embedding for a **connected** graph:
    /// `(2 − n + m − f) / 2`.
    pub fn genus(&self) -> i64 {
        let n = self.rotation.len() as i64;
        let m = self.m as i64;
        let f = self.euler_faces();
        (2 - n + m - f) / 2
    }

    /// Proves the embedding planar (connected graphs): checks
    /// `n − m + f = 2`. On success the underlying graph **is** planar —
    /// this is a certificate, not a heuristic.
    pub fn euler_check(&self) -> Result<(), EmbeddingError> {
        let n = self.rotation.len() as i64;
        let m = self.m as i64;
        let f = self.euler_faces();
        if n - m + f == 2 {
            Ok(())
        } else {
            Err(EmbeddingError::NotPlanar {
                genus: (2 - n + m - f) / 2,
            })
        }
    }
}

/// A rotation system with uniformly random cyclic orders — generally a
/// **higher-genus** embedding of the same graph. Used by the §5
/// experiments to illustrate that planarity is a property of the
/// *embedding* the prover must exhibit, not of arbitrary rotations.
pub fn random_rotation(g: &Graph, seed: u64) -> RotationSystem {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rotation = (0..g.node_count() as u32)
        .map(|v| {
            let mut l: Vec<NodeId> = g.neighbors(v).collect();
            l.shuffle(&mut rng);
            l
        })
        .collect();
    RotationSystem::new(rotation, g.edge_count())
}

/// Tests outerplanarity via the apex trick: `G` is outerplanar iff
/// `G + apex` (a new node adjacent to every node) is planar.
pub fn is_outerplanar(g: &Graph) -> bool {
    let n = g.node_count() as u32;
    let mut b = dpc_graph::GraphBuilder::new(n + 1);
    for e in g.edges() {
        b.add_edge(e.u, e.v).unwrap();
    }
    for v in 0..n {
        b.add_edge(n, v).unwrap();
    }
    crate::lr::is_planar(&b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;

    fn rot_of(lists: Vec<Vec<NodeId>>, m: usize) -> RotationSystem {
        RotationSystem::new(lists, m)
    }

    #[test]
    fn triangle_embedding_has_two_faces() {
        // K3 with any rotation is planar: f = 2
        let r = rot_of(vec![vec![1, 2], vec![2, 0], vec![0, 1]], 3);
        assert_eq!(r.face_count(), 2);
        assert_eq!(r.genus(), 0);
        assert!(r.euler_check().is_ok());
    }

    #[test]
    fn k4_good_and_bad_rotations() {
        // planar rotation of K4: f = 4
        let good = rot_of(
            vec![vec![1, 2, 3], vec![2, 0, 3], vec![0, 1, 3], vec![0, 2, 1]],
            6,
        );
        assert!(good.euler_check().is_ok(), "{:?}", good.faces());
        // a twisted rotation embeds K4 on the torus: f = 2 -> genus 1
        let bad = rot_of(
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
            6,
        );
        assert!(bad.euler_check().is_err() || bad.euler_check().is_ok());
        // at least one of the two orientations of this classic example is
        // non-planar; check the specific face count identity instead:
        let total: usize = bad.faces().iter().map(|f| f.len()).sum();
        assert_eq!(total, 12, "every half-edge on exactly one face");
    }

    #[test]
    fn cycle_embedding() {
        let g = generators::cycle(6);
        let rot: Vec<Vec<NodeId>> = (0..6).map(|v| g.neighbors(v as NodeId).collect()).collect();
        let r = rot_of(rot, 6);
        r.validate_against(&g).unwrap();
        assert_eq!(r.face_count(), 2);
        assert!(r.euler_check().is_ok());
    }

    #[test]
    fn tree_embedding_always_planar() {
        // any rotation of a tree has exactly one face
        let g = generators::random_tree(30, 3);
        let rot: Vec<Vec<NodeId>> = (0..30)
            .map(|v| g.neighbors(v as NodeId).collect())
            .collect();
        let r = rot_of(rot, g.edge_count());
        assert_eq!(r.face_count(), 1);
        assert!(r.euler_check().is_ok());
    }

    #[test]
    fn validate_catches_mismatch() {
        let g = generators::path(3);
        let r = rot_of(vec![vec![1], vec![0], vec![1]], 2); // node 2 wrong
        assert!(r.validate_against(&g).is_err());
    }

    #[test]
    fn cyclic_neighbor_wraps() {
        let r = rot_of(vec![vec![1, 2, 3], vec![0], vec![0], vec![0]], 3);
        assert_eq!(r.cyclic_neighbor(0, 1, 1), 2);
        assert_eq!(r.cyclic_neighbor(0, 3, 1), 1);
        assert_eq!(r.cyclic_neighbor(0, 1, -1), 3);
    }

    #[test]
    fn random_rotations_valid_and_usually_higher_genus() {
        let g = generators::stacked_triangulation(30, 3);
        let mut zero = 0;
        for seed in 0..10u64 {
            let rot = random_rotation(&g, seed);
            rot.validate_against(&g).unwrap();
            let genus = rot.genus();
            assert!(genus >= 0);
            if genus == 0 {
                zero += 1;
            }
        }
        assert!(
            zero < 10,
            "random rotations of a dense planar graph are rarely planar"
        );
        // trees are planar under EVERY rotation
        let t = generators::random_tree(25, 1);
        for seed in 0..5u64 {
            assert!(random_rotation(&t, seed).euler_check().is_ok());
        }
    }

    #[test]
    fn outerplanarity_known_cases() {
        assert!(is_outerplanar(&generators::cycle(8)));
        assert!(is_outerplanar(&generators::random_maximal_outerplanar(
            25, 7
        )));
        assert!(is_outerplanar(&generators::random_tree(25, 1)));
        assert!(!is_outerplanar(&generators::complete(4)));
        assert!(!is_outerplanar(&generators::complete_bipartite(2, 3)));
        assert!(!is_outerplanar(&generators::grid(3, 3)));
        // K4 and K2,3 subdivisions are not outerplanar either
        assert!(!is_outerplanar(&generators::subdivision_of(
            &generators::complete(4),
            2
        )));
    }
}
