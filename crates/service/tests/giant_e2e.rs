//! The giant-graph smoke: a graph whose single-frame encoding does
//! not fit in [`wire::MAX_FRAME_BYTES`] is streamed in chunks to a
//! three-node ring, its components are proved across the fleet, and
//! the merged outcome is byte-identical to the single-node sequential
//! fold — while the process's peak memory stays bounded.
//!
//! Ignored by default: this is minutes of release-mode proving. The
//! CI distributed smoke runs it explicitly with
//! `cargo test --release --test giant_e2e -- --ignored`.

use dpc_graph::generators;
use dpc_service::client::Client;
use dpc_service::registry::SchemeId;
use dpc_service::wire::{self, Response};
use dpc_service::{serve, ServeConfig, ServerHandle};
use std::time::{Duration, Instant};

/// Peak resident set of this process, in KiB, from `/proc/self/status`.
fn vm_hwm_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .expect("VmHWM line")
}

/// Reserves `n` distinct loopback ports by binding and dropping
/// listeners, so every node can name the others as peers up front.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Twelve disjoint stacked triangulations of 300 000 nodes each, with
/// every identifier lifted past 2^60 so each costs ten uvarint bytes
/// on the wire: ~3.6 M nodes whose single-frame encoding is ~70 MiB —
/// beyond [`wire::MAX_FRAME_BYTES`] — yet whose components still fit
/// ordinary delegation frames.
fn giant_graph() -> dpc_graph::Graph {
    const COMPONENTS: u32 = 12;
    const SIZE: u32 = 300_000;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..COMPONENTS {
        let base = i * SIZE;
        let part = generators::stacked_triangulation(SIZE, i as u64);
        edges.extend(part.edges().iter().map(|e| (e.u + base, e.v + base)));
    }
    let g = dpc_graph::Graph::from_edges(COMPONENTS * SIZE, &edges);
    let ids: Vec<u64> = (0..g.node_count() as u64)
        .map(|i| (1u64 << 60) + 97 * i)
        .collect();
    g.with_ids(ids)
}

/// Streams pre-encoded graph bytes as one pipelined chunk session —
/// the uploader needs the payload only, never a decoded `Graph`, so
/// the test can drop its own copy of the giant instance before any
/// server starts and the memory gate below measures the servers.
fn stream_payload(addr: &str, payload: &[u8]) -> dpc_core::harness::Outcome {
    let mut client = Client::connect_with_retry(addr, Duration::from_secs(5)).unwrap();
    client
        .send_body(&wire::encode_chunk_begin_request(
            1,
            false,
            SchemeId::PLANARITY,
        ))
        .unwrap();
    let mut chunks = 0u64;
    for piece in payload.chunks(wire::DEFAULT_CHUNK_BYTES) {
        client
            .send_body(&wire::encode_chunk_request(1, chunks, piece))
            .unwrap();
        chunks += 1;
    }
    client
        .send_body(&wire::encode_chunk_end_request(
            1,
            chunks,
            payload.len() as u64,
            dpc_service::store::crc32(payload),
        ))
        .unwrap();
    for expect in 0..=chunks {
        match client.recv().unwrap() {
            Response::ChunkAck {
                session: 1,
                received,
            } if received == expect => {}
            other => panic!("ack {expect}: {other:?}"),
        }
    }
    match client.recv().unwrap() {
        Response::CertifiedSummary {
            cached: false,
            outcome,
        } => outcome,
        other => panic!("giant upload: {other:?}"),
    }
}

#[test]
#[ignore = "minutes of release-mode proving; run by the CI distributed smoke"]
fn giant_stream_proves_distributed_and_merges_byte_identically() {
    let t = Instant::now();
    let g = giant_graph();
    eprintln!(
        "giant: generated {} nodes in {:?}",
        g.node_count(),
        t.elapsed()
    );
    let t = Instant::now();
    let mut payload = Vec::new();
    wire::encode_graph(&mut payload, &g);
    eprintln!(
        "giant: encoded {} bytes in {:?}",
        payload.len(),
        t.elapsed()
    );
    assert!(
        payload.len() > wire::MAX_FRAME_BYTES,
        "the instance must not fit one frame: {} bytes",
        payload.len()
    );
    // the uploader streams bytes; it never needs the decoded graph
    // again, so free it — what the gate measures from here on is the
    // servers' reassembly and proving, not the generator's workspace
    drop(g);
    let hwm_before = vm_hwm_kib();

    // ---- single node, one prove thread: the sequential fold ----
    let single = serve(
        "127.0.0.1:0",
        ServeConfig {
            prove_threads: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let reference = stream_payload(&single.addr().to_string(), &payload);
    let single_wall = t0.elapsed();
    eprintln!(
        "giant: single-node sweep {single_wall:?}, VmHWM {} KiB",
        vm_hwm_kib()
    );
    let mut c = Client::connect(single.addr()).unwrap();
    let stats = c.stats().unwrap();
    assert!(
        stats.chunk_chunks >= (payload.len() / wire::DEFAULT_CHUNK_BYTES) as u64,
        "the upload really was chunked: {stats:?}"
    );
    assert!(
        (1..=9).contains(&stats.chunk_carry_peak),
        "reassembly held at most one partial uvarint between chunks: {}",
        stats.chunk_carry_peak
    );
    assert!(stats.outcome_merges >= 1);
    single.shutdown();

    // ---- three-node ring, every node a peer of the others ----
    let addrs = reserve_addrs(3);
    let handles: Vec<ServerHandle> = (0..3)
        .map(|i| {
            let cfg = ServeConfig {
                peers: addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect(),
                ..ServeConfig::default()
            };
            serve(addrs[i].as_str(), cfg).unwrap()
        })
        .collect();
    let t1 = Instant::now();
    let distributed = stream_payload(addrs[0].as_str(), &payload);
    let ring_wall = t1.elapsed();
    eprintln!(
        "giant: ring sweep {ring_wall:?}, VmHWM {} KiB",
        vm_hwm_kib()
    );

    // the identity gate — never skipped: the fleet's merged outcome is
    // byte-identical to the sequential single-node fold
    assert_eq!(distributed, reference, "merged outcome diverged");
    let a = Response::CertifiedSummary {
        cached: false,
        outcome: reference,
    }
    .encode();
    let b = Response::CertifiedSummary {
        cached: false,
        outcome: distributed,
    }
    .encode();
    assert_eq!(a, b, "encodings of the merged outcome differ");

    // fleet evidence: components crossed the ring
    let mut delegated = 0u64;
    for addr in &addrs {
        let mut c = Client::connect(addr.as_str()).unwrap();
        delegated += c.stats().unwrap().delegated_proves;
    }
    assert!(delegated >= 1, "no component prove was delegated");
    for h in handles {
        h.shutdown();
    }

    // peak-memory gate: the servers run in this process, so the peak
    // covers the receiving node's decoded graph (~30x the encoded
    // bytes — adjacency is the expensive part) plus the component
    // subgraphs it materializes to prove or delegate, roughly two
    // resident copies in all (measured: 3.2-4.0 GiB for a 66 MiB
    // payload, varying with how proving interleaves with delegation,
    // and higher on multicore hosts that prove components
    // concurrently). The 96x budget leaves that headroom while still
    // tripping on anything pathological: growth superlinear in the
    // graph, or a reassembly path that copies or hoards encoded
    // chunks per session, blows far past it
    let delta_kib = vm_hwm_kib() - hwm_before;
    let budget_kib = 96 * (payload.len() as u64 / 1024);
    assert!(
        delta_kib < budget_kib,
        "peak memory grew {delta_kib} KiB against a {budget_kib} KiB budget"
    );

    // the speedup gate runs only where parallel speedup is possible
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if cores > 1 {
        assert!(
            ring_wall.as_secs_f64() < single_wall.as_secs_f64(),
            "fleet ({ring_wall:?}) beat the one-thread fold ({single_wall:?})"
        );
    } else {
        eprintln!("speedup gate skipped on a {cores}-core host (identity gate still ran)");
    }
    eprintln!(
        "giant: {} bytes, single {:?}, ring {:?}, {} delegated, peak +{delta_kib} KiB",
        payload.len(),
        single_wall,
        ring_wall,
        delegated
    );
}
