//! Minor machinery used to *validate* the lower-bound instances of
//! Section 4 of the paper.
//!
//! Minor containment is NP-hard in general, so this module provides the
//! exact tools that suffice for the experiments:
//!
//! * [`has_k4_minor`] — exact, near-linear: series-parallel reducibility
//!   (treewidth ≤ 2 ⟺ no `K4` minor).
//! * [`excludes_clique_minor_by_stretch`] — a *certificate*: if some node
//!   layout has edge stretch ≤ k−2 then bandwidth ≤ k−2, hence treewidth
//!   ≤ k−2, hence no `K_k` minor. This is exactly why the paper's paths
//!   of blocks are `K_k`-minor-free (Claim 7).
//! * [`verify_minor_witness`] — checks an explicit branch-set witness
//!   (used for Claim 8's cycles of blocks and Lemma 6's instance `J`).
//! * [`contains_clique_minor_small`] / [`contains_bipartite_minor_small`]
//!   — budgeted branching search for small graphs (cross-checks in tests).
//! * [`KuratowskiKind`] recognition of subdivided `K5` / `K3,3`
//!   (the folklore non-planarity certificates of Section 2).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Exact `K4`-minor test via series-parallel reduction.
///
/// Repeatedly deletes degree-≤1 nodes and suppresses degree-2 nodes
/// (merging parallel edges, dropping loops). The graph has no `K4` minor
/// iff the reduction empties it.
pub fn has_k4_minor(g: &Graph) -> bool {
    let n = g.node_count();
    // neighbor sets as sorted vecs are awkward to mutate; use hash sets
    let mut adj: Vec<std::collections::HashSet<NodeId>> =
        (0..n).map(|v| g.neighbors(v as NodeId).collect()).collect();
    let mut alive = vec![true; n];
    let mut queue: VecDeque<NodeId> = (0..n as u32)
        .filter(|&v| adj[v as usize].len() <= 2)
        .collect();
    let mut alive_count = n;
    while let Some(v) = queue.pop_front() {
        let vu = v as usize;
        if !alive[vu] || adj[vu].len() > 2 {
            continue;
        }
        let nbrs: Vec<NodeId> = adj[vu].iter().copied().collect();
        alive[vu] = false;
        alive_count -= 1;
        for &w in &nbrs {
            adj[w as usize].remove(&v);
        }
        adj[vu].clear();
        if nbrs.len() == 2 {
            let (a, b) = (nbrs[0], nbrs[1]);
            // suppress: add edge a-b (merging a parallel edge if present)
            if a != b && !adj[a as usize].contains(&b) {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
        for &w in &nbrs {
            if alive[w as usize] && adj[w as usize].len() <= 2 {
                queue.push_back(w);
            }
        }
    }
    alive_count != 0
}

/// Certificate of `K_k`-minor-freeness via bandwidth: if every edge
/// `{u, v}` satisfies `|layout[u] − layout[v]| ≤ k − 2` for the given
/// layout (a bijection `V -> 0..n`), then treewidth ≤ k−2 and `G` has no
/// `K_k` minor. Returns `true` when the certificate applies.
///
/// This is sound but not complete: `false` means "certificate does not
/// apply", not "a minor exists".
pub fn excludes_clique_minor_by_stretch(g: &Graph, k: usize, layout: &[u32]) -> bool {
    assert_eq!(layout.len(), g.node_count());
    assert!(k >= 3);
    g.edges().iter().all(|e| {
        let a = layout[e.u as usize] as i64;
        let b = layout[e.v as usize] as i64;
        (a - b).unsigned_abs() as usize <= k - 2
    })
}

/// Verifies an explicit minor witness: `parts` are branch sets that must
/// be pairwise disjoint and each connected in `G`; `required_pairs` lists
/// the pairs `(i, j)` of parts that must be joined by at least one edge.
pub fn verify_minor_witness(
    g: &Graph,
    parts: &[Vec<NodeId>],
    required_pairs: &[(usize, usize)],
) -> bool {
    let n = g.node_count();
    let mut owner = vec![usize::MAX; n];
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            return false;
        }
        for &v in part {
            if (v as usize) >= n || owner[v as usize] != usize::MAX {
                return false; // out of range or overlap
            }
            owner[v as usize] = i;
        }
    }
    // connectivity of each part (BFS restricted to the part)
    for part in parts {
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(part[0]);
        queue.push_back(part[0]);
        let inpart: std::collections::HashSet<NodeId> = part.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            for w in g.neighbors(v) {
                if inpart.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        if seen.len() != part.len() {
            return false;
        }
    }
    // adjacency between required pairs
    let mut pair_ok = std::collections::HashSet::new();
    for e in g.edges() {
        let (a, b) = (owner[e.u as usize], owner[e.v as usize]);
        if a != usize::MAX && b != usize::MAX && a != b {
            pair_ok.insert((a.min(b), a.max(b)));
        }
    }
    required_pairs
        .iter()
        .all(|&(i, j)| pair_ok.contains(&(i.min(j), i.max(j))))
}

/// All pairs `(i, j)`, `i < j < k` — the adjacency requirement of a
/// `K_k` witness.
pub fn clique_pairs(k: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            v.push((i, j));
        }
    }
    v
}

/// Pairs for a `K_{p,q}` witness where parts `0..p` are one side and
/// `p..p+q` the other.
pub fn bipartite_pairs(p: usize, q: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for i in 0..p {
        for j in 0..q {
            v.push((i, p + j));
        }
    }
    v
}

/// Outcome of a budgeted search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchResult {
    /// A witness was found (and re-verified).
    Found,
    /// The search space was exhausted: no minor exists.
    Absent,
    /// The step budget ran out before a conclusion.
    BudgetExhausted,
}

struct MinorSearch<'a> {
    g: &'a Graph,
    /// part index per node, `usize::MAX` = free, `usize::MAX - 1` = discarded
    assign: Vec<usize>,
    parts: Vec<Vec<NodeId>>,
    budget: u64,
}

const FREE: usize = usize::MAX;
const DISCARDED: usize = usize::MAX - 1;

impl<'a> MinorSearch<'a> {
    fn new(g: &'a Graph, nparts: usize, budget: u64) -> Self {
        MinorSearch {
            g,
            assign: vec![FREE; g.node_count()],
            parts: vec![Vec::new(); nparts],
            budget,
        }
    }

    /// True iff every required pair of completed parts touches.
    fn pairs_satisfied(&self, required: &[(usize, usize)]) -> bool {
        required.iter().all(|&(i, j)| {
            self.parts[i]
                .iter()
                .any(|&v| self.g.neighbors(v).any(|w| self.assign[w as usize] == j))
        })
    }

    /// Builds parts `from..` one at a time; each part grows connected.
    /// `min_root` enforces increasing roots inside symmetry classes.
    fn build(
        &mut self,
        part: usize,
        min_root: NodeId,
        sym_end: usize,
        required: &[(usize, usize)],
    ) -> SearchResult {
        if self.budget == 0 {
            return SearchResult::BudgetExhausted;
        }
        self.budget -= 1;
        if part == self.parts.len() {
            return if self.pairs_satisfied(required) {
                SearchResult::Found
            } else {
                SearchResult::Absent
            };
        }
        let n = self.g.node_count() as NodeId;
        let mut exhausted = true;
        for root in min_root..n {
            if self.assign[root as usize] != FREE {
                continue;
            }
            self.assign[root as usize] = part;
            self.parts[part].push(root);
            let next_min = if part + 1 < sym_end { root + 1 } else { 0 };
            match self.grow(part, next_min, sym_end, required) {
                SearchResult::Found => return SearchResult::Found,
                SearchResult::Absent => {}
                SearchResult::BudgetExhausted => exhausted = false,
            }
            self.parts[part].pop();
            self.assign[root as usize] = FREE;
        }
        if exhausted {
            SearchResult::Absent
        } else {
            SearchResult::BudgetExhausted
        }
    }

    /// Either finalizes the current part and moves on, or extends it with
    /// a frontier node.
    fn grow(
        &mut self,
        part: usize,
        next_min: NodeId,
        sym_end: usize,
        required: &[(usize, usize)],
    ) -> SearchResult {
        if self.budget == 0 {
            return SearchResult::BudgetExhausted;
        }
        self.budget -= 1;
        // Option 1: stop growing this part.
        let mut exhausted = true;
        match self.build(part + 1, next_min, sym_end, required) {
            SearchResult::Found => return SearchResult::Found,
            SearchResult::Absent => {}
            SearchResult::BudgetExhausted => exhausted = false,
        }
        // Option 2: add a free frontier node (dedup, ordered to limit
        // duplicate enumeration).
        let mut frontier: Vec<NodeId> = Vec::new();
        for &v in &self.parts[part] {
            for w in self.g.neighbors(v) {
                if self.assign[w as usize] == FREE && !frontier.contains(&w) {
                    frontier.push(w);
                }
            }
        }
        frontier.sort_unstable();
        for w in frontier {
            self.assign[w as usize] = part;
            self.parts[part].push(w);
            match self.grow(part, next_min, sym_end, required) {
                SearchResult::Found => return SearchResult::Found,
                SearchResult::Absent => {}
                SearchResult::BudgetExhausted => exhausted = false,
            }
            self.parts[part].pop();
            // mark discarded for the rest of this part's growth to avoid
            // re-enumerating the same set; restore afterwards
            self.assign[w as usize] = DISCARDED;
        }
        // restore discarded marks
        for v in 0..self.g.node_count() {
            if self.assign[v] == DISCARDED {
                self.assign[v] = FREE;
            }
        }
        if exhausted {
            SearchResult::Absent
        } else {
            SearchResult::BudgetExhausted
        }
    }
}

/// Budgeted branching search for a `K_k` minor. Intended for small
/// graphs (tests and cross-checks); `budget` bounds recursion steps.
pub fn contains_clique_minor_small(g: &Graph, k: usize, budget: u64) -> SearchResult {
    if g.node_count() < k {
        return SearchResult::Absent;
    }
    let required = clique_pairs(k);
    let mut s = MinorSearch::new(g, k, budget);
    let r = s.build(0, 0, k, &required);
    debug_assert!(r != SearchResult::Found || verify_minor_witness(g, &s.parts, &required));
    r
}

/// Budgeted branching search for a `K_{p,q}` minor.
pub fn contains_bipartite_minor_small(g: &Graph, p: usize, q: usize, budget: u64) -> SearchResult {
    if g.node_count() < p + q {
        return SearchResult::Absent;
    }
    let required = bipartite_pairs(p, q);
    let mut s = MinorSearch::new(g, p + q, budget);
    // symmetry only within each side, so seeds increase within 0..p and
    // p..p+q separately; approximate by restarting the min at part p

    s.build(0, 0, p, &required)
}

/// The two Kuratowski graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KuratowskiKind {
    /// The complete graph on five nodes.
    K5,
    /// The complete bipartite graph `K3,3`.
    K33,
}

/// Suppresses all degree-2 nodes (smoothing). Returns `None` if the
/// result would have a self-loop or parallel edge (i.e. `g` was not a
/// subdivision of a simple graph with min degree ≥ 3).
pub fn smooth(g: &Graph) -> Option<Graph> {
    let n = g.node_count();
    let keep: Vec<bool> = (0..n).map(|v| g.degree(v as NodeId) != 2).collect();
    if keep.iter().all(|&k| k) {
        return Some(g.clone());
    }
    if !keep.iter().any(|&k| k) {
        return None; // a disjoint union of cycles
    }
    // map kept nodes to 0..n'
    let mut newid = vec![u32::MAX; n];
    let mut cnt = 0u32;
    for v in 0..n {
        if keep[v] {
            newid[v] = cnt;
            cnt += 1;
        }
    }
    let mut b = crate::graph::GraphBuilder::new(cnt);
    let mut visited_edge = vec![false; g.edge_count()];
    for v in 0..n as u32 {
        if !keep[v as usize] {
            continue;
        }
        for &(mut w, mut e) in g.adjacency(v) {
            if visited_edge[e as usize] {
                continue;
            }
            // walk through degree-2 nodes until a kept node
            visited_edge[e as usize] = true;
            let mut prev = v;
            while !keep[w as usize] {
                let nxt = g
                    .adjacency(w)
                    .iter()
                    .copied()
                    .find(|&(x, _)| x != prev)
                    .expect("degree-2 node has another neighbor");
                prev = w;
                w = nxt.0;
                e = nxt.1;
                visited_edge[e as usize] = true;
            }
            if w == v {
                return None; // smoothing created a self-loop
            }
            match b.add_edge(newid[v as usize], newid[w as usize]) {
                Ok(_) => {}
                Err(_) => return None, // parallel edge after smoothing
            }
        }
    }
    Some(b.build())
}

/// Recognizes whether `g` is a subdivision of `K5` or `K3,3`.
pub fn kuratowski_kind(g: &Graph) -> Option<KuratowskiKind> {
    let s = smooth(g)?;
    let n = s.node_count();
    let m = s.edge_count();
    if n == 5 && m == 10 && (0..5).all(|v| s.degree(v as NodeId) == 4) {
        return Some(KuratowskiKind::K5);
    }
    if n == 6 && m == 9 && (0..6).all(|v| s.degree(v as NodeId) == 3) {
        // check bipartite completeness: neighbors of node 0 form one side
        let side: Vec<NodeId> = s.neighbors(0).collect();
        let other: Vec<NodeId> = (0..6u32).filter(|v| !side.contains(v)).collect();
        if other.len() == 3
            && other
                .iter()
                .all(|&u| side.iter().all(|&w| s.has_edge(u, w)))
        {
            return Some(KuratowskiKind::K33);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn k4_minor_exact_on_known_families() {
        assert!(!has_k4_minor(&generators::random_tree(60, 1)));
        assert!(!has_k4_minor(&generators::cycle(20)));
        assert!(!has_k4_minor(&generators::random_series_parallel(60, 2)));
        assert!(!has_k4_minor(&generators::random_maximal_outerplanar(
            30, 3
        )));
        assert!(has_k4_minor(&generators::complete(4)));
        assert!(has_k4_minor(&generators::wheel(7)));
        assert!(has_k4_minor(&generators::grid(3, 3)));
        assert!(has_k4_minor(&generators::subdivision_of(
            &generators::complete(4),
            3
        )));
    }

    #[test]
    fn stretch_certificate() {
        // a path has stretch 1: excludes K3 and up
        let p = generators::path(20);
        let layout: Vec<u32> = (0..20).collect();
        assert!(excludes_clique_minor_by_stretch(&p, 3, &layout));
        // K4 itself cannot be certified K4-free
        let k4 = generators::complete(4);
        let l4: Vec<u32> = (0..4).collect();
        assert!(!excludes_clique_minor_by_stretch(&k4, 4, &l4));
    }

    #[test]
    fn witness_verification() {
        let g = generators::cycle(6);
        // contract to a triangle: parts {0,1},{2,3},{4,5}
        let parts = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        assert!(verify_minor_witness(&g, &parts, &clique_pairs(3)));
        // a disconnected part is rejected
        let bad = vec![vec![0, 2], vec![3], vec![4, 5]];
        assert!(!verify_minor_witness(&g, &bad, &clique_pairs(3)));
        // overlap rejected
        let overlap = vec![vec![0, 1], vec![1, 2], vec![4, 5]];
        assert!(!verify_minor_witness(&g, &overlap, &clique_pairs(3)));
    }

    #[test]
    fn small_search_finds_k5_in_k5() {
        let g = generators::complete(5);
        assert_eq!(
            contains_clique_minor_small(&g, 5, 1_000_000),
            SearchResult::Found
        );
    }

    #[test]
    fn small_search_finds_k5_in_subdivision() {
        let g = generators::k5_subdivision(1);
        assert_eq!(
            contains_clique_minor_small(&g, 5, 50_000_000),
            SearchResult::Found
        );
    }

    #[test]
    fn small_search_rejects_k4_in_cycle() {
        let g = generators::cycle(8);
        assert_eq!(
            contains_clique_minor_small(&g, 4, 50_000_000),
            SearchResult::Absent
        );
    }

    #[test]
    fn small_search_bipartite() {
        let g = generators::complete_bipartite(3, 3);
        assert_eq!(
            contains_bipartite_minor_small(&g, 3, 3, 10_000_000),
            SearchResult::Found
        );
        let c = generators::cycle(7);
        assert_eq!(
            contains_bipartite_minor_small(&c, 2, 3, 50_000_000),
            SearchResult::Absent
        );
    }

    #[test]
    fn kuratowski_recognition() {
        assert_eq!(
            kuratowski_kind(&generators::complete(5)),
            Some(KuratowskiKind::K5)
        );
        assert_eq!(
            kuratowski_kind(&generators::k5_subdivision(4)),
            Some(KuratowskiKind::K5)
        );
        assert_eq!(
            kuratowski_kind(&generators::k33_subdivision(2)),
            Some(KuratowskiKind::K33)
        );
        assert_eq!(kuratowski_kind(&generators::complete(4)), None);
        assert_eq!(kuratowski_kind(&generators::grid(3, 3)), None);
    }

    #[test]
    fn smoothing_path_yields_edge_or_fails() {
        // a path smooths to a single edge between its endpoints
        let p = generators::path(6);
        let s = smooth(&p).unwrap();
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.edge_count(), 1);
        // a cycle smooths to nothing simple
        assert!(smooth(&generators::cycle(5)).is_none());
    }
}
