//! PLS for the class of **trees** (connected acyclic graphs).
//!
//! The spanning-tree component already proves a spanning tree exists; a
//! graph *is* a tree iff additionally every incident edge is a tree edge
//! (parent or child), which each node checks locally. Another §2-style
//! warm-up exercising the shared substrate.

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use crate::schemes::tree_base::{build_tree_certs, check_tree, TreeCert};
use dpc_graph::Graph;
use dpc_runtime::bits::BitWriter;
use dpc_runtime::{NodeCtx, Payload};

/// PLS for the class of trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeScheme;

impl TreeScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        TreeScheme
    }
}

impl ProofLabelingScheme for TreeScheme {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        if g.edge_count() != g.node_count() - 1 {
            return Err(ProveError::NotInClass("trees"));
        }
        let tree = dpc_graph::traversal::bfs_spanning_tree(g, 0);
        let certs = build_tree_certs(g, &tree)
            .into_iter()
            .map(|c| {
                let mut w = BitWriter::new();
                c.encode(&mut w);
                Payload::from_writer(w)
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        let parse = |p: &Payload| -> Option<TreeCert> {
            let mut r = p.reader();
            let c = TreeCert::decode(&mut r).ok()?;
            (r.remaining() == 0).then_some(c)
        };
        let Some(own) = parse(own) else { return false };
        let nbs: Option<Vec<TreeCert>> = neighbors.iter().map(parse).collect();
        let Some(nbs) = nbs else { return false };
        let Some(info) = check_tree(ctx, &own, &nbs) else {
            return false;
        };
        // tree class: EVERY incident edge must be a tree edge
        let tree_edges = info.children_ports.len() + usize::from(info.parent_port.is_some());
        tree_edges == ctx.degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_trees() {
        for g in [
            generators::path(20),
            generators::star(20),
            generators::random_tree(100, 3),
            generators::caterpillar(15, 30, 4),
        ] {
            let out = run_pls(&TreeScheme, &g).unwrap();
            assert!(out.all_accept());
            assert_eq!(out.rounds, 1);
        }
    }

    #[test]
    fn declines_graphs_with_cycles() {
        assert!(TreeScheme.prove(&generators::cycle(5)).is_err());
        assert!(TreeScheme.prove(&generators::grid(3, 3)).is_err());
    }

    #[test]
    fn replay_tree_certs_on_cycle_rejected() {
        // the strongest attack: certificates of the spanning tree of the
        // cycle, replayed on the cycle itself — the non-tree edge's
        // endpoints see an edge that is neither parent nor child
        let cyc = generators::cycle(9);
        let a = TreeScheme.prove(&cyc.edge_subgraph(|e, _| e != 0)).unwrap();
        let out = run_with_assignment(&TreeScheme, &cyc, &a);
        assert!(!out.all_accept());
        assert!(out.reject_count() >= 2);
    }

    #[test]
    fn certificates_are_logarithmic() {
        let g = generators::random_tree(10_000, 1);
        let a = TreeScheme.prove(&g).unwrap();
        assert!(a.max_bits() < 200);
    }
}
