//! E13/E2 verifier-side bench: the 1-round distributed verification of
//! the planarity PLS, and of the baselines, through the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_core::harness::run_with_assignment;
use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_core::schemes::universal::UniversalScheme;
use dpc_graph::generators;

fn bench_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier");
    group.sample_size(10);
    for &n in &[1024u32, 8192] {
        let g = generators::stacked_triangulation(n, 9);
        let scheme = PlanarityScheme::new();
        let a = scheme.prove(&g).unwrap();
        group.bench_with_input(BenchmarkId::new("planarity_pls", n), &g, |b, g| {
            b.iter(|| {
                let out = run_with_assignment(&scheme, std::hint::black_box(g), &a);
                assert!(out.all_accept());
                out.rounds
            })
        });
    }
    // the universal baseline re-runs a sequential planarity test per node:
    // quadratic total work, benchmarked at a small size only
    let g = generators::stacked_triangulation(128, 9);
    let uni = UniversalScheme::new();
    let a = uni.prove(&g).unwrap();
    group.bench_with_input(BenchmarkId::new("universal_pls", 128u32), &g, |b, g| {
        b.iter(|| run_with_assignment(&uni, std::hint::black_box(g), &a).rounds)
    });
    group.finish();
}

criterion_group!(benches, bench_verifier);
criterion_main!(benches);
