//! Dual graphs of embedded planar graphs.
//!
//! Given a rotation system, the dual has one vertex per face and one
//! edge per primal edge, joining the two faces the edge borders (a loop
//! when a bridge borders the same face twice). Duals of simple graphs
//! are multigraphs, so this module keeps its own representation instead
//! of [`dpc_graph::Graph`].

use crate::embedding::RotationSystem;
use dpc_graph::NodeId;
use std::collections::HashMap;

/// The dual of an embedded graph.
#[derive(Debug, Clone)]
pub struct DualGraph {
    /// Number of faces (= dual vertices).
    pub face_count: usize,
    /// For each primal edge `{u, v}` (canonical order), the pair of
    /// faces it borders (equal for bridges).
    pub edge_faces: Vec<((NodeId, NodeId), (u32, u32))>,
    /// Length (number of half-edges) of each face.
    pub face_len: Vec<usize>,
}

impl DualGraph {
    /// Degree of a dual vertex (face), counting loops twice.
    pub fn face_degree(&self, f: u32) -> usize {
        self.edge_faces
            .iter()
            .map(|&(_, (a, b))| usize::from(a == f) + usize::from(b == f))
            .sum()
    }

    /// True if the dual has a loop (some primal edge is a bridge).
    pub fn has_loop(&self) -> bool {
        self.edge_faces.iter().any(|&(_, (a, b))| a == b)
    }
}

/// Builds the dual from a rotation system.
pub fn dual(rot: &RotationSystem) -> DualGraph {
    let faces = rot.faces();
    let mut face_of_half_edge: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    for (fi, face) in faces.iter().enumerate() {
        for &(u, v) in face {
            face_of_half_edge.insert((u, v), fi as u32);
        }
    }
    let mut edge_faces = Vec::new();
    let mut seen: HashMap<(NodeId, NodeId), ()> = HashMap::new();
    for (&(u, v), &f1) in &face_of_half_edge {
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key, ()).is_some() {
            continue;
        }
        let f2 = face_of_half_edge[&(v, u)];
        edge_faces.push((key, (f1.min(f2), f1.max(f2))));
    }
    edge_faces.sort_unstable();
    DualGraph {
        face_count: faces.len(),
        edge_faces,
        face_len: faces.iter().map(|f| f.len()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::planarity;
    use dpc_graph::generators;

    fn embed(g: &dpc_graph::Graph) -> RotationSystem {
        planarity(g).into_embedding().expect("planar input")
    }

    #[test]
    fn cycle_dual_is_two_faces_with_parallel_edges() {
        let g = generators::cycle(7);
        let d = dual(&embed(&g));
        assert_eq!(d.face_count, 2);
        assert_eq!(d.edge_faces.len(), 7);
        // every primal edge borders both faces
        assert!(d.edge_faces.iter().all(|&(_, (a, b))| (a, b) == (0, 1)));
        assert_eq!(d.face_degree(0), 7);
        assert!(!d.has_loop());
    }

    #[test]
    fn tree_dual_is_all_loops() {
        let g = generators::random_tree(20, 1);
        let d = dual(&embed(&g));
        assert_eq!(d.face_count, 1);
        assert!(d.has_loop());
        assert!(d.edge_faces.iter().all(|&(_, (a, b))| a == b));
        assert_eq!(d.face_degree(0), 2 * g.edge_count());
    }

    #[test]
    fn triangulation_dual_is_3_regular() {
        let g = generators::stacked_triangulation(40, 5);
        let d = dual(&embed(&g));
        assert_eq!(d.face_count, 2 * 40 - 4, "maximal planar: f = 2n - 4");
        assert!(d.face_len.iter().all(|&l| l == 3), "all faces triangles");
        for f in 0..d.face_count as u32 {
            assert_eq!(d.face_degree(f), 3, "dual of a triangulation is cubic");
        }
        assert!(!d.has_loop());
    }

    #[test]
    fn dual_edge_count_equals_primal() {
        for seed in 0..4u64 {
            let g = generators::random_planar(50, 0.6, seed);
            let d = dual(&embed(&g));
            assert_eq!(d.edge_faces.len(), g.edge_count());
            // Euler: n - m + f = 2
            assert_eq!(
                g.node_count() as i64 - g.edge_count() as i64 + d.face_count as i64,
                2
            );
        }
    }

    #[test]
    fn face_lengths_sum_to_twice_edges() {
        let g = generators::grid(5, 6);
        let d = dual(&embed(&g));
        let total: usize = d.face_len.iter().sum();
        assert_eq!(total, 2 * g.edge_count());
        // a grid has (rows-1)(cols-1) unit squares + 1 outer face
        assert_eq!(d.face_count, 4 * 5 + 1);
    }
}
