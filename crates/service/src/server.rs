//! The long-running certification server.
//!
//! Two interchangeable connection front ends feed one worker pool
//! (the wire protocol and response bytes are identical under both):
//!
//! * **event loop** (default where epoll exists; `dpc serve
//!   --event-loop`): the readiness-driven reactor in the `reactor`
//!   module — nonblocking sockets, per-connection state machines,
//!   request pipelining, batched vectored writes. Scales to tens of
//!   thousands of connections on a handful of threads.
//! * **threaded** (`dpc serve --threaded`, and the fallback on
//!   targets without epoll): two threads per connection, shown below.
//!
//! Threaded architecture (one box per thread kind):
//!
//! ```text
//!                 ┌────────────┐   bounded   ┌──────────────┐
//!  TCP ──accept──▶│ conn reader │──▶ queue ──▶│ worker pool  │
//!        thread   │ (per conn)  │  (Condvar)  │  · cache     │
//!                 └────────────┘             │  · BatchRunner│
//!                        │                    └──────┬───────┘
//!                        ▼                           │ (seq, frame)
//!                 ┌────────────┐    reorder by seq   │
//!                 │ conn writer │◀────────────────────┘
//!                 └────────────┘
//! ```
//!
//! * In threaded mode every connection gets a reader thread (parses
//!   frames, tags each request with a per-connection sequence
//!   number, pushes into the shared bounded queue — blocking when
//!   full, which back-pressures the TCP socket) and a writer thread
//!   (receives `(seq, frame)` pairs from whichever worker finished,
//!   reorders, and writes responses in request order). The reactor
//!   implements the same stages — and the same reorder-by-seq
//!   contract — as nonblocking state transitions instead of parked
//!   threads.
//! * Workers drain the queue. A popped Certify request greedily
//!   collects the other Certify requests currently queued *for the
//!   same scheme* (up to `batch_max`), resolves the scheme once
//!   against the [`SchemeRegistry`], and runs the cache misses
//!   through the existing [`BatchRunner`] in one parallel batch,
//!   deduplicating identical graphs within the batch.
//! * The cache is keyed by [`dpc_graph::canon::hash_bytes`] over the
//!   scheme id followed by the canonical wire encoding (one sort per
//!   request), with the stored bytes compared on every hit as a
//!   collision *and cross-scheme* guard; a hit memcpys the entry's
//!   pre-encoded suffix — the prover never runs twice for the same
//!   `(scheme, graph)` pair, and no scheme can see another's entries.
//! * With `--store-dir` the cache is the hot tier of a
//!   [`TieredCache`]: inserts write behind to an append-only segment
//!   store, hot evictions demote instead of vanish, cold hits promote
//!   back, the store is warm-loaded on boot (so restarts keep their
//!   hits) and fsynced on graceful shutdown.

use crate::cache::{CacheConfig, CacheEntry, CertCache, ProveResult};
use crate::cluster;
use crate::gen;
use crate::metrics::{
    prometheus_text, Metrics, SchemeStats, SlowLog, SlowLogEntry, StatsSnapshot, Trace,
};
use crate::registry::{SchemeEntry, SchemeId, SchemeRegistry};
use crate::store::{crc32_update, SegmentConfig, SegmentStore, StoreRecord, TieredCache};
use crate::wire::{self, CheckVerdict, Request, Response, SoundnessLine, WireError};
use dpc_core::adversary::soundness_report;
use dpc_core::batch::BatchRunner;
use dpc_core::harness::{certify_pls, Outcome};
use dpc_core::scheme::{Assignment, ProveError};
use dpc_graph::canon::hash_bytes;
use dpc_graph::minors::KuratowskiKind;
use dpc_graph::Graph;
use dpc_interactive::dmam::{challenge_from_seed, run_forged, DmamPlanarity};
use dpc_interactive::fingerprint;
use dpc_planar::kuratowski::extract_kuratowski;
use dpc_planar::lr::{planarity, Planarity};
use dpc_runtime::{get_uvarint, put_uvarint, NodeCtx, Payload};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server sizing. Defaults suit an interactive localhost deployment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request-processing workers.
    pub workers: usize,
    /// Threads the [`BatchRunner`] uses to prove a batch of misses.
    pub prove_threads: usize,
    /// Bounded request-queue capacity (back-pressure threshold).
    pub queue_capacity: usize,
    /// Max Certify requests folded into one worker batch.
    pub batch_max: usize,
    /// Certificate-cache (hot tier) sizing.
    pub cache: CacheConfig,
    /// Optional persistent cold tier (`dpc serve --store-dir`): the
    /// cache warm-loads from it on boot, writes behind on insert, and
    /// fsyncs it on graceful shutdown.
    pub store: Option<SegmentConfig>,
    /// Use the epoll event-loop front end (`--event-loop`). Defaults
    /// to true where the platform supports it; when false — or when
    /// epoll is unavailable — connections get the thread-per-
    /// connection front end (`--threaded`).
    pub event_loop: bool,
    /// Reactor threads when `event_loop` is set (loop 0 owns the
    /// listener and deals connections round-robin).
    pub event_loops: usize,
    /// Reap event-loop connections quiet for this long (no bytes in
    /// either direction, no response owed). Zero disables reaping.
    /// Threaded mode does not reap (its threads park in blocking
    /// reads).
    pub idle_timeout: Duration,
    /// Serve Prometheus text metrics over plain HTTP on this address
    /// (`dpc serve --metrics-addr`). `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Requests whose summed stage time crosses this threshold leave
    /// a full stage breakdown in the slow log (`dpc slowlog`). Zero
    /// disables the log.
    pub slow_ms: u64,
    /// Peer node addresses for the anti-entropy sweep (`dpc serve
    /// --peers`). Every second or so the store maintenance thread
    /// asks each peer for its store key digests (StoreList) and
    /// streams it the records it lacks (StorePush) — so a node that
    /// restarted empty converges back to the fleet's certificate set
    /// without an offline `dpc store merge`. Empty disables the
    /// sweep; the server still *absorbs* pushes either way.
    pub peers: Vec<String>,
    /// Run the randomized store auditor (`dpc serve --audit`): every
    /// few maintenance ticks the store thread samples stored
    /// certificates, re-runs their per-node verifier predicates on a
    /// random vertex subset plus a fingerprint cross-check of the
    /// stored bytes, and quarantines records that are CRC-valid but
    /// fail re-verification — the corruption class `dpc store
    /// verify` structurally cannot catch. A quarantined key is simply
    /// re-proved on its next query.
    pub audit: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ServeConfig {
            workers: cores.max(2),
            prove_threads: cores,
            queue_capacity: 1024,
            batch_max: 32,
            cache: CacheConfig::default(),
            store: None,
            event_loop: epoll::supported(),
            event_loops: 1,
            idle_timeout: Duration::from_secs(60),
            metrics_addr: None,
            slow_ms: 1000,
            peers: Vec::new(),
            audit: false,
        }
    }
}

/// Microseconds of a duration, saturating.
pub(crate) fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// One finished response on its way to a threaded connection's
/// writer: the frame body, when the worker finished it (start of the
/// reorder-wait stage), and the request's trace (`None` for error
/// responses synthesized outside the worker pool).
pub(crate) struct Done {
    pub(crate) seq: u64,
    pub(crate) body: Vec<u8>,
    pub(crate) finished: Instant,
    pub(crate) trace: Option<Trace>,
}

/// Where a finished response goes: the per-connection writer thread
/// (threaded front end) or a reactor loop's completion inbox (event
/// loop). Workers are agnostic — both front ends share the queue.
pub(crate) enum ReplyTo {
    /// Channel to a threaded connection's writer.
    Channel(mpsc::Sender<Done>),
    /// Completion inbox of the reactor loop owning connection `conn`.
    Reactor {
        /// Loop-local connection token.
        conn: u64,
        /// The owning loop's inbox (wakes its epoll set on send).
        inbox: Arc<crate::reactor::Inbox>,
    },
}

impl ReplyTo {
    fn send(&self, seq: u64, body: Vec<u8>, trace: Option<Trace>) {
        match self {
            // a dead connection just drops the response, same as the
            // reactor routing a completion to a closed token
            ReplyTo::Channel(tx) => drop(tx.send(Done {
                seq,
                body,
                finished: Instant::now(),
                trace,
            })),
            ReplyTo::Reactor { conn, inbox } => inbox.send(*conn, seq, body, trace),
        }
    }
}

/// A job: one decoded request plus everything needed to answer it.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) seq: u64,
    pub(crate) reply: ReplyTo,
    pub(crate) received: Instant,
    /// When a worker dequeued the job (initialized to `received`;
    /// stamped in `worker_loop`). `received → dequeued` is the
    /// queue-wait stage, `dequeued → finish` the service stage.
    pub(crate) dequeued: Instant,
    /// The request's trace, carried to the final write.
    pub(crate) trace: Trace,
}

/// Bounded MPMC queue (Mutex + two Condvars — std has no bounded
/// channel with multiple consumers).
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    closed: AtomicBool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
        }
    }

    /// Blocks while the queue is full. Returns `false` if the queue
    /// closed (server shutting down) and the job was dropped.
    fn push(&self, job: Job) -> bool {
        let mut jobs = self.jobs.lock().expect("queue poisoned");
        while jobs.len() >= self.capacity {
            if self.closed.load(Ordering::Acquire) {
                return false;
            }
            jobs = self.not_full.wait(jobs).expect("queue poisoned");
        }
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        jobs.push_back(job);
        drop(jobs);
        self.not_empty.notify_one();
        true
    }

    /// Nonblocking push for the reactor (its loop must never park on
    /// the queue). `Err` returns the job — full queue or shutdown —
    /// and the caller parks it in the connection's stalled slot.
    #[allow(clippy::result_large_err)] // Err *is* the handed-back job
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        if self.closed.load(Ordering::Acquire) {
            return Err(job);
        }
        let mut jobs = self.jobs.lock().expect("queue poisoned");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops one job; if it is a Certify, greedily extracts up to
    /// `batch_max - 1` more Certify jobs *for the same scheme* from
    /// anywhere in the queue (other request kinds, and certifies for
    /// other schemes, keep their positions — batches are homogeneous
    /// per scheme so one registry lookup and one `BatchRunner` call
    /// serve the whole batch). Returns `None` on shutdown.
    fn pop_batch(&self, batch_max: usize) -> Option<Vec<Job>> {
        let mut jobs = self.jobs.lock().expect("queue poisoned");
        loop {
            if let Some(first) = jobs.pop_front() {
                let mut batch = vec![first];
                if let Request::Certify { scheme, .. } = batch[0].req {
                    let mut i = 0;
                    while i < jobs.len() && batch.len() < batch_max {
                        if matches!(
                            jobs[i].req,
                            Request::Certify { scheme: s, .. } if s == scheme
                        ) {
                            batch.push(jobs.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                }
                drop(jobs);
                self.not_full.notify_all();
                return Some(batch);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            jobs = self.not_empty.wait(jobs).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Jobs waiting right now (the queue-depth gauge).
    pub(crate) fn len(&self) -> usize {
        self.jobs.lock().expect("queue poisoned").len()
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) cache: TieredCache,
    /// Arc'd so reactor inboxes can count wakeups without a
    /// reference cycle through `Shared`.
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) queue: JobQueue,
    pub(crate) registry: SchemeRegistry,
    pub(crate) runner: BatchRunner,
    pub(crate) shutdown: AtomicBool,
    pub(crate) slow: SlowLog,
    /// The bound listen address as a string — this node's identity in
    /// the rendezvous ring formed by `peers ∪ {self}`, so composite
    /// certifies partition components the same way every node would.
    pub(crate) self_addr: String,
}

impl Shared {
    /// The per-scheme metrics slot of a registered id.
    fn scheme_metrics(&self, id: SchemeId) -> Option<&crate::metrics::SchemeMetrics> {
        self.registry
            .slot(id)
            .map(|slot| &self.metrics.per_scheme[slot])
    }
}

/// Completes a trace at write time: given the measured reorder-wait
/// and write-flush, records a slow-log entry if the summed stage time
/// crossed the threshold. Called by both front ends after the frame
/// was handed to the kernel.
pub(crate) fn trace_written(shared: &Shared, trace: &Trace, reorder_us: u64, write_us: u64) {
    let total_us =
        trace.read_decode_us + trace.queue_wait_us + trace.service_us + reorder_us + write_us;
    let threshold = shared.slow.threshold_us();
    if threshold > 0 && total_us >= threshold {
        shared.slow.record(SlowLogEntry {
            trace_id: trace.trace_id,
            kind: trace.kind,
            scheme: trace.scheme,
            age_us: 0,
            total_us,
            read_decode_us: trace.read_decode_us,
            queue_wait_us: trace.queue_wait_us,
            service_us: trace.service_us,
            reorder_wait_us: reorder_us,
            write_flush_us: write_us,
        });
    }
}

/// The error response for a syntactically valid but unregistered
/// scheme id — a normal answer on a healthy connection, never a
/// panic or a dropped stream. `count` is the number of requests this
/// response will answer (a whole certify batch shares one), so the
/// errors counter tracks error *responses* regardless of batching.
fn unknown_scheme(shared: &Shared, id: SchemeId, count: u64) -> Response {
    shared.metrics.errors.fetch_add(count, Ordering::Relaxed);
    Response::Error(format!(
        "unknown scheme id {id} (this server registers: {})",
        shared
            .registry
            .entries()
            .iter()
            .map(|e| format!("{} = {}", e.id, e.name))
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] or [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Threaded mode: the accept thread. Event-loop mode: reactor
    /// loop 0 (which owns the listener).
    accept: JoinHandle<()>,
    /// Event-loop mode: reactor loops 1..n.
    extra_loops: Vec<JoinHandle<()>>,
    /// Event-loop mode: every loop's inbox (to wake them at
    /// shutdown). Empty in threaded mode.
    inboxes: Vec<Arc<crate::reactor::Inbox>>,
    workers: Vec<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
    /// The Prometheus exposition listener, when configured.
    metrics_thread: Option<JoinHandle<()>>,
    metrics_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus endpoint address, when configured
    /// (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A stats snapshot without going through the wire.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// The retained slow-request entries without going through the
    /// wire (newest first).
    pub fn slowlog(&self) -> Vec<SlowLogEntry> {
        self.shared.slow.snapshot()
    }

    /// The scheme registry this server routes by.
    pub fn registry(&self) -> &SchemeRegistry {
        &self.shared.registry
    }

    /// Stops accepting, drains the queue, and joins all server
    /// threads. In-flight requests get their responses, and the
    /// persistent store (if any) is fsynced — the graceful half of
    /// warm restarts (an ungraceful kill loses at most the records
    /// the OS had not yet written back).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue.close();
        if self.inboxes.is_empty() {
            // unblock the threaded accept loop's blocking accept
            let _ = TcpStream::connect(self.addr);
        }
        // unblock reactor loops parked in epoll_wait
        for inbox in &self.inboxes {
            inbox.wake();
        }
        let _ = self.accept.join();
        for lp in self.extra_loops {
            let _ = lp.join();
        }
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(f) = self.flusher {
            let _ = f.join();
        }
        if let Some(m) = self.metrics_thread {
            let _ = m.join();
        }
        let _ = self.shared.cache.flush();
    }

    /// Blocks until the accept loop exits (i.e. forever, for a
    /// foreground `dpc serve`).
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// Binds `addr` and starts the accept loop and worker pool, serving
/// every scheme of [`SchemeRegistry::standard`].
pub fn serve<A: ToSocketAddrs>(addr: A, cfg: ServeConfig) -> io::Result<ServerHandle> {
    serve_with_registry(addr, cfg, SchemeRegistry::standard())
}

/// Like [`serve`], with an explicit scheme registry (`dpc serve
/// --schemes`).
pub fn serve_with_registry<A: ToSocketAddrs>(
    addr: A,
    cfg: ServeConfig,
    registry: SchemeRegistry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // the hot tier, optionally fronting a persistent cold tier; a
    // warm restart replays the store into the hot tier (bounded by
    // its byte budget) so the first post-restart query is already a
    // hit and the prover never re-runs for a stored graph
    let hot = CertCache::new(cfg.cache);
    let cache = match &cfg.store {
        Some(store_cfg) => {
            let store = SegmentStore::open(store_cfg.clone())?;
            TieredCache::with_cold(hot, Arc::new(store))
        }
        None => TieredCache::hot_only(hot),
    };
    cache.warm_load(cfg.cache.byte_budget);
    let shared = Arc::new(Shared {
        cache,
        metrics: Arc::new(Metrics::with_scheme_slots(registry.len())),
        queue: JobQueue::new(cfg.queue_capacity),
        registry,
        runner: BatchRunner::with_threads(cfg.prove_threads),
        slow: SlowLog::new(cfg.slow_ms.saturating_mul(1000)),
        cfg,
        shutdown: AtomicBool::new(false),
        self_addr: addr.to_string(),
    });
    let workers = (0..shared.cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("dpc-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    // the connection front end: reactor loops where requested and
    // possible, otherwise one blocking accept thread spawning two
    // threads per connection. Workers never know which one runs.
    let mut inboxes = Vec::new();
    let mut extra_loops = Vec::new();
    let accept = if shared.cfg.event_loop && epoll::supported() {
        let (mut loops, loop_inboxes) = crate::reactor::spawn(&shared, listener)?;
        inboxes = loop_inboxes;
        let first = loops.remove(0);
        extra_loops = loops;
        first
    } else {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("dpc-accept".into())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn accept loop")
    };
    // a foreground `dpc serve` only ever dies by signal, so graceful
    // shutdown alone cannot be the durability story: a background
    // flusher fsyncs the store every few seconds, bounding what a
    // kill -9 (or power loss right after a SIGTERM) can lose
    let flusher = (shared.cache.cold().is_some()
        || !shared.cfg.peers.is_empty()
        || shared.cfg.audit)
        .then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dpc-store-flush".into())
                .spawn(move || {
                    let mut ticks = 0u32;
                    while !shared.shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(250));
                        ticks += 1;
                        if ticks.is_multiple_of(20) {
                            // every ~5 s: compaction (if garbage piled
                            // up) and fsync — both deliberately off the
                            // request path; an fsync with nothing dirty
                            // is cheap
                            let _ = shared.cache.maintain();
                            let _ = shared.cache.flush();
                        }
                        if !shared.cfg.peers.is_empty() && ticks.is_multiple_of(4) {
                            // every ~1 s: anti-entropy — ask each peer
                            // for its key digests and stream it whatever
                            // it lacks; converged peers exchange only
                            // the digest list, never a record
                            anti_entropy_sweep(&shared);
                        }
                        if shared.cfg.audit && ticks.is_multiple_of(2) {
                            // every ~0.5 s: sample stored certificates
                            // and re-verify them; the sweep index seeds
                            // the sampler, so restarts re-cover the
                            // store from the top instead of resuming a
                            // random walk
                            let sweep = shared.metrics.audit_sweeps.load(Ordering::Relaxed);
                            audit_pass(
                                &shared,
                                AUDIT_SWEEP_SAMPLES,
                                fingerprint::derive(AUDIT_SEED_BASE, sweep),
                            );
                        }
                    }
                })
                .expect("spawn store flusher")
        });
    // the Prometheus exposition endpoint: a plain-HTTP listener off
    // the request path, polled nonblocking so shutdown never hangs
    // on a quiet socket
    let (metrics_thread, metrics_addr) = match &shared.cfg.metrics_addr {
        Some(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let bound = listener.local_addr()?;
            let shared = Arc::clone(&shared);
            let thread = std::thread::Builder::new()
                .name("dpc-metrics".into())
                .spawn(move || metrics_loop(listener, &shared))
                .expect("spawn metrics listener");
            (Some(thread), Some(bound))
        }
        None => (None, None),
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept,
        extra_loops,
        inboxes,
        workers,
        flusher,
        metrics_thread,
        metrics_addr,
    })
}

/// Accept loop of the Prometheus endpoint. Scrapes are rare and the
/// payload is small, so requests are handled inline; the listener is
/// nonblocking so the loop notices shutdown within one poll tick.
fn metrics_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let _ = listener.set_nonblocking(true);
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_scrape(stream, shared);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Answers one HTTP request on the metrics endpoint — a hand-rolled
/// HTTP/1.1 responder (GET only, `Connection: close`), so standard
/// scrapers work without pulling in an HTTP stack.
fn serve_scrape(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&chunk[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
            break;
        }
    }
    let line = req
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
        )
    } else if path == "/metrics" || path == "/" {
        ("200 OK", prometheus_text(&snapshot(shared)))
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("dpc-conn".into())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// Process-wide connection counter: the high 32 bits of every trace
/// id, shared by both front ends so ids stay unique across them.
pub(crate) static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared
        .metrics
        .conns_accepted
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.conns_open.fetch_add(1, Ordering::Relaxed);
    handle_connection_inner(stream, shared);
    shared.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
}

fn handle_connection_inner(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn_id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = mpsc::channel::<Done>();
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("dpc-conn-writer".into())
            .spawn(move || writer_loop(write_half, rx, &shared))
            .expect("spawn connection writer")
    };
    let local_done = |seq, body| Done {
        seq,
        body,
        finished: Instant::now(),
        trace: None,
    };
    let mut reader = BufReader::new(stream);
    let mut sessions = ChunkSessions::default();
    let mut interactive = InteractiveSessions::default();
    let mut seq = 0u64;
    loop {
        let body = match wire::read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) | Err(WireError::Io(_)) => break,
            Err(e) => {
                // framing itself broke (e.g. oversized frame): answer
                // once and drop the connection, the stream is desynced
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(local_done(seq, Response::Error(e.to_string()).encode()));
                break;
            }
        };
        let decode_start = Instant::now();
        let job = match Request::decode(&body) {
            Ok(req) => {
                // the trace keeps the original wire kind: a certify
                // born from a GraphChunkEnd shows up as "chunkend" in
                // the slow log, which is what the operator sent
                let kind = req.kind_tag();
                let scheme = req.scheme().map(|s| s.0).unwrap_or(0);
                let req = match sessions.step(req, &shared.metrics) {
                    ChunkStep::Reply(resp) => {
                        // chunk acks and chunk protocol errors are
                        // answered at the connection layer; they
                        // share the stats counter bucket like the
                        // other maintenance kinds
                        shared.metrics.stats.fetch_add(1, Ordering::Relaxed);
                        if tx.send(local_done(seq, resp.encode())).is_err() {
                            break;
                        }
                        seq += 1;
                        continue;
                    }
                    ChunkStep::Pass(req) => match interactive.step(req, shared) {
                        // interactive rounds are answered at the
                        // connection layer too: the dMAM verifier is a
                        // linear scan, and keeping it out of the
                        // worker pool makes the transcript
                        // byte-identical across both front ends by
                        // construction
                        InteractiveStep::Reply(resp) => {
                            if tx.send(local_done(seq, resp.encode())).is_err() {
                                break;
                            }
                            seq += 1;
                            continue;
                        }
                        InteractiveStep::Pass(req) => {
                            count_request(&shared.metrics, &req);
                            req
                        }
                    },
                    ChunkStep::Certify {
                        graph,
                        bypass_cache,
                        scheme,
                    } => {
                        shared.metrics.certify.fetch_add(1, Ordering::Relaxed);
                        Request::Certify {
                            graph,
                            bypass_cache,
                            cached_only: false,
                            summary: true,
                            scheme,
                        }
                    }
                };
                let read_decode = decode_start.elapsed();
                shared.metrics.stages.read_decode.record(read_decode);
                let mut trace = Trace::new((conn_id << 32) | (seq & 0xffff_ffff), kind, scheme);
                trace.read_decode_us = duration_us(read_decode);
                let received = Instant::now();
                Job {
                    req,
                    seq,
                    reply: ReplyTo::Channel(tx.clone()),
                    received,
                    dequeued: received,
                    trace,
                }
            }
            Err(e) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error(e.to_string()).encode();
                if tx.send(local_done(seq, resp)).is_err() {
                    break;
                }
                seq += 1;
                continue;
            }
        };
        if !shared.queue.push(job) {
            break; // shutting down
        }
        seq += 1;
    }
    sessions.abandon(&shared.metrics);
    interactive.abandon();
    drop(tx);
    let _ = writer.join();
}

/// Receives finished responses in completion order, writes frames in
/// sequence order — and closes each trace: the gap between a
/// worker's finish and the in-order write is the reorder-wait stage,
/// and the write+flush of the burst it rode in is its write-flush
/// stage (frames flushed together share one measured flush).
fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<Done>, shared: &Arc<Shared>) {
    let mut out = BufWriter::new(stream);
    let mut next = 0u64;
    let mut pending: HashMap<u64, Done> = HashMap::new();
    for done in rx {
        pending.insert(done.seq, done);
        let mut burst: Vec<(Option<Trace>, u64)> = Vec::new();
        let mut burst_start: Option<Instant> = None;
        while let Some(d) = pending.remove(&next) {
            let write_start = Instant::now();
            burst_start.get_or_insert(write_start);
            let reorder = write_start.saturating_duration_since(d.finished);
            shared.metrics.stages.reorder_wait.record(reorder);
            if wire::write_frame(&mut out, &d.body).is_err() {
                return;
            }
            next += 1;
            burst.push((d.trace, duration_us(reorder)));
        }
        if let Some(start) = burst_start {
            if out.flush().is_err() {
                return;
            }
            let write_flush = start.elapsed();
            for (trace, reorder_us) in burst {
                shared.metrics.stages.write_flush.record(write_flush);
                if let Some(trace) = trace {
                    trace_written(shared, &trace, reorder_us, duration_us(write_flush));
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(mut batch) = shared.queue.pop_batch(shared.cfg.batch_max) {
        let now = Instant::now();
        for job in &mut batch {
            let waited = now.saturating_duration_since(job.received);
            shared.metrics.stages.queue_wait.record(waited);
            job.trace.queue_wait_us = duration_us(waited);
            job.dequeued = now;
        }
        if matches!(batch[0].req, Request::Certify { .. }) {
            process_certify_batch(shared, batch);
        } else {
            for job in batch {
                let body = process_single(shared, &job.req);
                finish(shared, &job, body);
            }
        }
    }
}

/// Bumps the per-kind request counter. An exhaustive match, so adding
/// a `Request` variant without deciding its counter fails to compile
/// instead of silently misattributing it.
pub(crate) fn count_request(m: &Metrics, req: &Request) {
    let counter = match req {
        Request::Certify { .. } => &m.certify,
        Request::Check { .. } => &m.check,
        Request::Gen { .. } => &m.gen,
        Request::SoundnessProbe { .. } => &m.soundness,
        // introspection and replication-maintenance kinds share the
        // stats counter — the v2 prefix is frozen, and the v6
        // replication counters already break StoreList/StorePush
        // traffic out by what it *did* (merged/duplicate records)
        Request::Stats | Request::SlowLog | Request::StoreList | Request::StorePush { .. } => {
            &m.stats
        }
        // chunk kinds never reach the queue (the connection layer
        // intercepts them): Begin/Chunk acks ride the stats bucket at
        // the interception site, and a completed End is re-counted as
        // the certify it becomes. These arms only keep the match
        // exhaustive for the impossible pass-through.
        Request::GraphChunkBegin { .. }
        | Request::GraphChunk { .. }
        | Request::GraphChunkEnd { .. } => &m.stats,
        // interactive kinds are likewise intercepted at the connection
        // layer (InteractiveSessions bumps the dedicated session and
        // reject counters there); Audit is a maintenance kind and
        // rides the stats bucket with the other introspection requests
        Request::InteractiveBegin { .. } | Request::InteractiveRespond { .. } => &m.stats,
        Request::Audit { .. } => &m.stats,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// One open chunked-upload session: the incremental graph decoder
/// plus the sequencing and integrity state the protocol checks.
/// Memory here is O(chunk): the decoder holds the graph *index* under
/// construction and a < 10-byte carry, never the full encoding.
struct ChunkSession {
    session: u64,
    bypass_cache: bool,
    scheme: SchemeId,
    decoder: wire::GraphStreamDecoder,
    /// Chunks accepted so far == the seq the next chunk must carry.
    received: u64,
    /// Payload bytes accepted so far.
    bytes: u64,
    /// Running CRC-32 state over the whole payload (`!0` initial;
    /// finalized with a complement at End).
    crc: u32,
}

/// What the connection layer does with a decoded request after the
/// chunk-session filter has seen it.
pub(crate) enum ChunkStep {
    /// Not a chunk kind: process it like any other request.
    Pass(Request),
    /// Answered right here at the connection layer (chunk acks and
    /// chunk protocol errors) — never enqueued, so every chunk
    /// request still consumes exactly one sequence number and yields
    /// exactly one response, preserving the pipelining contract.
    Reply(Response),
    /// A `GraphChunkEnd` closed its session cleanly: enqueue this as
    /// a summary-mode certify answering the End's sequence number.
    Certify {
        /// The reassembled graph.
        graph: Graph,
        /// Skip the cache, as requested at Begin.
        bypass_cache: bool,
        /// The scheme requested at Begin.
        scheme: SchemeId,
    },
}

/// Per-connection chunk-session tracker (at most one active session —
/// a second Begin aborts the first, which is also the client's clean
/// reset path after its own error). Both front ends own one per
/// connection and run every decoded request through [`step`].
///
/// [`step`]: ChunkSessions::step
#[derive(Default)]
pub(crate) struct ChunkSessions {
    active: Option<ChunkSession>,
}

impl ChunkSessions {
    /// Kills the active session (if any) with an error response. The
    /// session dies; the connection — and its sequence numbers —
    /// survive, so the client can Begin again.
    fn fail(&mut self, m: &Metrics, msg: String) -> ChunkStep {
        if self.active.take().is_some() {
            m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
        }
        m.errors.fetch_add(1, Ordering::Relaxed);
        ChunkStep::Reply(Response::Error(msg))
    }

    /// Counts an abandoned session when its connection closes (idle
    /// reap, EOF, or error teardown) with the upload unfinished.
    pub(crate) fn abandon(&mut self, m: &Metrics) {
        if self.active.take().is_some() {
            m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs one decoded request through the session state machine.
    pub(crate) fn step(&mut self, req: Request, m: &Metrics) -> ChunkStep {
        match req {
            Request::GraphChunkBegin {
                session,
                bypass_cache,
                scheme,
            } => {
                if self.active.take().is_some() {
                    // a fresh Begin replaces a half-done session:
                    // this is how a client resets after deciding to
                    // abandon an upload without reconnecting
                    m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
                }
                m.chunk_sessions.fetch_add(1, Ordering::Relaxed);
                self.active = Some(ChunkSession {
                    session,
                    bypass_cache,
                    scheme,
                    decoder: wire::GraphStreamDecoder::new(),
                    received: 0,
                    bytes: 0,
                    crc: !0,
                });
                ChunkStep::Reply(Response::ChunkAck {
                    session,
                    received: 0,
                })
            }
            Request::GraphChunk {
                session,
                seq,
                payload,
            } => {
                let Some(st) = self.active.as_mut() else {
                    return self.fail(m, "graph chunk outside a chunk session".into());
                };
                if st.session != session {
                    let open = st.session;
                    return self.fail(
                        m,
                        format!("chunk for session {session} but session {open} is open"),
                    );
                }
                if seq != st.received {
                    // out-of-order, duplicated, or gapped chunk: the
                    // stream cannot be trusted past this point
                    let expect = st.received;
                    return self.fail(
                        m,
                        format!("chunk seq {seq} out of order (expected {expect})"),
                    );
                }
                st.crc = crc32_update(st.crc, &payload);
                st.bytes += payload.len() as u64;
                st.received += 1;
                if let Err(e) = st.decoder.feed(&payload) {
                    return self.fail(m, e.to_string());
                }
                m.chunk_chunks.fetch_add(1, Ordering::Relaxed);
                m.chunk_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                m.chunk_carry_peak
                    .fetch_max(st.decoder.carry_len() as u64, Ordering::Relaxed);
                ChunkStep::Reply(Response::ChunkAck {
                    session,
                    received: st.received,
                })
            }
            Request::GraphChunkEnd {
                session,
                total_chunks,
                total_bytes,
                crc,
            } => {
                let Some(st) = self.active.take() else {
                    return self.fail(m, "chunk end outside a chunk session".into());
                };
                if st.session != session {
                    m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    return ChunkStep::Reply(Response::Error(format!(
                        "chunk end for session {session} but session {} is open",
                        st.session
                    )));
                }
                if total_chunks != st.received || total_bytes != st.bytes {
                    m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    return ChunkStep::Reply(Response::Error(format!(
                        "chunk totals mismatch: client sent {total_chunks} chunks / \
                         {total_bytes} bytes, server saw {} / {}",
                        st.received, st.bytes
                    )));
                }
                if !st.crc != crc {
                    m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    return ChunkStep::Reply(Response::Error(
                        "reassembled graph payload failed its CRC check".into(),
                    ));
                }
                match st.decoder.finish() {
                    Ok(graph) => ChunkStep::Certify {
                        graph,
                        bypass_cache: st.bypass_cache,
                        scheme: st.scheme,
                    },
                    Err(e) => {
                        m.chunk_aborts.fetch_add(1, Ordering::Relaxed);
                        m.errors.fetch_add(1, Ordering::Relaxed);
                        ChunkStep::Reply(Response::Error(e.to_string()))
                    }
                }
            }
            other => ChunkStep::Pass(other),
        }
    }
}

/// One open interactive-verification session (wire v8): the graph and
/// Merlin's commitment parked between the `InteractiveBegin` that got
/// the public coin back and the `InteractiveRespond` that closes the
/// round.
struct InteractiveSession {
    session: u64,
    challenge: u64,
    graph: Graph,
    commit: Assignment,
}

/// What the connection layer does with a decoded request after the
/// interactive-session filter has seen it. Mirrors [`ChunkStep`],
/// minus the enqueue arm: the dMAM verifier is a linear-time scan of
/// the committed payloads — far below a prove — so both rounds are
/// answered right here and never visit the worker pool.
pub(crate) enum InteractiveStep {
    /// Not an interactive kind: process it like any other request.
    Pass(Request),
    /// Answered at the connection layer, consuming exactly one
    /// sequence number — the same pipelining contract chunk sessions
    /// keep.
    Reply(Response),
}

/// Per-connection interactive-session tracker (at most one active
/// session — a second Begin replaces the first, which is also the
/// client's clean reset path). Both front ends own one per connection
/// and run every decoded request through [`step`] after the chunk
/// filter.
///
/// [`step`]: InteractiveSessions::step
#[derive(Default)]
pub(crate) struct InteractiveSessions {
    active: Option<InteractiveSession>,
}

impl InteractiveSessions {
    /// Kills the active session (if any) with an error response; the
    /// connection — and its sequence numbers — survive.
    fn fail(&mut self, m: &Metrics, msg: String) -> InteractiveStep {
        self.active = None;
        m.errors.fetch_add(1, Ordering::Relaxed);
        InteractiveStep::Reply(Response::Error(msg))
    }

    /// Runs one decoded request through the session state machine.
    pub(crate) fn step(&mut self, req: Request, shared: &Shared) -> InteractiveStep {
        match req {
            Request::InteractiveBegin {
                session,
                seed,
                graph,
                commit,
                scheme,
            } => {
                // a fresh Begin replaces whatever round was half open
                self.active = None;
                let Some(entry) = shared.registry.get(scheme) else {
                    return InteractiveStep::Reply(unknown_scheme(shared, scheme, 1));
                };
                if !entry.caps.interactive {
                    return self.fail(
                        &shared.metrics,
                        format!(
                            "scheme {} does not run interactive sessions \
                             (the dMAM protocol is defined for planarity)",
                            entry.name
                        ),
                    );
                }
                shared
                    .metrics
                    .interactive_sessions
                    .fetch_add(1, Ordering::Relaxed);
                // Arthur's public coin is a pure function of the seed
                // the client committed to, so a logged (trace id,
                // seed) pair replays to the same challenge — and the
                // same verdict
                let challenge = challenge_from_seed(seed);
                self.active = Some(InteractiveSession {
                    session,
                    challenge,
                    graph,
                    commit,
                });
                InteractiveStep::Reply(Response::Challenge { session, challenge })
            }
            Request::InteractiveRespond { session, response } => {
                let Some(st) = self.active.take() else {
                    return self.fail(
                        &shared.metrics,
                        "interactive response outside a session".into(),
                    );
                };
                if st.session != session {
                    let open = st.session;
                    return self.fail(
                        &shared.metrics,
                        format!(
                            "interactive response for session {session} \
                             but session {open} is open"
                        ),
                    );
                }
                if response.certs.len() != st.graph.node_count() {
                    return self.fail(
                        &shared.metrics,
                        format!(
                            "response for {} nodes on a {}-node graph",
                            response.certs.len(),
                            st.graph.node_count()
                        ),
                    );
                }
                // contained like any worker handler: a panicking
                // verifier must never take down a reactor loop
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_forged(
                        &DmamPlanarity::new(),
                        &st.graph,
                        st.challenge,
                        &st.commit,
                        &response,
                    )
                }));
                let Ok(outcome) = run else {
                    return self.fail(
                        &shared.metrics,
                        "internal error: the interactive verifier panicked".into(),
                    );
                };
                let accept = outcome.all_accept();
                if !accept {
                    shared
                        .metrics
                        .interactive_rejects
                        .fetch_add(1, Ordering::Relaxed);
                }
                InteractiveStep::Reply(Response::Verdict {
                    session,
                    challenge: st.challenge,
                    accept,
                    reject_count: outcome.reject_count() as u64,
                    nodes: st.graph.node_count() as u64,
                    max_commit_bits: outcome.max_commit_bits as u64,
                    max_response_bits: outcome.max_response_bits as u64,
                    soundness_ppm: soundness_ppm(&st.graph),
                })
            }
            other => InteractiveStep::Pass(other),
        }
    }

    /// Drops an abandoned session when its connection closes.
    pub(crate) fn abandon(&mut self) {
        self.active = None;
    }
}

/// The dMAM planarity protocol's per-session soundness bound, in
/// parts per million. The challenge opens one uniformly random port
/// per node, so each endpoint of a cheated edge probes it with
/// probability at least `1/Δ` — a forged proof survives the round
/// with probability at most `1 − 1/Δ`.
fn soundness_ppm(g: &Graph) -> u64 {
    let max_deg = (0..g.node_count() as u32)
        .map(|v| g.degree(v))
        .max()
        .unwrap_or(0)
        .max(1) as u64;
    1_000_000 - 1_000_000 / max_deg
}

/// Records one audit sweep samples (the background cadence; `dpc
/// audit` picks its own count).
const AUDIT_SWEEP_SAMPLES: u64 = 16;

/// Vertices re-verified per sampled certified record.
const AUDIT_VERIFY_NODES: u64 = 4;

/// Seed family of the background auditor (an arbitrary tag; each
/// sweep derives its sampling seed from this and its sweep index).
const AUDIT_SEED_BASE: u64 = 0xd9c5_a11d_17ab_c0de;

/// What one audit pass did (the `AuditReport` payload).
pub(crate) struct AuditOutcome {
    pub(crate) sampled: u64,
    pub(crate) failed: u64,
    pub(crate) quarantined: u64,
}

/// One randomized audit pass: deterministically samples up to
/// `samples` stored records (seeded by `seed`, without replacement)
/// and re-checks each one end to end — decode, a Freivalds-style
/// fingerprint of the stored suffix bytes against a re-encode of the
/// decoded entry, the outcome/assignment cross-checks, and the
/// per-node verifier predicate on a random vertex subset. Records
/// whose bytes are CRC-valid but fail any of these are quarantined
/// from both cache tiers (and counted); the content address makes
/// that safe — the key is simply re-proved on its next query, so
/// live traffic sees a cache miss, never a wrong answer.
pub(crate) fn audit_pass(shared: &Arc<Shared>, samples: u64, seed: u64) -> AuditOutcome {
    shared.metrics.audit_sweeps.fetch_add(1, Ordering::Relaxed);
    let mut out = AuditOutcome {
        sampled: 0,
        failed: 0,
        quarantined: 0,
    };
    // bypass-cache entries carry no keyed bytes and are not
    // addressable, so they cannot be audited (or served) anyway
    let records: Vec<StoreRecord> = shared
        .cache
        .iter_content()
        .filter_map(|r| r.ok())
        .filter(|r| !r.keyed.is_empty())
        .collect();
    if records.is_empty() {
        return out;
    }
    let mut picked: HashSet<usize> = HashSet::new();
    for i in 0..samples {
        let idx = (fingerprint::derive(seed, i) % records.len() as u64) as usize;
        if !picked.insert(idx) {
            continue; // sampling without replacement
        }
        let record = &records[idx];
        out.sampled += 1;
        // a panic on hostile bytes is itself an audit failure, not a
        // store-thread crash
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            audit_record(shared, record, seed)
        }))
        .unwrap_or(false);
        if !ok {
            out.failed += 1;
            if shared.cache.quarantine(record.key()) {
                out.quarantined += 1;
            }
        }
    }
    let m = &shared.metrics;
    m.audit_sampled.fetch_add(out.sampled, Ordering::Relaxed);
    m.audit_failed.fetch_add(out.failed, Ordering::Relaxed);
    m.audit_quarantined
        .fetch_add(out.quarantined, Ordering::Relaxed);
    out
}

/// Re-checks one stored record; `false` means quarantine it. The
/// checks are layered from cheap to expensive, and every decode
/// failure is a failure — `dpc store verify` already proved the CRC
/// holds, so a record that fails *these* checks was corrupted before
/// its checksum was (re)computed.
fn audit_record(shared: &Arc<Shared>, record: &StoreRecord, seed: u64) -> bool {
    // the content address: scheme id + canonical graph
    let mut keyed = record.keyed.as_slice();
    let Ok(scheme_raw) = get_uvarint(&mut keyed) else {
        return false;
    };
    let scheme_id = SchemeId(scheme_raw as u16);
    let Ok(graph) = wire::decode_graph(&mut keyed) else {
        return false;
    };
    if !keyed.is_empty() || scheme_raw > u16::MAX as u64 {
        return false;
    }
    let Some(entry) = shared.registry.get(scheme_id) else {
        // a record for a scheme this server does not register is not
        // auditable here; leave it for a node that registers it
        return true;
    };
    let Ok(cached) = record.to_entry() else {
        return false;
    };
    // Freivalds-style cross-check: the stored suffix bytes must
    // fingerprint identically to a re-encode of what they decoded to,
    // at a random evaluation point — any byte flip that survives
    // decoding perturbs the polynomial with probability ≈ 1 − 1/p
    let r = fingerprint::derive(seed, record.key().0 as u64);
    if fingerprint::fingerprint(&limbs(&record.suffix), r)
        != fingerprint::fingerprint(&limbs(&cached.record().suffix), r)
    {
        return false;
    }
    let ProveResult::Certified {
        assignment,
        outcome,
    } = &cached.result
    else {
        // a declined record holds only its reason string, which the
        // fingerprint above already pinned
        return true;
    };
    let n = graph.node_count();
    // outcome/assignment consistency: a flipped verdict bit or a
    // tampered size field disagrees with the certificates themselves
    if assignment.certs.len() != n
        || outcome.verdicts.len() != n
        || !outcome.all_accept()
        || outcome.max_cert_bits != assignment.max_bits()
    {
        return false;
    }
    // re-run the per-node verifier predicate on a random vertex
    // subset — exactly the check the distributed nodes ran when the
    // certificate was first issued
    for j in 0..AUDIT_VERIFY_NODES.min(n as u64) {
        let v = (fingerprint::derive(r, j) % n as u64) as u32;
        let ctx = NodeCtx {
            node: v,
            id: graph.id_of(v),
            neighbor_ids: graph.neighbors(v).map(|w| graph.id_of(w)).collect(),
        };
        let neighbors: Vec<Payload> = graph
            .neighbors(v)
            .map(|w| assignment.certs[w as usize].clone())
            .collect();
        if !entry
            .scheme()
            .verify(&ctx, &assignment.certs[v as usize], &neighbors)
        {
            return false;
        }
    }
    true
}

/// Folds bytes into the u64 limbs the fingerprint polynomial takes
/// (little-endian, zero-padded tail).
fn limbs(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(buf)
        })
        .collect()
}

fn finish(shared: &Shared, job: &Job, body: Vec<u8>) {
    shared.metrics.latency.record(job.received.elapsed());
    let service = job.dequeued.elapsed();
    shared.metrics.stages.service.record(service);
    let mut trace = job.trace;
    trace.service_us = duration_us(service);
    job.reply.send(job.seq, body, Some(trace));
}

/// [`finish`], also recording the scheme's certify latency.
fn finish_certify(
    shared: &Shared,
    job: &Job,
    body: Vec<u8>,
    per_scheme: Option<&crate::metrics::SchemeMetrics>,
) {
    if let Some(m) = per_scheme {
        m.latency.record(job.received.elapsed());
    }
    finish(shared, job, body);
}

/// Proves one graph under one registered scheme (or explains why
/// not). Connectivity is checked here because the PLS model assumes a
/// connected network. A panic in the prover is contained (it would
/// otherwise kill the worker thread and wedge the response stream)
/// and surfaced as `Err` — an internal error, *not* a decline:
/// declines are semantic ("outside the class") and cacheable, a panic
/// is neither.
fn prove_one(entry: &SchemeEntry, g: &Graph) -> Result<ProveResult, String> {
    if !g.is_connected() {
        return Ok(ProveResult::Declined {
            reason: ProveError::NotConnected.to_string(),
        });
    }
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        certify_pls(&entry.scheme(), g)
    }));
    match run {
        Ok(Ok(certified)) => Ok(ProveResult::Certified {
            assignment: certified.assignment,
            outcome: certified.outcome,
        }),
        Ok(Err(e)) => Ok(ProveResult::Declined {
            reason: e.to_string(),
        }),
        Err(_) => Err("internal error: the prover panicked on this instance".to_string()),
    }
}

/// Keyed cache bytes of a certify request: the scheme id, then the
/// canonical wire encoding of the graph. Hashing (and comparing) the
/// id alongside the graph keeps every scheme's entries disjoint —
/// identical graphs certified under two schemes are two cache keys.
fn keyed_bytes(scheme: SchemeId, graph: &Graph) -> Vec<u8> {
    let mut bytes = Vec::new();
    put_uvarint(&mut bytes, scheme.0 as u64);
    wire::encode_graph(&mut bytes, graph);
    bytes
}

/// Response bytes for a cache entry, in either the full or the
/// summary shape. A certified entry's suffix starts with the outcome,
/// so the summary body is carved from the same cached bytes without
/// re-encoding; declined entries answer identically in both shapes.
fn entry_body(cached: bool, entry: &CacheEntry, summary: bool) -> Vec<u8> {
    match &entry.result {
        ProveResult::Certified { .. } => {
            if summary {
                wire::summary_body_from_suffix(cached, &entry.suffix)
                    .unwrap_or_else(|e| Response::Error(e.to_string()).encode())
            } else {
                wire::certified_body_from_suffix(cached, &entry.suffix)
            }
        }
        ProveResult::Declined { .. } => wire::declined_body_from_suffix(cached, &entry.suffix),
    }
}

fn process_certify_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    // batches are homogeneous by construction (pop_batch groups by
    // scheme), so the registry is consulted once per batch
    let scheme_id = match batch[0].req {
        Request::Certify { scheme, .. } => scheme,
        _ => unreachable!("certify batches contain only certify jobs"),
    };
    let per_scheme = shared.scheme_metrics(scheme_id);
    if let Some(m) = per_scheme {
        m.certify.fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    let Some(entry) = shared.registry.get(scheme_id) else {
        // unknown id: every job in the batch gets a clean error
        // response; the connection (and its sequence numbers) survive
        let body = unknown_scheme(shared, scheme_id, batch.len() as u64).encode();
        for job in &batch {
            finish_certify(shared, job, body.clone(), None);
        }
        return;
    };
    if batch.len() > 1 {
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .batched_certifies
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    // Phase 1: cache lookups. `to_prove` maps a cache key (plus the
    // keyed scheme-id + graph bytes, the collision guard) to the jobs
    // waiting on it, deduplicating identical graphs in the batch;
    // bypass requests always prove, one prove per request.
    struct Miss<'a> {
        graph: &'a Graph,
        key: Option<(dpc_graph::canon::GraphHash, Vec<u8>)>,
        waiters: Vec<usize>,
    }
    let mut to_prove: Vec<Miss> = Vec::new();
    // disconnected summary certifies (the chunked-upload path): their
    // components are proved piecewise — possibly on peers — and the
    // outcomes merged, so they bypass both directions of the cache
    // (a plain certify would cache `Declined: not connected` under
    // the very same key, and a composite result must never shadow it)
    let mut composites: Vec<(usize, &Graph, bool)> = Vec::new();
    let mut done: Vec<Option<Vec<u8>>> = (0..batch.len()).map(|_| None).collect();
    let mut summaries: Vec<bool> = Vec::with_capacity(batch.len());
    for (i, job) in batch.iter().enumerate() {
        let Request::Certify {
            graph,
            bypass_cache,
            cached_only,
            summary,
            ..
        } = &job.req
        else {
            unreachable!("certify batches contain only certify jobs");
        };
        summaries.push(*summary);
        if *summary && !graph.is_connected() {
            composites.push((i, graph, *bypass_cache));
            continue;
        }
        if *bypass_cache {
            to_prove.push(Miss {
                graph,
                key: None,
                waiters: vec![i],
            });
            continue;
        }
        // one canonical pass: the wire encoding sorts the edge list,
        // and the cache key is the hash of the scheme-qualified bytes
        let bytes = keyed_bytes(scheme_id, graph);
        let key = hash_bytes(&bytes);
        match shared.cache.lookup(key, &bytes) {
            Some(entry) => {
                if let Some(m) = per_scheme {
                    m.hits.fetch_add(1, Ordering::Relaxed);
                }
                done[i] = Some(entry_body(true, &entry, *summary));
            }
            None => {
                if let Some(m) = per_scheme {
                    m.misses.fetch_add(1, Ordering::Relaxed);
                }
                if *cached_only {
                    // replica probe: the caller only wants to know
                    // whether this node already holds the answer —
                    // a miss must never trigger a prove, so it gets
                    // the sentinel error instead of joining the batch
                    done[i] = Some(Response::Error(wire::NOT_CACHED.into()).encode());
                    continue;
                }
                let dup = to_prove
                    .iter_mut()
                    .find(|m| matches!(&m.key, Some((k, b)) if *k == key && *b == bytes));
                match dup {
                    Some(m) => m.waiters.push(i),
                    None => to_prove.push(Miss {
                        graph,
                        key: Some((key, bytes)),
                        waiters: vec![i],
                    }),
                }
            }
        }
    }
    // Phase 2: prove all misses through the batch engine.
    if !to_prove.is_empty() {
        shared
            .metrics
            .proves
            .fetch_add(to_prove.len() as u64, Ordering::Relaxed);
        if let Some(m) = per_scheme {
            m.proves.fetch_add(to_prove.len() as u64, Ordering::Relaxed);
        }
        let graphs: Vec<&Graph> = to_prove.iter().map(|m| m.graph).collect();
        let results = shared.runner.map(&graphs, |g| prove_one(entry, g));
        for (miss, result) in to_prove.into_iter().zip(results) {
            match result {
                Ok(result) => {
                    let entry = match miss.key {
                        Some((key, bytes)) => shared
                            .cache
                            .insert(key, Arc::new(CacheEntry::new(result, bytes))),
                        None => Arc::new(CacheEntry::new(result, Vec::new())),
                    };
                    for i in miss.waiters {
                        done[i] = Some(entry_body(false, &entry, summaries[i]));
                    }
                }
                Err(msg) => {
                    // internal failure: answer, count, never cache
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let body = Response::Error(msg).encode();
                    for i in miss.waiters {
                        done[i] = Some(body.clone());
                    }
                }
            }
        }
    }
    // Phase 2b: composite (disconnected summary) certifies. These run
    // after the batch engine has drained so the scoped runner is free
    // for the local component shares, one composite at a time.
    for (i, graph, bypass) in composites {
        done[i] = Some(prove_composite(
            shared, entry, scheme_id, graph, bypass, per_scheme,
        ));
    }
    // Phase 3: respond in one pass (the per-connection writers restore
    // request order).
    for (job, body) in batch.iter().zip(done) {
        finish_certify(shared, job, body.expect("every job answered"), per_scheme);
    }
}

/// Delegated component certifies a peer may hold in flight at once.
/// Bounds the bodies buffered on either side of the wire while still
/// pipelining enough to hide the round trip.
const DELEGATE_WINDOW: usize = 64;

/// One component's answer while a composite certify is in flight.
enum CompAnswer {
    /// The component certified; its outcome joins the merge.
    Outcome(Outcome),
    /// The honest prover declined the component.
    Declined(String),
    /// Internal failure (prover panic) — surfaces as an error.
    Failed(String),
}

/// Certifies a *disconnected* summary request — the shape a chunked
/// giant-graph upload produces — by splitting it into connected
/// components, proving each on its rendezvous-ranked fleet node, and
/// merging the per-component outcomes with
/// [`Outcome::merge_components`]. The merge is the same integer fold
/// a single node applies, so the merged outcome is byte-identical to
/// a sequential prove of the whole graph.
///
/// Components routed to this node (or whose delegated frame would
/// exceed [`wire::MAX_FRAME_BYTES`]) prove locally through the shared
/// [`BatchRunner`]; the rest are pipelined as summary certifies over
/// fresh peer connections. Every delegation failure — dead peer, torn
/// connection, error response — falls back to a local prove, so the
/// answer never depends on fleet health, only its latency does.
fn prove_composite(
    shared: &Arc<Shared>,
    entry: &SchemeEntry,
    scheme_id: SchemeId,
    graph: &Graph,
    bypass_cache: bool,
    per_scheme: Option<&crate::metrics::SchemeMetrics>,
) -> Vec<u8> {
    let components = graph.components();
    let subs: Vec<Graph> = components
        .iter()
        .map(|c| graph.induced_subgraph(c))
        .collect();
    // the fleet is this node plus its peers, deduped: a single-node
    // fleet (or a peers list that only aliases this node) degenerates
    // to the all-local path
    let ring = {
        let mut fleet = shared.cfg.peers.clone();
        fleet.push(shared.self_addr.clone());
        fleet.sort_unstable();
        fleet.dedup();
        if fleet.len() >= 2 {
            cluster::Ring::new(fleet).ok()
        } else {
            None
        }
    };
    let mut answers: Vec<Option<CompAnswer>> = (0..subs.len()).map(|_| None).collect();
    let mut local: Vec<usize> = Vec::new();
    if let Some(ring) = ring {
        let self_idx = ring
            .addrs()
            .iter()
            .position(|a| *a == shared.self_addr)
            .expect("self address was pushed into the fleet");
        // partition components by owning node; each delegated body is
        // encoded once, here, and reused on the wire
        let mut assigned: Vec<Vec<(usize, Vec<u8>)>> =
            (0..ring.len()).map(|_| Vec::new()).collect();
        for (j, sub) in subs.iter().enumerate() {
            let owner = ring.owner(&cluster::graph_key(scheme_id, sub));
            if owner == self_idx {
                local.push(j);
                continue;
            }
            let body = wire::encode_certify_summary_request(sub, bypass_cache, scheme_id);
            if body.len() > wire::MAX_FRAME_BYTES {
                // one component too large to delegate in one frame:
                // keep it home rather than open a second chunk leg
                local.push(j);
                continue;
            }
            assigned[owner].push((j, body));
        }
        for (node, comps) in assigned.into_iter().enumerate() {
            if comps.is_empty() {
                continue;
            }
            delegate_to_peer(shared, &ring.addrs()[node], comps, &mut answers, &mut local);
        }
    } else {
        local.extend(0..subs.len());
    }
    // local share (plus every delegation fallback) through the batch
    // engine — exactly the prove a peer would have run
    if !local.is_empty() {
        local.sort_unstable();
        shared
            .metrics
            .proves
            .fetch_add(local.len() as u64, Ordering::Relaxed);
        if let Some(m) = per_scheme {
            m.proves.fetch_add(local.len() as u64, Ordering::Relaxed);
        }
        let graphs: Vec<&Graph> = local.iter().map(|&j| &subs[j]).collect();
        let results = shared.runner.map(&graphs, |g| prove_one(entry, g));
        for (&j, result) in local.iter().zip(results) {
            answers[j] = Some(match result {
                Ok(ProveResult::Certified { outcome, .. }) => CompAnswer::Outcome(outcome),
                Ok(ProveResult::Declined { reason }) => CompAnswer::Declined(reason),
                Err(msg) => CompAnswer::Failed(msg),
            });
        }
    }
    // fold in component order: the first non-certifying component
    // (lowest index) decides a decline, deterministically, no matter
    // which machine answered it
    let mut parts: Vec<(Vec<u32>, Outcome)> = Vec::with_capacity(subs.len());
    for (j, answer) in answers.into_iter().enumerate() {
        match answer.expect("every component answered") {
            CompAnswer::Outcome(outcome) => parts.push((components[j].clone(), outcome)),
            CompAnswer::Declined(reason) => {
                return Response::Declined {
                    cached: false,
                    reason,
                }
                .encode();
            }
            CompAnswer::Failed(msg) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                return Response::Error(msg).encode();
            }
        }
    }
    shared
        .metrics
        .outcome_merges
        .fetch_add(1, Ordering::Relaxed);
    let outcome = Outcome::merge_components(graph.node_count(), &parts);
    Response::CertifiedSummary {
        cached: false,
        outcome,
    }
    .encode()
}

/// Pipelines `comps` (component index, pre-encoded summary-certify
/// body) to one peer, keeping at most [`DELEGATE_WINDOW`] requests in
/// flight. Successful answers land in `answers`; every failure —
/// dial, transport, or error response — pushes the component index
/// onto `local` for the fallback prove and counts a delegation error.
fn delegate_to_peer(
    shared: &Arc<Shared>,
    addr: &str,
    comps: Vec<(usize, Vec<u8>)>,
    answers: &mut [Option<CompAnswer>],
    local: &mut Vec<usize>,
) {
    let m = &shared.metrics;
    let mut fall_back = |j: usize| {
        m.delegated_errors.fetch_add(1, Ordering::Relaxed);
        local.push(j);
    };
    let mut client = match crate::client::Client::connect(addr) {
        Ok(client) => client,
        Err(_) => {
            for (j, _) in comps {
                fall_back(j);
            }
            return;
        }
    };
    let mut queue: std::collections::VecDeque<(usize, Vec<u8>)> = comps.into();
    let mut pending: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut dead = false;
    loop {
        while !dead && pending.len() < DELEGATE_WINDOW {
            let Some((j, body)) = queue.pop_front() else {
                break;
            };
            match client.send_body(&body) {
                Ok(()) => pending.push_back(j),
                Err(_) => {
                    dead = true;
                    fall_back(j);
                }
            }
        }
        let Some(j) = pending.pop_front() else { break };
        if dead {
            fall_back(j);
            continue;
        }
        match client.recv() {
            Ok(Response::CertifiedSummary { outcome, .. }) => {
                m.delegated_proves.fetch_add(1, Ordering::Relaxed);
                answers[j] = Some(CompAnswer::Outcome(outcome));
            }
            Ok(Response::Declined { reason, .. }) => {
                m.delegated_proves.fetch_add(1, Ordering::Relaxed);
                answers[j] = Some(CompAnswer::Declined(reason));
            }
            Ok(_) => fall_back(j),
            Err(_) => {
                dead = true;
                fall_back(j);
            }
        }
    }
    // the transport died before everything was even sent
    for (j, _) in queue {
        fall_back(j);
    }
}

/// Handles one non-certify request. Panics anywhere in the handlers
/// are contained into an error response — a panicking handler must
/// never kill the worker thread or leave a sequence number
/// unanswered (the connection writer would wait on it forever).
fn process_single(shared: &Arc<Shared>, req: &Request) -> Vec<u8> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        process_single_inner(shared, req)
    }))
    .unwrap_or_else(|_| {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        Response::Error("internal error: request handler panicked".into()).encode()
    })
}

fn process_single_inner(shared: &Arc<Shared>, req: &Request) -> Vec<u8> {
    match req {
        Request::Certify { .. } => unreachable!("certify goes through the batch path"),
        Request::Check { graph, scheme } => {
            let Some(entry) = shared.registry.get(*scheme) else {
                return unknown_scheme(shared, *scheme, 1).encode();
            };
            // planarity keeps its rich embedding/witness verdicts; any
            // other scheme answers the generic membership pair (is the
            // honest prover willing to certify this instance?)
            if *scheme == SchemeId::PLANARITY {
                return check_response(graph).encode();
            }
            let verdict = match entry.scheme().prove(graph) {
                Ok(_) => CheckVerdict::Member {
                    scheme: entry.name.to_string(),
                },
                Err(e) => CheckVerdict::NonMember {
                    scheme: entry.name.to_string(),
                    reason: e.to_string(),
                },
            };
            Response::Checked(verdict).encode()
        }
        Request::Gen {
            family,
            n,
            seed,
            scheme,
        } => {
            // the scheme id routes the "default" family to the
            // scheme's canonical yes-instance generator; any concrete
            // family name stays scheme-independent, and the id is
            // deliberately NOT validated against this server's
            // registry, so a registry-restricted server still
            // generates graphs for any client
            match gen::make_scheme(family, *n, *seed, *scheme) {
                Ok(g) => Response::Generated(g).encode(),
                Err(e) => Response::Error(e).encode(),
            }
        }
        Request::SoundnessProbe {
            graph,
            seed,
            scheme,
        } => {
            let Some(entry) = shared.registry.get(*scheme) else {
                return unknown_scheme(shared, *scheme, 1).encode();
            };
            if !entry.caps.soundness_probe {
                return Response::Error(format!(
                    "scheme {} does not support soundness probes \
                     (the replay battery only applies to planarity-shaped classes)",
                    entry.name
                ))
                .encode();
            }
            if !graph.is_connected() {
                return Response::Error(ProveError::NotConnected.to_string()).encode();
            }
            let rows = soundness_report(&entry.scheme(), graph, *seed)
                .into_iter()
                .map(|row| SoundnessLine {
                    attack: row.attack.to_string(),
                    rejects: row.rejects.map(|r| r as u64),
                })
                .collect();
            Response::Soundness(rows).encode()
        }
        Request::Stats => Response::Stats(Box::new(snapshot(shared))).encode(),
        Request::SlowLog => Response::SlowLog(shared.slow.snapshot()).encode(),
        Request::StoreList => Response::StoreKeys(shared.cache.content_keys()).encode(),
        Request::StorePush { records } => {
            // absorb replicated records with the same dedup-by-key
            // semantics as an offline `dpc store merge`: a key the
            // store already holds is a no-op, everything else lands
            // in the cold tier (and warms the hot tier)
            let mut merged = 0u64;
            let mut duplicates = 0u64;
            for record in records {
                match shared.cache.absorb(record) {
                    Ok(true) => merged += 1,
                    Ok(false) => duplicates += 1,
                    Err(e) => {
                        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        return Response::Error(format!("store push failed: {e}")).encode();
                    }
                }
            }
            let m = &shared.metrics;
            m.repl_push_merged.fetch_add(merged, Ordering::Relaxed);
            m.repl_push_duplicates
                .fetch_add(duplicates, Ordering::Relaxed);
            Response::StorePushed { merged, duplicates }.encode()
        }
        Request::Audit { samples, seed } => {
            // an on-demand audit pass (`dpc audit`) — the same sweep
            // the background auditor runs, with the caller's sizing
            // and seed, so a reported verdict is reproducible
            let out = audit_pass(shared, *samples, *seed);
            Response::AuditReport {
                sampled: out.sampled,
                failed: out.failed,
                quarantined: out.quarantined,
            }
            .encode()
        }
        Request::GraphChunkBegin { .. }
        | Request::GraphChunk { .. }
        | Request::GraphChunkEnd { .. } => {
            // chunk frames are intercepted by ChunkSessions at the
            // connection layer and never reach a worker; answer
            // cleanly anyway so a future front end that forgets the
            // interception fails loudly instead of wedging
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            Response::Error("chunk frames are handled at the connection layer".into()).encode()
        }
        Request::InteractiveBegin { .. } | Request::InteractiveRespond { .. } => {
            // same containment for the interactive kinds, intercepted
            // by InteractiveSessions at the connection layer
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            Response::Error("interactive frames are handled at the connection layer".into())
                .encode()
        }
    }
}

/// One round of push-based anti-entropy: for every configured peer,
/// fetch its store key digests and stream it the records this node
/// holds that the peer lacks. Dedup happens on *both* sides — the
/// digest list filters the bulk here, and the peer's `absorb` path
/// drops anything that raced in between list and push — so a repeat
/// sweep between converged peers transfers zero records.
fn anti_entropy_sweep(shared: &Arc<Shared>) {
    shared.metrics.repl_sweeps.fetch_add(1, Ordering::Relaxed);
    for peer in &shared.cfg.peers {
        match sweep_peer(shared, peer) {
            Ok(pushed) => {
                if pushed > 0 {
                    shared
                        .metrics
                        .repl_pushed
                        .fetch_add(pushed, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // a dead or restarting peer is the normal case this
                // sweep exists for; count it and retry next round
                shared.metrics.repl_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Exchanges store contents with one peer; returns how many records
/// the peer actually merged (its own duplicates excluded).
fn sweep_peer(shared: &Arc<Shared>, peer: &str) -> Result<u64, WireError> {
    const SWEEP_BATCH: usize = 256;
    let mut client = crate::client::Client::connect(peer)?;
    let theirs: std::collections::HashSet<u128> = client.store_list()?.into_iter().collect();
    let mut merged = 0u64;
    let mut batch: Vec<crate::store::StoreRecord> = Vec::new();
    for record in shared.cache.iter_content() {
        let Ok(record) = record else { continue };
        if record.keyed.is_empty() || theirs.contains(&record.key().0) {
            continue;
        }
        batch.push(record);
        if batch.len() >= SWEEP_BATCH {
            merged += client.store_push(&batch)?.0;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        merged += client.store_push(&batch)?.0;
    }
    Ok(merged)
}

fn check_response(graph: &Graph) -> Response {
    match planarity(graph) {
        Planarity::Planar(rot) => {
            if let Err(e) = rot.euler_check() {
                return Response::Error(format!("inconsistent embedding: {e}"));
            }
            Response::Checked(CheckVerdict::Planar {
                faces: rot.face_count() as u64,
                genus: rot.genus(),
            })
        }
        Planarity::NonPlanar => match extract_kuratowski(graph) {
            Some(w) => Response::Checked(CheckVerdict::NonPlanar {
                k5: matches!(w.kind, KuratowskiKind::K5),
                branch_nodes: w.branch_nodes.clone(),
                witness_edges: w.edges.len() as u64,
            }),
            None => Response::Error("inconsistent planarity result".into()),
        },
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let tiered = shared.cache.stats();
    let cache = tiered.hot;
    let store = tiered.cold.unwrap_or_default();
    let m = &shared.metrics;
    let per_scheme = shared
        .registry
        .entries()
        .iter()
        .zip(&m.per_scheme)
        .map(|(e, s)| SchemeStats {
            id: e.id.0,
            name: e.name.to_string(),
            certify: s.certify.load(Ordering::Relaxed),
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            proves: s.proves.load(Ordering::Relaxed),
            latency: s.latency.snapshot(),
        })
        .collect();
    StatsSnapshot {
        certify: m.certify.load(Ordering::Relaxed),
        check: m.check.load(Ordering::Relaxed),
        gen: m.gen.load(Ordering::Relaxed),
        soundness: m.soundness.load(Ordering::Relaxed),
        stats: m.stats.load(Ordering::Relaxed),
        errors: m.errors.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        cache_entries: cache.entries,
        cache_bytes: cache.bytes,
        batches: m.batches.load(Ordering::Relaxed),
        batched_certifies: m.batched_certifies.load(Ordering::Relaxed),
        proves: m.proves.load(Ordering::Relaxed),
        latency: m.latency.snapshot(),
        per_scheme,
        store_hits: store.hits,
        store_misses: store.misses,
        store_demotes: tiered.demotions,
        store_promotes: tiered.promotions,
        store_records: store.records,
        store_bytes: store.live_bytes,
        store_segments: store.segments,
        store_write_errors: tiered.write_errors,
        conns_open: m.conns_open.load(Ordering::Relaxed),
        conns_accepted: m.conns_accepted.load(Ordering::Relaxed),
        accept_eagain: m.accept_eagain.load(Ordering::Relaxed),
        idle_timeouts: m.idle_timeouts.load(Ordering::Relaxed),
        stages: m.stages.snapshot(),
        queue_full_stalls: m.queue_full_stalls.load(Ordering::Relaxed),
        read_interest_drops: m.read_interest_drops.load(Ordering::Relaxed),
        read_interest_restores: m.read_interest_restores.load(Ordering::Relaxed),
        inbox_wakeups: m.inbox_wakeups.load(Ordering::Relaxed),
        queue_depth: shared.queue.len() as u64,
        repl_push_merged: m.repl_push_merged.load(Ordering::Relaxed),
        repl_push_duplicates: m.repl_push_duplicates.load(Ordering::Relaxed),
        repl_pushed: m.repl_pushed.load(Ordering::Relaxed),
        repl_sweeps: m.repl_sweeps.load(Ordering::Relaxed),
        repl_errors: m.repl_errors.load(Ordering::Relaxed),
        chunk_sessions: m.chunk_sessions.load(Ordering::Relaxed),
        chunk_chunks: m.chunk_chunks.load(Ordering::Relaxed),
        chunk_bytes: m.chunk_bytes.load(Ordering::Relaxed),
        chunk_aborts: m.chunk_aborts.load(Ordering::Relaxed),
        chunk_carry_peak: m.chunk_carry_peak.load(Ordering::Relaxed),
        delegated_proves: m.delegated_proves.load(Ordering::Relaxed),
        delegated_errors: m.delegated_errors.load(Ordering::Relaxed),
        outcome_merges: m.outcome_merges.load(Ordering::Relaxed),
        audit_sweeps: m.audit_sweeps.load(Ordering::Relaxed),
        audit_sampled: m.audit_sampled.load(Ordering::Relaxed),
        audit_failed: m.audit_failed.load(Ordering::Relaxed),
        audit_quarantined: m.audit_quarantined.load(Ordering::Relaxed),
        interactive_sessions: m.interactive_sessions.load(Ordering::Relaxed),
        interactive_rejects: m.interactive_rejects.load(Ordering::Relaxed),
    }
}
