//! Long-running certification service for the planarity PLS.
//!
//! The paper's pipeline — compute a compact certificate once, verify
//! it cheaply everywhere — maps directly onto a serving architecture:
//! certificates are immutable, content-addressed artifacts. This crate
//! turns the single-shot library into that system, using only
//! `std::net` TCP and `std::thread`:
//!
//! * [`wire`] — the binary protocol: length-prefixed frames, varint
//!   delta-encoded graphs, byte-exact `Assignment`/`Outcome` bodies;
//!   request kinds Certify / Check / Gen / SoundnessProbe / Stats;
//! * [`cache`] — the sharded, content-addressed certificate cache:
//!   canonical graph hash → `Arc`-shared prove result, lock-striped
//!   shards, LRU eviction under a byte budget;
//! * [`server`] — accept loop, per-connection reader/writer threads,
//!   and a worker pool that drains a bounded queue, folds concurrent
//!   Certify requests into [`dpc_core::batch::BatchRunner`] batches,
//!   and streams responses back in request order per connection;
//! * [`client`] — a blocking client with request pipelining;
//! * [`metrics`] — lock-free counters and the power-of-two latency
//!   histogram behind the Stats endpoint;
//! * [`gen`] — the named graph families servable via Gen.
//!
//! ```no_run
//! use dpc_service::{client::Client, server};
//!
//! let handle = server::serve("127.0.0.1:0", Default::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let g = dpc_graph::generators::grid(10, 10);
//! let first = client.certify(&g, false).unwrap(); // proves
//! let second = client.certify(&g, false).unwrap(); // cache hit
//! # let _ = (first, second);
//! handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod gen;
pub mod metrics;
pub mod server;
pub mod wire;

pub use cache::{CacheConfig, CertCache};
pub use client::Client;
pub use metrics::StatsSnapshot;
pub use server::{serve, ServeConfig, ServerHandle};
pub use wire::{Request, Response, WireError};
