//! Planarity library built from scratch for the PODC 2020 reproduction.
//!
//! The paper's proof-labeling scheme needs a *combinatorial planar
//! embedding* (a rotation system) on the prover side; no external crate
//! is used. This crate provides:
//!
//! * [`lr`] — the left-right planarity test (de Fraysseix–Rosenstiehl,
//!   in Brandes' formulation), implemented iteratively, with full
//!   embedding extraction;
//! * [`embedding`] — rotation systems, face traversal, Euler-formula
//!   validation (every embedding we produce is *self-certified* planar),
//!   and outerplanarity via the apex trick;
//! * [`kuratowski`] — extraction of a subdivided `K5`/`K3,3` from any
//!   non-planar graph (the folklore non-planarity certificate of §2);
//! * [`tembed`] — the paper's Section 3.2 pipeline: DFS mapping `f`,
//!   the graph `G_{T,f}` on `2n−1` virtual nodes, and the laminar
//!   interval labels `I(x)` that make it path-outerplanar (Lemma 3).
//!
//! # Example
//!
//! ```
//! use dpc_planar::lr::{planarity, Planarity};
//! use dpc_graph::generators;
//!
//! match planarity(&generators::grid(5, 5)) {
//!     Planarity::Planar(rot) => assert!(rot.euler_check().is_ok()),
//!     Planarity::NonPlanar => panic!("grids are planar"),
//! }
//! assert!(matches!(
//!     planarity(&generators::complete(5)),
//!     Planarity::NonPlanar
//! ));
//! ```

pub mod dual;
pub mod embedding;
pub mod kuratowski;
pub mod lr;
pub mod tembed;
