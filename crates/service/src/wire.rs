//! The binary wire protocol of the certification service.
//!
//! Every message is a *frame*: a little-endian `u32` byte length
//! followed by that many body bytes. Bodies are sequences of LEB128
//! varints and raw byte runs (certificate payloads, bitmaps), so the
//! codec is byte-aligned end to end and decoded certificates are
//! byte-identical to the encoded ones.
//!
//! Graphs travel in a canonical delta encoding: node count, optional
//! identifier list, then the sorted smaller-endpoint-first edge list
//! with gap-encoded coordinates. Sortedness is enforced *by
//! construction* on decode (coordinates are reconstructed from
//! non-negative gaps), so malformed input can produce `Protocol`
//! errors but never duplicate edges, self-loops, or panics.
//!
//! Request kinds: Certify, Check, Gen, SoundnessProbe, Stats,
//! SlowLog, StoreList, StorePush, GraphChunkBegin, GraphChunk,
//! GraphChunkEnd. The codec is total: `decode(encode(x)) == x` for
//! every request and response, which the property tests in
//! `tests/wire_props.rs` pin down across all generator families.
//!
//! StoreList and StorePush are the replication plane (wire v6): a
//! peer lists another peer's store key digests, then streams it the
//! records it lacks as CRC-checked [`StoreRecord`] bodies — the
//! over-TCP twin of `SegmentStore::merge_from`'s dedup-by-key merge.
//!
//! The GraphChunk* kinds are the giant-graph plane (wire v7): a
//! client streams one graph's canonical encoding as CRC-checked,
//! sequence-numbered chunks, and the server reassembles it
//! *incrementally* through [`GraphStreamDecoder`] — between chunks it
//! keeps only a partial trailing varint (a handful of bytes) plus the
//! graph being built, so peak reassembly memory is O(chunk + graph
//! index) no matter how large the upload is.
//!
//! The Interactive* and Audit kinds are the randomized-verification
//! plane (wire v8). An interactive session is the paper's dMAM
//! exchange over TCP: the client (Merlin) opens with
//! `InteractiveBegin` carrying the graph, its commitment assignment,
//! and the session seed; the server (Arthur) answers with a
//! `Challenge` derived deterministically from that seed, the client
//! sends its `InteractiveRespond`, and the server verifies every node
//! and closes with a `Verdict` carrying the per-node reject count and
//! the scheme's soundness bound. `Audit` triggers one randomized
//! store-audit sweep on demand and reports what it sampled,
//! failed, and quarantined.

use crate::metrics::{SlowLogEntry, StatsSnapshot};
use crate::registry::SchemeId;
use crate::store::{crc32, StoreRecord};
use dpc_core::harness::Outcome;
use dpc_core::scheme::Assignment;
use dpc_graph::{canon, Graph, GraphBuilder};
use dpc_runtime::{get_bytes, get_uvarint, put_uvarint, DecodeError};
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame body, to bound allocation on malicious input.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Upper bound on node count in a wire graph.
pub const MAX_WIRE_NODES: u64 = 1 << 22;
/// Upper bound on node count in a chunk-streamed graph. Streamed
/// graphs are not bounded by one frame, so the cap is above
/// [`MAX_WIRE_NODES`]; it matches `MAX_WIRE_CERTS`, keeping the
/// merged `Outcome` of a giant graph decodable by ordinary clients.
pub const MAX_STREAM_NODES: u64 = 1 << 24;
/// Upper bound on one `GraphChunk` payload the server will buffer.
pub const MAX_CHUNK_BYTES: usize = 4 << 20;
/// Default client-side chunk payload size for streamed uploads.
pub const DEFAULT_CHUNK_BYTES: usize = 256 << 10;

/// Errors of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure.
    Io(io::Error),
    /// A varint or byte run could not be read.
    Decode(DecodeError),
    /// Structurally invalid message (bad tag, bounds, trailing bytes).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Decode(e) => write!(f, "malformed frame: {e}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

fn protocol(msg: impl Into<String>) -> WireError {
    WireError::Protocol(msg.into())
}

// ---------------------------------------------------------------------------
// Frames.

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_BYTES);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly (EOF at a frame boundary).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(protocol(format!("frame of {len} bytes exceeds the limit")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---------------------------------------------------------------------------
// Graphs.

/// Appends the canonical wire encoding of a graph.
pub fn encode_graph(out: &mut Vec<u8>, g: &Graph) {
    put_uvarint(out, g.node_count() as u64);
    let custom = !g.has_default_ids();
    put_uvarint(out, custom as u64);
    if custom {
        for &id in g.ids() {
            put_uvarint(out, id);
        }
    }
    let edges = canon::canonical_edges(g);
    put_uvarint(out, edges.len() as u64);
    let (mut prev_u, mut prev_v) = (0u32, 0u32);
    for (i, &(u, v)) in edges.iter().enumerate() {
        let du = u - prev_u;
        put_uvarint(out, du as u64);
        if i == 0 || du > 0 {
            put_uvarint(out, (v - u - 1) as u64);
        } else {
            put_uvarint(out, (v - prev_v - 1) as u64);
        }
        prev_u = u;
        prev_v = v;
    }
}

/// Decodes a wire graph from the front of `buf`, advancing it.
///
/// Amplification guard: the node count must be roughly covered by the
/// bytes actually present (any connected graph carries at least
/// `2(n-1)` edge bytes; the 64x headroom also admits realistically
/// sparse disconnected graphs sent to Check), so a few-byte frame
/// cannot materialize a multi-hundred-MB `Graph` before the server
/// even looks at it. Only pathological near-edgeless graphs beyond a
/// few hundred nodes are rejected by this bound.
pub fn decode_graph(buf: &mut &[u8]) -> Result<Graph, WireError> {
    let n = get_uvarint(buf)?;
    if n > MAX_WIRE_NODES {
        return Err(protocol(format!("graph with {n} nodes exceeds the limit")));
    }
    if n > 64 * buf.len() as u64 + 1 {
        return Err(protocol(format!(
            "{n} nodes is not supported by a {}-byte frame",
            buf.len()
        )));
    }
    let n = n as u32;
    let custom_ids = match get_uvarint(buf)? {
        0 => false,
        1 => true,
        x => return Err(protocol(format!("bad id flag {x}"))),
    };
    let ids = if custom_ids {
        if n as usize > buf.len() {
            return Err(protocol("identifier list longer than the frame"));
        }
        let mut ids = Vec::with_capacity(n as usize);
        for _ in 0..n {
            ids.push(get_uvarint(buf)?);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(protocol("duplicate network identifiers"));
        }
        Some(ids)
    } else {
        None
    };
    let m = get_uvarint(buf)?;
    let max_m = n as u64 * (n as u64).saturating_sub(1) / 2;
    if m > max_m {
        return Err(protocol(format!("{m} edges on {n} nodes is impossible")));
    }
    if m > buf.len() as u64 / 2 {
        // each edge is two varints, at least two bytes
        return Err(protocol("edge list longer than the frame"));
    }
    let mut b = GraphBuilder::new(n);
    if let Some(ids) = ids {
        b.with_ids(ids);
    }
    let (mut prev_u, mut prev_v) = (0u32, 0u32);
    for i in 0..m {
        let du = get_uvarint(buf)?;
        let u = (prev_u as u64)
            .checked_add(du)
            .filter(|&u| u < n as u64)
            .ok_or_else(|| protocol("edge endpoint out of range"))? as u32;
        let dv = get_uvarint(buf)?;
        let base = if i == 0 || du > 0 {
            u as u64
        } else {
            prev_v as u64
        };
        let v = base
            .checked_add(dv)
            .and_then(|x| x.checked_add(1))
            .filter(|&v| v < n as u64)
            .ok_or_else(|| protocol("edge endpoint out of range"))? as u32;
        b.add_edge(u, v)
            .map_err(|e| protocol(format!("bad edge list: {e}")))?;
        prev_u = u;
        prev_v = v;
    }
    Ok(b.build())
}

/// Reads one uvarint if its terminating byte is present, advancing
/// `buf`. `Ok(None)` means the varint is split across a chunk
/// boundary — feed more bytes. An unterminated run of 10+ bytes can
/// never complete into a valid `u64` varint and is rejected here
/// rather than buffered forever.
fn try_uvarint(buf: &mut &[u8]) -> Result<Option<u64>, WireError> {
    match buf.iter().position(|b| b & 0x80 == 0) {
        Some(end) => {
            let mut head = &buf[..=end];
            let v = get_uvarint(&mut head)?;
            *buf = &buf[end + 1..];
            Ok(Some(v))
        }
        None if buf.len() >= 10 => Err(protocol("unterminated varint in graph stream")),
        None => Ok(None),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamStage {
    NodeCount,
    IdFlag,
    Ids,
    EdgeCount,
    Edges,
    Done,
}

/// Incremental decoder for the canonical graph encoding of
/// [`encode_graph`], fed one chunk at a time.
///
/// The decoder consumes every complete varint of each chunk as it
/// arrives and carries at most one *partial* trailing varint (under
/// ten bytes) to the next `feed` call, so its transient memory is
/// O(chunk) and its resident state is the graph under construction
/// itself — never the raw upload. [`GraphStreamDecoder::carry_len`]
/// exposes the carried remnant so callers can meter the bound
/// (`chunk_carry_peak` in the server stats).
///
/// The grammar and validity checks match [`decode_graph`] exactly —
/// same gap decoding, same endpoint bounds, same duplicate-id
/// rejection — except that the node cap is [`MAX_STREAM_NODES`] and
/// the frame-proportional amplification guards are replaced by the
/// bytes the stream actually delivers. A decoded stream re-encodes
/// byte-identically to the single-frame form.
pub struct GraphStreamDecoder {
    stage: StreamStage,
    carry: Vec<u8>,
    n: u32,
    ids: Vec<u64>,
    custom_ids: bool,
    m: u64,
    edges_done: u64,
    prev_u: u32,
    prev_v: u32,
    pending_du: Option<u64>,
    builder: Option<GraphBuilder>,
}

impl Default for GraphStreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphStreamDecoder {
    /// A decoder at the start of the graph grammar.
    pub fn new() -> Self {
        GraphStreamDecoder {
            stage: StreamStage::NodeCount,
            carry: Vec::new(),
            n: 0,
            ids: Vec::new(),
            custom_ids: false,
            m: 0,
            edges_done: 0,
            prev_u: 0,
            prev_v: 0,
            pending_du: None,
            builder: None,
        }
    }

    /// Bytes carried over from the previous chunk (a split varint).
    pub fn carry_len(&self) -> usize {
        self.carry.len()
    }

    /// Consumes one chunk of the encoding.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), WireError> {
        let joined;
        let mut buf: &[u8] = if self.carry.is_empty() {
            chunk
        } else {
            let mut v = std::mem::take(&mut self.carry);
            v.extend_from_slice(chunk);
            joined = v;
            &joined
        };
        self.advance(&mut buf)?;
        self.carry = buf.to_vec();
        Ok(())
    }

    fn advance(&mut self, buf: &mut &[u8]) -> Result<(), WireError> {
        loop {
            match self.stage {
                StreamStage::NodeCount => {
                    let Some(n) = try_uvarint(buf)? else {
                        return Ok(());
                    };
                    if n > MAX_STREAM_NODES {
                        return Err(protocol(format!(
                            "streamed graph with {n} nodes exceeds the limit"
                        )));
                    }
                    self.n = n as u32;
                    self.stage = StreamStage::IdFlag;
                }
                StreamStage::IdFlag => {
                    let Some(flag) = try_uvarint(buf)? else {
                        return Ok(());
                    };
                    self.custom_ids = match flag {
                        0 => false,
                        1 => true,
                        x => return Err(protocol(format!("bad id flag {x}"))),
                    };
                    self.stage = if self.custom_ids {
                        StreamStage::Ids
                    } else {
                        StreamStage::EdgeCount
                    };
                }
                StreamStage::Ids => {
                    while (self.ids.len() as u64) < self.n as u64 {
                        let Some(id) = try_uvarint(buf)? else {
                            return Ok(());
                        };
                        self.ids.push(id);
                    }
                    let mut sorted = self.ids.clone();
                    sorted.sort_unstable();
                    if sorted.windows(2).any(|w| w[0] == w[1]) {
                        return Err(protocol("duplicate network identifiers"));
                    }
                    self.stage = StreamStage::EdgeCount;
                }
                StreamStage::EdgeCount => {
                    let Some(m) = try_uvarint(buf)? else {
                        return Ok(());
                    };
                    let max_m = self.n as u64 * (self.n as u64).saturating_sub(1) / 2;
                    if m > max_m {
                        return Err(protocol(format!(
                            "{m} edges on {} nodes is impossible",
                            self.n
                        )));
                    }
                    self.m = m;
                    let mut b = GraphBuilder::new(self.n);
                    if self.custom_ids {
                        b.with_ids(std::mem::take(&mut self.ids));
                    }
                    self.builder = Some(b);
                    self.stage = StreamStage::Edges;
                }
                StreamStage::Edges => {
                    while self.edges_done < self.m {
                        let du = match self.pending_du.take() {
                            Some(du) => du,
                            None => {
                                let Some(du) = try_uvarint(buf)? else {
                                    return Ok(());
                                };
                                du
                            }
                        };
                        let Some(dv) = try_uvarint(buf)? else {
                            // half an edge: remember du for the next chunk
                            self.pending_du = Some(du);
                            return Ok(());
                        };
                        let n = self.n;
                        let u = (self.prev_u as u64)
                            .checked_add(du)
                            .filter(|&u| u < n as u64)
                            .ok_or_else(|| protocol("edge endpoint out of range"))?
                            as u32;
                        let base = if self.edges_done == 0 || du > 0 {
                            u as u64
                        } else {
                            self.prev_v as u64
                        };
                        let v = base
                            .checked_add(dv)
                            .and_then(|x| x.checked_add(1))
                            .filter(|&v| v < n as u64)
                            .ok_or_else(|| protocol("edge endpoint out of range"))?
                            as u32;
                        self.builder
                            .as_mut()
                            .expect("builder exists in Edges stage")
                            .add_edge(u, v)
                            .map_err(|e| protocol(format!("bad edge list: {e}")))?;
                        self.prev_u = u;
                        self.prev_v = v;
                        self.edges_done += 1;
                    }
                    self.stage = StreamStage::Done;
                }
                StreamStage::Done => {
                    if buf.is_empty() {
                        return Ok(());
                    }
                    return Err(protocol(format!(
                        "{} trailing bytes after the edge list",
                        buf.len()
                    )));
                }
            }
        }
    }

    /// Completes the decode; the stream must have delivered the whole
    /// grammar, down to the last edge.
    pub fn finish(mut self) -> Result<Graph, WireError> {
        if self.stage != StreamStage::Done || !self.carry.is_empty() {
            return Err(protocol("truncated graph stream"));
        }
        Ok(self
            .builder
            .take()
            .expect("builder exists once the grammar completed")
            .build())
    }
}

fn encode_string(out: &mut Vec<u8>, s: &str) {
    dpc_runtime::put_string(out, s);
}

fn decode_string(buf: &mut &[u8]) -> Result<String, WireError> {
    // the announced length is bounded by the remaining frame bytes
    // inside get_string, and frames are already capped
    Ok(dpc_runtime::get_string(buf)?)
}

// ---------------------------------------------------------------------------
// Request extensions.

/// Extension tag carrying a scheme id (payload: one varint ≤ `u16::MAX`).
pub const EXT_SCHEME_ID: u64 = 1;

/// Upper bound on one extension payload.
const MAX_EXT_BYTES: usize = 1 << 16;

/// Appends the trailing extension block of a request. Extensions are
/// `(tag, length, payload)` triples after the legacy fields; decoders
/// skip unknown tags, so the block is the protocol's growth point.
/// The scheme id is only emitted when it is not the default
/// ([`SchemeId::PLANARITY`]) — planarity requests are byte-identical
/// to the pre-registry (v1) encoding.
fn encode_extensions(out: &mut Vec<u8>, scheme: SchemeId) {
    if scheme != SchemeId::PLANARITY {
        put_uvarint(out, EXT_SCHEME_ID);
        let mut payload = Vec::with_capacity(3);
        put_uvarint(&mut payload, scheme.0 as u64);
        put_uvarint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
}

/// Decodes the trailing extension block, consuming the rest of `buf`.
/// Absent block (or absent scheme-id extension) means planarity.
/// Unknown extension tags are skipped; a duplicate or malformed
/// scheme-id extension is a protocol error. Note the id is *not*
/// checked against any registry here — routing a syntactically valid
/// but unregistered id is the server's job (it answers with a clean
/// `Error` response), not the codec's.
fn decode_extensions(buf: &mut &[u8]) -> Result<SchemeId, WireError> {
    let mut scheme: Option<SchemeId> = None;
    while !buf.is_empty() {
        let tag = get_uvarint(buf)?;
        let len = get_uvarint(buf)? as usize;
        if len > MAX_EXT_BYTES {
            return Err(protocol(format!("extension {tag} of {len} bytes")));
        }
        let mut payload = get_bytes(buf, len)?;
        if tag == EXT_SCHEME_ID {
            if scheme.is_some() {
                return Err(protocol("duplicate scheme-id extension"));
            }
            let id = get_uvarint(&mut payload)?;
            if id > u16::MAX as u64 || !payload.is_empty() {
                return Err(protocol(format!("malformed scheme id {id}")));
            }
            scheme = Some(SchemeId(id as u16));
        }
        // any other tag: skip via its length (forward compatibility)
    }
    Ok(scheme.unwrap_or(SchemeId::PLANARITY))
}

// ---------------------------------------------------------------------------
// Requests.

/// Per-request certify flags.
pub const CERTIFY_FLAG_BYPASS_CACHE: u64 = 1;
/// Certify flag: answer only if the certificate is already cached;
/// on a miss the server replies `Error(`[`NOT_CACHED`]`)` and never
/// runs the prover. This is the replica probe of a replicated read —
/// a `ClusterClient` walks the rendezvous ranking with it so a warm
/// rank-2 node can answer without the cold rank-1 node proving.
pub const CERTIFY_FLAG_CACHED_ONLY: u64 = 2;

/// Certify flag: answer with a [`Response::CertifiedSummary`]
/// (outcome only, no assignment) instead of a full `Certified`. This
/// is how fleet-distributed proving stays frame-bounded: a giant
/// graph's assignment would not fit one response frame, but its
/// verdict bitmap and fold totals always do. Summary mode also
/// unlocks component-split proving of disconnected graphs (the plain
/// path declines them). Mutually exclusive with
/// [`CERTIFY_FLAG_CACHED_ONLY`].
pub const CERTIFY_FLAG_SUMMARY: u64 = 4;

/// The exact `Error` payload a cached-only certify miss carries.
/// Clients match it verbatim to tell "cold replica, keep walking"
/// from a real failure.
pub const NOT_CACHED: &str = "not cached";

/// A client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run the scheme's prover (or serve it from cache) and return the
    /// certificate assignment plus the measured outcome.
    Certify {
        /// The network to certify.
        graph: Graph,
        /// Skip the cache entirely (used to measure cold latency).
        bypass_cache: bool,
        /// Only answer from cache; a miss is `Error(`[`NOT_CACHED`]`)`
        /// and never a prove (replica probes). Mutually exclusive
        /// with `bypass_cache`.
        cached_only: bool,
        /// Answer with the outcome summary only (no assignment), and
        /// prove disconnected graphs component by component instead
        /// of declining them (see [`CERTIFY_FLAG_SUMMARY`]).
        summary: bool,
        /// The registered scheme to run (default: planarity).
        scheme: SchemeId,
    },
    /// Centralized membership check. Under planarity this returns an
    /// embedding/witness summary; under any other scheme a generic
    /// in-class/out-of-class verdict.
    Check {
        /// The graph to test.
        graph: Graph,
        /// The registered scheme whose class is tested.
        scheme: SchemeId,
    },
    /// Generate a graph server-side from a named family.
    Gen {
        /// Family name (see [`crate::gen::FAMILIES`]).
        family: String,
        /// Approximate node count.
        n: u32,
        /// Generator seed.
        seed: u64,
        /// Routes the `"default"` family to the scheme's canonical
        /// yes-instance generator ([`crate::gen::default_family`]);
        /// concrete family names ignore it. Never validated against
        /// the server's registry, so generation works against
        /// registry-restricted servers.
        scheme: SchemeId,
    },
    /// Run the adversarial attack battery against the graph.
    SoundnessProbe {
        /// The (typically no-instance) network to attack.
        graph: Graph,
        /// Attack seed.
        seed: u64,
        /// The registered scheme to attack (must support probes).
        scheme: SchemeId,
    },
    /// Fetch server counters and latency quantiles.
    Stats,
    /// Fetch the retained slow-request log (stage breakdowns of
    /// requests that crossed the server's `--slow-ms` threshold).
    SlowLog,
    /// List the key digests of the server's certificate store
    /// (anti-entropy phase 1: "what do you have?").
    StoreList,
    /// Stream store records into the server's store, deduplicated by
    /// content key (anti-entropy phase 2, replica writes, and
    /// read-repair backfills).
    StorePush {
        /// The records to absorb, each CRC-checked on the wire.
        records: Vec<StoreRecord>,
    },
    /// Open a chunked graph upload session on this connection. The
    /// graph streamed through the session is certified in summary
    /// mode once `GraphChunkEnd` closes it. Answered with a
    /// [`Response::ChunkAck`].
    GraphChunkBegin {
        /// Client-chosen session id; `GraphChunk`/`GraphChunkEnd`
        /// frames on the same connection must echo it.
        session: u64,
        /// Skip the cache for the final certify.
        bypass_cache: bool,
        /// The registered scheme to run (default: planarity).
        scheme: SchemeId,
    },
    /// One CRC-checked slice of the streamed graph encoding.
    /// Answered with a [`Response::ChunkAck`].
    GraphChunk {
        /// Session id from `GraphChunkBegin`.
        session: u64,
        /// Zero-based chunk sequence number; chunks must arrive in
        /// order, without gaps or duplicates.
        seq: u64,
        /// The encoding slice (at most [`MAX_CHUNK_BYTES`]).
        payload: Vec<u8>,
    },
    /// Close a chunk session: the server checks the totals and the
    /// whole-payload CRC, finishes the incremental decode, and
    /// certifies the graph in summary mode. Answered with the
    /// certify's [`Response::CertifiedSummary`] / `Declined` /
    /// `Error`.
    GraphChunkEnd {
        /// Session id from `GraphChunkBegin`.
        session: u64,
        /// Number of `GraphChunk` frames the client sent.
        total_chunks: u64,
        /// Total payload bytes across all chunks.
        total_bytes: u64,
        /// CRC-32 of the whole reassembled payload.
        crc: u32,
    },
    /// Open an interactive (dMAM) session on this connection: the
    /// client plays Merlin and commits, the server plays Arthur.
    /// Answered with a [`Response::Challenge`] whose coin is a pure
    /// function of `seed`, so the whole transcript is reproducible
    /// from the seed logged with the session's trace.
    InteractiveBegin {
        /// Client-chosen session id; the `InteractiveRespond` frame
        /// on the same connection must echo it.
        session: u64,
        /// Session seed: Arthur's public coin is derived from it
        /// (`challenge_from_seed`), never drawn from server state.
        seed: u64,
        /// The network under interactive certification.
        graph: Graph,
        /// Merlin's commitment assignment (round 1 of the dMAM
        /// exchange).
        commit: Assignment,
        /// The registered interactive protocol to run (default:
        /// planarity).
        scheme: SchemeId,
    },
    /// Merlin's response to the challenge (round 3). Answered with
    /// the closing [`Response::Verdict`].
    InteractiveRespond {
        /// Session id from `InteractiveBegin`.
        session: u64,
        /// The response assignment, opened against the challenge.
        response: Assignment,
    },
    /// Run one randomized store-audit sweep now: sample stored
    /// certificates, re-verify a random vertex subset of each, and
    /// quarantine records whose bytes are CRC-valid but fail
    /// verification. Answered with a [`Response::AuditReport`].
    Audit {
        /// Records to sample in this sweep (0 means the server's
        /// default).
        samples: u64,
        /// Sampling seed, so a sweep is reproducible.
        seed: u64,
    },
}

impl Request {
    /// The scheme id the request addresses (`None` for the
    /// scheme-less kinds: Stats, SlowLog, StoreList, StorePush).
    pub fn scheme(&self) -> Option<SchemeId> {
        match self {
            Request::Certify { scheme, .. }
            | Request::Check { scheme, .. }
            | Request::Gen { scheme, .. }
            | Request::SoundnessProbe { scheme, .. }
            | Request::GraphChunkBegin { scheme, .. }
            | Request::InteractiveBegin { scheme, .. } => Some(*scheme),
            Request::Stats
            | Request::SlowLog
            | Request::StoreList
            | Request::StorePush { .. }
            | Request::GraphChunk { .. }
            | Request::GraphChunkEnd { .. }
            | Request::InteractiveRespond { .. }
            | Request::Audit { .. } => None,
        }
    }

    /// The request's wire tag — what a [`crate::metrics::Trace`]
    /// carries as its `kind` and slow-log entries echo back.
    pub fn kind_tag(&self) -> u8 {
        (match self {
            Request::Certify { .. } => REQ_CERTIFY,
            Request::Check { .. } => REQ_CHECK,
            Request::Gen { .. } => REQ_GEN,
            Request::SoundnessProbe { .. } => REQ_SOUNDNESS,
            Request::Stats => REQ_STATS,
            Request::SlowLog => REQ_SLOWLOG,
            Request::StoreList => REQ_STORELIST,
            Request::StorePush { .. } => REQ_STOREPUSH,
            Request::GraphChunkBegin { .. } => REQ_CHUNK_BEGIN,
            Request::GraphChunk { .. } => REQ_CHUNK,
            Request::GraphChunkEnd { .. } => REQ_CHUNK_END,
            Request::InteractiveBegin { .. } => REQ_INTERACTIVE_BEGIN,
            Request::InteractiveRespond { .. } => REQ_INTERACTIVE_RESPOND,
            Request::Audit { .. } => REQ_AUDIT,
        }) as u8
    }
}

const REQ_CERTIFY: u64 = 1;
const REQ_CHECK: u64 = 2;
const REQ_GEN: u64 = 3;
const REQ_SOUNDNESS: u64 = 4;
const REQ_STATS: u64 = 5;
const REQ_SLOWLOG: u64 = 6;
const REQ_STORELIST: u64 = 7;
const REQ_STOREPUSH: u64 = 8;
const REQ_CHUNK_BEGIN: u64 = 9;
const REQ_CHUNK: u64 = 10;
const REQ_CHUNK_END: u64 = 11;
const REQ_INTERACTIVE_BEGIN: u64 = 12;
const REQ_INTERACTIVE_RESPOND: u64 = 13;
const REQ_AUDIT: u64 = 14;

// Borrowing encoders: build a frame body straight from a `&Graph`,
// without constructing an owned `Request` (the client's hot path —
// certifying a 10k-node graph should not clone it first).

/// Frame body of a Certify request.
pub fn encode_certify_request(graph: &Graph, bypass_cache: bool, scheme: SchemeId) -> Vec<u8> {
    let flags = if bypass_cache {
        CERTIFY_FLAG_BYPASS_CACHE
    } else {
        0
    };
    certify_body(graph, flags, scheme)
}

/// Frame body of a cached-only Certify probe (see
/// [`CERTIFY_FLAG_CACHED_ONLY`]): a warm server answers from cache, a
/// cold one replies `Error(`[`NOT_CACHED`]`)` without proving.
pub fn encode_certify_probe_request(graph: &Graph, scheme: SchemeId) -> Vec<u8> {
    certify_body(graph, CERTIFY_FLAG_CACHED_ONLY, scheme)
}

/// Frame body of a summary Certify (see [`CERTIFY_FLAG_SUMMARY`]):
/// the answer carries the outcome fold but no assignment, and
/// disconnected graphs are proved component by component. This is
/// the frame fleet-distributed proving sends for each partition.
pub fn encode_certify_summary_request(
    graph: &Graph,
    bypass_cache: bool,
    scheme: SchemeId,
) -> Vec<u8> {
    let mut flags = CERTIFY_FLAG_SUMMARY;
    if bypass_cache {
        flags |= CERTIFY_FLAG_BYPASS_CACHE;
    }
    certify_body(graph, flags, scheme)
}

/// Frame body of a GraphChunkBegin request.
pub fn encode_chunk_begin_request(session: u64, bypass_cache: bool, scheme: SchemeId) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_CHUNK_BEGIN);
    put_uvarint(&mut out, session);
    put_uvarint(
        &mut out,
        if bypass_cache {
            CERTIFY_FLAG_BYPASS_CACHE
        } else {
            0
        },
    );
    encode_extensions(&mut out, scheme);
    out
}

/// Frame body of a GraphChunk request:
/// `session ‖ seq ‖ uvarint(len) ‖ payload ‖ crc32_le(payload)`.
pub fn encode_chunk_request(session: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_CHUNK_BYTES);
    let mut out = Vec::with_capacity(payload.len() + 32);
    put_uvarint(&mut out, REQ_CHUNK);
    put_uvarint(&mut out, session);
    put_uvarint(&mut out, seq);
    put_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Frame body of a GraphChunkEnd request.
pub fn encode_chunk_end_request(
    session: u64,
    total_chunks: u64,
    total_bytes: u64,
    crc: u32,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_CHUNK_END);
    put_uvarint(&mut out, session);
    put_uvarint(&mut out, total_chunks);
    put_uvarint(&mut out, total_bytes);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Frame body of an InteractiveBegin request: Merlin's opening move
/// (session, seed, graph, commitment), built straight from borrows so
/// the commitment assignment is never cloned.
pub fn encode_interactive_begin_request(
    session: u64,
    seed: u64,
    graph: &Graph,
    commit: &Assignment,
    scheme: SchemeId,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(commit.byte_size() + 64);
    put_uvarint(&mut out, REQ_INTERACTIVE_BEGIN);
    put_uvarint(&mut out, session);
    put_uvarint(&mut out, seed);
    encode_graph(&mut out, graph);
    commit.encode_into(&mut out);
    encode_extensions(&mut out, scheme);
    out
}

/// Frame body of an InteractiveRespond request (round 3: Merlin
/// opens the committed structure against the challenge).
pub fn encode_interactive_respond_request(session: u64, response: &Assignment) -> Vec<u8> {
    let mut out = Vec::with_capacity(response.byte_size() + 16);
    put_uvarint(&mut out, REQ_INTERACTIVE_RESPOND);
    put_uvarint(&mut out, session);
    response.encode_into(&mut out);
    out
}

/// Frame body of an Audit request.
pub fn encode_audit_request(samples: u64, seed: u64) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_AUDIT);
    put_uvarint(&mut out, samples);
    put_uvarint(&mut out, seed);
    out
}

fn certify_body(graph: &Graph, flags: u64, scheme: SchemeId) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_CERTIFY);
    put_uvarint(&mut out, flags);
    encode_graph(&mut out, graph);
    encode_extensions(&mut out, scheme);
    out
}

/// Frame body of a Check request.
pub fn encode_check_request(graph: &Graph, scheme: SchemeId) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_CHECK);
    encode_graph(&mut out, graph);
    encode_extensions(&mut out, scheme);
    out
}

/// Frame body of a Gen request.
pub fn encode_gen_request(family: &str, n: u32, seed: u64, scheme: SchemeId) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_GEN);
    encode_string(&mut out, family);
    put_uvarint(&mut out, n as u64);
    put_uvarint(&mut out, seed);
    encode_extensions(&mut out, scheme);
    out
}

/// Frame body of a SoundnessProbe request.
pub fn encode_soundness_request(graph: &Graph, seed: u64, scheme: SchemeId) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_SOUNDNESS);
    put_uvarint(&mut out, seed);
    encode_graph(&mut out, graph);
    encode_extensions(&mut out, scheme);
    out
}

/// Frame body of a Stats request.
pub fn encode_stats_request() -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_STATS);
    out
}

/// Frame body of a SlowLog request.
pub fn encode_slowlog_request() -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_SLOWLOG);
    out
}

/// Frame body of a StoreList request.
pub fn encode_store_list_request() -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_STORELIST);
    out
}

/// Frame body of a StorePush request: a record count, then each
/// record as `uvarint(body_len) ‖ body ‖ crc32_le(body)` where `body`
/// is [`StoreRecord::encode_body`]'s framing. The CRC guards the
/// certificate bytes in transit exactly like the segment files guard
/// them at rest.
pub fn encode_store_push_request(records: &[StoreRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, REQ_STOREPUSH);
    put_uvarint(&mut out, records.len() as u64);
    for record in records {
        let body = record.encode_body();
        put_uvarint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
    }
    out
}

impl Request {
    /// Encodes the request as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Certify {
                graph,
                bypass_cache,
                cached_only,
                summary,
                scheme,
            } => {
                let mut flags = 0;
                if *bypass_cache {
                    flags |= CERTIFY_FLAG_BYPASS_CACHE;
                }
                if *cached_only {
                    flags |= CERTIFY_FLAG_CACHED_ONLY;
                }
                if *summary {
                    flags |= CERTIFY_FLAG_SUMMARY;
                }
                certify_body(graph, flags, *scheme)
            }
            Request::Check { graph, scheme } => encode_check_request(graph, *scheme),
            Request::Gen {
                family,
                n,
                seed,
                scheme,
            } => encode_gen_request(family, *n, *seed, *scheme),
            Request::SoundnessProbe {
                graph,
                seed,
                scheme,
            } => encode_soundness_request(graph, *seed, *scheme),
            Request::Stats => encode_stats_request(),
            Request::SlowLog => encode_slowlog_request(),
            Request::StoreList => encode_store_list_request(),
            Request::StorePush { records } => encode_store_push_request(records),
            Request::GraphChunkBegin {
                session,
                bypass_cache,
                scheme,
            } => encode_chunk_begin_request(*session, *bypass_cache, *scheme),
            Request::GraphChunk {
                session,
                seq,
                payload,
            } => encode_chunk_request(*session, *seq, payload),
            Request::GraphChunkEnd {
                session,
                total_chunks,
                total_bytes,
                crc,
            } => encode_chunk_end_request(*session, *total_chunks, *total_bytes, *crc),
            Request::InteractiveBegin {
                session,
                seed,
                graph,
                commit,
                scheme,
            } => encode_interactive_begin_request(*session, *seed, graph, commit, *scheme),
            Request::InteractiveRespond { session, response } => {
                encode_interactive_respond_request(*session, response)
            }
            Request::Audit { samples, seed } => encode_audit_request(*samples, *seed),
        }
    }

    /// Decodes a frame body; the whole body must be consumed.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut buf = body;
        let req = match get_uvarint(&mut buf)? {
            REQ_CERTIFY => {
                let flags = get_uvarint(&mut buf)?;
                let known =
                    CERTIFY_FLAG_BYPASS_CACHE | CERTIFY_FLAG_CACHED_ONLY | CERTIFY_FLAG_SUMMARY;
                if flags & !known != 0 {
                    return Err(protocol(format!("unknown certify flags {flags:#x}")));
                }
                if flags & CERTIFY_FLAG_CACHED_ONLY != 0
                    && flags & (CERTIFY_FLAG_BYPASS_CACHE | CERTIFY_FLAG_SUMMARY) != 0
                {
                    // "only the cache" contradicts both "skip the
                    // cache" and the prove-components summary mode
                    return Err(protocol("contradictory certify flags"));
                }
                Request::Certify {
                    bypass_cache: flags & CERTIFY_FLAG_BYPASS_CACHE != 0,
                    cached_only: flags & CERTIFY_FLAG_CACHED_ONLY != 0,
                    summary: flags & CERTIFY_FLAG_SUMMARY != 0,
                    graph: decode_graph(&mut buf)?,
                    scheme: decode_extensions(&mut buf)?,
                }
            }
            REQ_CHECK => Request::Check {
                graph: decode_graph(&mut buf)?,
                scheme: decode_extensions(&mut buf)?,
            },
            REQ_GEN => Request::Gen {
                family: decode_string(&mut buf)?,
                n: get_uvarint(&mut buf)? as u32,
                seed: get_uvarint(&mut buf)?,
                scheme: decode_extensions(&mut buf)?,
            },
            REQ_SOUNDNESS => {
                let seed = get_uvarint(&mut buf)?;
                Request::SoundnessProbe {
                    seed,
                    graph: decode_graph(&mut buf)?,
                    scheme: decode_extensions(&mut buf)?,
                }
            }
            REQ_STATS => Request::Stats,
            REQ_SLOWLOG => Request::SlowLog,
            REQ_STORELIST => Request::StoreList,
            REQ_STOREPUSH => {
                let count = get_uvarint(&mut buf)?;
                // the smallest record is ~8 bytes (1-byte length, a
                // 3-byte body, 4 CRC bytes), so a hostile count is
                // rejected before any allocation
                if count > buf.len() as u64 / 8 {
                    return Err(protocol("store push longer than the frame"));
                }
                let mut records = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let len = get_uvarint(&mut buf)? as usize;
                    if len > buf.len() {
                        return Err(protocol("store record longer than the frame"));
                    }
                    let body = get_bytes(&mut buf, len)?;
                    let crc = u32::from_le_bytes(
                        get_bytes(&mut buf, 4)?
                            .try_into()
                            .expect("get_bytes returned 4 bytes"),
                    );
                    if crc32(body) != crc {
                        return Err(protocol("store record failed its CRC check"));
                    }
                    let record = StoreRecord::decode_body(body)
                        .map_err(|e| protocol(format!("bad store record: {e}")))?;
                    records.push(record);
                }
                Request::StorePush { records }
            }
            REQ_CHUNK_BEGIN => {
                let session = get_uvarint(&mut buf)?;
                let flags = get_uvarint(&mut buf)?;
                if flags & !CERTIFY_FLAG_BYPASS_CACHE != 0 {
                    return Err(protocol(format!("unknown chunk-begin flags {flags:#x}")));
                }
                Request::GraphChunkBegin {
                    session,
                    bypass_cache: flags & CERTIFY_FLAG_BYPASS_CACHE != 0,
                    scheme: decode_extensions(&mut buf)?,
                }
            }
            REQ_CHUNK => {
                let session = get_uvarint(&mut buf)?;
                let seq = get_uvarint(&mut buf)?;
                let len = get_uvarint(&mut buf)? as usize;
                if len > MAX_CHUNK_BYTES {
                    return Err(protocol(format!("chunk of {len} bytes exceeds the limit")));
                }
                if len > buf.len() {
                    return Err(protocol("chunk payload longer than the frame"));
                }
                let payload = get_bytes(&mut buf, len)?;
                let crc = u32::from_le_bytes(
                    get_bytes(&mut buf, 4)?
                        .try_into()
                        .expect("get_bytes returned 4 bytes"),
                );
                if crc32(payload) != crc {
                    return Err(protocol("graph chunk failed its CRC check"));
                }
                Request::GraphChunk {
                    session,
                    seq,
                    payload: payload.to_vec(),
                }
            }
            REQ_CHUNK_END => {
                let session = get_uvarint(&mut buf)?;
                let total_chunks = get_uvarint(&mut buf)?;
                let total_bytes = get_uvarint(&mut buf)?;
                let crc = u32::from_le_bytes(
                    get_bytes(&mut buf, 4)?
                        .try_into()
                        .expect("get_bytes returned 4 bytes"),
                );
                Request::GraphChunkEnd {
                    session,
                    total_chunks,
                    total_bytes,
                    crc,
                }
            }
            REQ_INTERACTIVE_BEGIN => {
                let session = get_uvarint(&mut buf)?;
                let seed = get_uvarint(&mut buf)?;
                let graph = decode_graph(&mut buf)?;
                let commit = Assignment::decode_from(&mut buf)?;
                if commit.certs.len() != graph.node_count() {
                    return Err(protocol(format!(
                        "commitment for {} nodes on a {}-node graph",
                        commit.certs.len(),
                        graph.node_count()
                    )));
                }
                Request::InteractiveBegin {
                    session,
                    seed,
                    graph,
                    commit,
                    scheme: decode_extensions(&mut buf)?,
                }
            }
            REQ_INTERACTIVE_RESPOND => Request::InteractiveRespond {
                session: get_uvarint(&mut buf)?,
                response: Assignment::decode_from(&mut buf)?,
            },
            REQ_AUDIT => Request::Audit {
                samples: get_uvarint(&mut buf)?,
                seed: get_uvarint(&mut buf)?,
            },
            k => return Err(protocol(format!("unknown request kind {k}"))),
        };
        if !buf.is_empty() {
            return Err(protocol(format!("{} trailing bytes", buf.len())));
        }
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses.

/// Verdict of a Check request.
///
/// Planarity checks (the scheme-0 default) return the rich
/// embedding/witness verdicts; every other registered scheme answers
/// with the generic membership pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckVerdict {
    /// Planar, with the certified embedding's face count and genus.
    Planar {
        /// Number of faces of the embedding.
        faces: u64,
        /// Euler genus (0 for a certified planar embedding).
        genus: i64,
    },
    /// Non-planar, with the Kuratowski witness summary.
    NonPlanar {
        /// True for a K5 subdivision, false for K3,3.
        k5: bool,
        /// Branch nodes of the subdivision.
        branch_nodes: Vec<u32>,
        /// Number of edges of the subdivision.
        witness_edges: u64,
    },
    /// In the class of the (non-planarity) scheme named here.
    Member {
        /// Scheme name, echoed by the server.
        scheme: String,
    },
    /// Outside the class of the scheme named here.
    NonMember {
        /// Scheme name, echoed by the server.
        scheme: String,
        /// The prover's refusal reason.
        reason: String,
    },
}

/// One attack row of a soundness probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoundnessLine {
    /// Attack name.
    pub attack: String,
    /// Rejecting nodes, or `None` if the attack was inapplicable.
    pub rejects: Option<u64>,
}

/// A server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// The request failed (malformed input, unknown family, ...).
    Error(String),
    /// Certificates for a yes-instance.
    Certified {
        /// True when served from the certificate cache.
        cached: bool,
        /// Measured verification outcome.
        outcome: Outcome,
        /// The certificate assignment itself.
        assignment: Assignment,
    },
    /// The honest prover declined: the instance is outside the class.
    Declined {
        /// True when the (negative) result was served from cache.
        cached: bool,
        /// The prover's reason.
        reason: String,
    },
    /// Planarity verdict.
    Checked(CheckVerdict),
    /// A generated graph.
    Generated(Graph),
    /// Soundness probe rows.
    Soundness(Vec<SoundnessLine>),
    /// Server counters (boxed: the snapshot dwarfs every other variant).
    Stats(Box<StatsSnapshot>),
    /// Retained slow-request entries, newest first.
    SlowLog(Vec<SlowLogEntry>),
    /// The content-key digests of the server's store (StoreList
    /// answer): 128-bit keys, one per retained record.
    StoreKeys(Vec<u128>),
    /// Outcome of a StorePush.
    StorePushed {
        /// Records newly absorbed into the store.
        merged: u64,
        /// Records already present (deduplicated by content key).
        duplicates: u64,
    },
    /// A summary-mode certify answer: the measured outcome without
    /// the assignment, so the frame stays small for giant graphs.
    CertifiedSummary {
        /// True when served from the certificate cache.
        cached: bool,
        /// Measured (possibly component-merged) verification outcome.
        outcome: Outcome,
    },
    /// Acknowledges a `GraphChunkBegin` or `GraphChunk` frame.
    ChunkAck {
        /// The session the ack belongs to.
        session: u64,
        /// Chunks received in the session so far (0 for the Begin ack).
        received: u64,
    },
    /// Arthur's public coin, answering an `InteractiveBegin`. The
    /// coin is `challenge_from_seed(seed)` — a pure function of the
    /// session seed, never server randomness — so the transcript is
    /// reproducible and byte-identical across front ends.
    Challenge {
        /// The session the challenge belongs to.
        session: u64,
        /// The public coin every node's verifier sees.
        challenge: u64,
    },
    /// The closing verdict of an interactive session, answering an
    /// `InteractiveRespond`.
    Verdict {
        /// The session the verdict closes.
        session: u64,
        /// The challenge the response was verified against (echoed).
        challenge: u64,
        /// True when every node accepted.
        accept: bool,
        /// Number of rejecting nodes.
        reject_count: u64,
        /// Nodes verified.
        nodes: u64,
        /// Largest per-node commitment, in bits.
        max_commit_bits: u64,
        /// Largest per-node response, in bits.
        max_response_bits: u64,
        /// The scheme's per-session soundness bound, in parts per
        /// million: a forged proof on this graph survives one
        /// challenge with probability at most `soundness_ppm / 1e6`.
        soundness_ppm: u64,
    },
    /// Outcome of one randomized store-audit sweep (Audit answer).
    AuditReport {
        /// Records sampled by the sweep.
        sampled: u64,
        /// Records that failed re-verification or the fingerprint
        /// cross-check.
        failed: u64,
        /// Records actually removed from the cache and store.
        quarantined: u64,
    },
}

const RESP_ERROR: u64 = 0;
const RESP_CERTIFIED: u64 = 1;
const RESP_DECLINED: u64 = 2;
const RESP_CHECKED: u64 = 3;
const RESP_GENERATED: u64 = 4;
const RESP_SOUNDNESS: u64 = 5;
const RESP_STATS: u64 = 6;
const RESP_SLOWLOG: u64 = 7;
const RESP_STOREKEYS: u64 = 8;
const RESP_STOREPUSHED: u64 = 9;
const RESP_CERTIFIED_SUMMARY: u64 = 10;
const RESP_CHUNK_ACK: u64 = 11;
const RESP_CHALLENGE: u64 = 12;
const RESP_VERDICT: u64 = 13;
const RESP_AUDIT_REPORT: u64 = 14;

/// Upper bound on slow-log rows accepted on decode (well above
/// [`crate::metrics::SLOW_LOG_CAP`], leaving room for future
/// fleet-side aggregation).
const MAX_SLOWLOG_ROWS: usize = 4096;

/// Encodes the cacheable suffix of a Certified response (outcome +
/// assignment). The cache stores exactly these bytes, so a hit is a
/// memcpy of a shared buffer, never a re-encode of the certificates.
pub fn encode_certified_suffix(outcome: &Outcome, assignment: &Assignment) -> Vec<u8> {
    let mut out = Vec::with_capacity(assignment.byte_size() + 64);
    outcome.encode_into(&mut out);
    assignment.encode_into(&mut out);
    out
}

/// Builds a full Certified frame body from a pre-encoded suffix.
pub fn certified_body_from_suffix(cached: bool, suffix: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(suffix.len() + 2);
    put_uvarint(&mut out, RESP_CERTIFIED);
    put_uvarint(&mut out, cached as u64);
    out.extend_from_slice(suffix);
    out
}

/// Encodes the cacheable suffix of a Declined response (the reason
/// string) — the negative-cache counterpart of
/// [`encode_certified_suffix`].
pub fn encode_declined_suffix(reason: &str) -> Vec<u8> {
    let mut out = Vec::new();
    encode_string(&mut out, reason);
    out
}

/// Builds a full Declined frame body from a pre-encoded suffix.
pub fn declined_body_from_suffix(cached: bool, suffix: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(suffix.len() + 2);
    put_uvarint(&mut out, RESP_DECLINED);
    put_uvarint(&mut out, cached as u64);
    out.extend_from_slice(suffix);
    out
}

/// Builds a CertifiedSummary frame body from a cached Certified
/// suffix (outcome ‖ assignment): the outcome prefix is re-framed,
/// the assignment bytes are dropped. This is how a summary-mode
/// cache hit answers without re-encoding certificates it will not
/// send.
pub fn summary_body_from_suffix(cached: bool, suffix: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut rest = suffix;
    let outcome = Outcome::decode_from(&mut rest)?;
    let mut out = Vec::new();
    put_uvarint(&mut out, RESP_CERTIFIED_SUMMARY);
    put_uvarint(&mut out, cached as u64);
    outcome.encode_into(&mut out);
    Ok(out)
}

impl Response {
    /// Encodes the response as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Error(msg) => {
                put_uvarint(&mut out, RESP_ERROR);
                encode_string(&mut out, msg);
            }
            Response::Certified {
                cached,
                outcome,
                assignment,
            } => {
                return certified_body_from_suffix(
                    *cached,
                    &encode_certified_suffix(outcome, assignment),
                );
            }
            Response::Declined { cached, reason } => {
                return declined_body_from_suffix(*cached, &encode_declined_suffix(reason));
            }
            Response::Checked(verdict) => {
                put_uvarint(&mut out, RESP_CHECKED);
                match verdict {
                    CheckVerdict::Planar { faces, genus } => {
                        put_uvarint(&mut out, 1);
                        put_uvarint(&mut out, *faces);
                        put_uvarint(&mut out, *genus as u64);
                    }
                    CheckVerdict::NonPlanar {
                        k5,
                        branch_nodes,
                        witness_edges,
                    } => {
                        put_uvarint(&mut out, 0);
                        put_uvarint(&mut out, *k5 as u64);
                        put_uvarint(&mut out, branch_nodes.len() as u64);
                        for &b in branch_nodes {
                            put_uvarint(&mut out, b as u64);
                        }
                        put_uvarint(&mut out, *witness_edges);
                    }
                    CheckVerdict::Member { scheme } => {
                        put_uvarint(&mut out, 2);
                        encode_string(&mut out, scheme);
                    }
                    CheckVerdict::NonMember { scheme, reason } => {
                        put_uvarint(&mut out, 3);
                        encode_string(&mut out, scheme);
                        encode_string(&mut out, reason);
                    }
                }
            }
            Response::Generated(g) => {
                put_uvarint(&mut out, RESP_GENERATED);
                encode_graph(&mut out, g);
            }
            Response::Soundness(rows) => {
                put_uvarint(&mut out, RESP_SOUNDNESS);
                put_uvarint(&mut out, rows.len() as u64);
                for row in rows {
                    encode_string(&mut out, &row.attack);
                    match row.rejects {
                        None => put_uvarint(&mut out, 0),
                        Some(r) => put_uvarint(&mut out, 1 + r),
                    }
                }
            }
            Response::Stats(snapshot) => {
                put_uvarint(&mut out, RESP_STATS);
                snapshot.encode_into(&mut out);
            }
            Response::SlowLog(entries) => {
                put_uvarint(&mut out, RESP_SLOWLOG);
                put_uvarint(&mut out, entries.len() as u64);
                for entry in entries {
                    entry.encode_into(&mut out);
                }
            }
            Response::StoreKeys(keys) => {
                put_uvarint(&mut out, RESP_STOREKEYS);
                put_uvarint(&mut out, keys.len() as u64);
                for key in keys {
                    out.extend_from_slice(&key.to_le_bytes());
                }
            }
            Response::StorePushed { merged, duplicates } => {
                put_uvarint(&mut out, RESP_STOREPUSHED);
                put_uvarint(&mut out, *merged);
                put_uvarint(&mut out, *duplicates);
            }
            Response::CertifiedSummary { cached, outcome } => {
                put_uvarint(&mut out, RESP_CERTIFIED_SUMMARY);
                put_uvarint(&mut out, *cached as u64);
                outcome.encode_into(&mut out);
            }
            Response::ChunkAck { session, received } => {
                put_uvarint(&mut out, RESP_CHUNK_ACK);
                put_uvarint(&mut out, *session);
                put_uvarint(&mut out, *received);
            }
            Response::Challenge { session, challenge } => {
                put_uvarint(&mut out, RESP_CHALLENGE);
                put_uvarint(&mut out, *session);
                put_uvarint(&mut out, *challenge);
            }
            Response::Verdict {
                session,
                challenge,
                accept,
                reject_count,
                nodes,
                max_commit_bits,
                max_response_bits,
                soundness_ppm,
            } => {
                put_uvarint(&mut out, RESP_VERDICT);
                put_uvarint(&mut out, *session);
                put_uvarint(&mut out, *challenge);
                put_uvarint(&mut out, *accept as u64);
                put_uvarint(&mut out, *reject_count);
                put_uvarint(&mut out, *nodes);
                put_uvarint(&mut out, *max_commit_bits);
                put_uvarint(&mut out, *max_response_bits);
                put_uvarint(&mut out, *soundness_ppm);
            }
            Response::AuditReport {
                sampled,
                failed,
                quarantined,
            } => {
                put_uvarint(&mut out, RESP_AUDIT_REPORT);
                put_uvarint(&mut out, *sampled);
                put_uvarint(&mut out, *failed);
                put_uvarint(&mut out, *quarantined);
            }
        }
        out
    }

    /// Decodes a frame body; the whole body must be consumed.
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        let mut buf = body;
        let resp = match get_uvarint(&mut buf)? {
            RESP_ERROR => Response::Error(decode_string(&mut buf)?),
            RESP_CERTIFIED => {
                let cached = get_uvarint(&mut buf)? != 0;
                let outcome = Outcome::decode_from(&mut buf)?;
                let assignment = Assignment::decode_from(&mut buf)?;
                Response::Certified {
                    cached,
                    outcome,
                    assignment,
                }
            }
            RESP_DECLINED => Response::Declined {
                cached: get_uvarint(&mut buf)? != 0,
                reason: decode_string(&mut buf)?,
            },
            RESP_CHECKED => {
                let verdict = match get_uvarint(&mut buf)? {
                    1 => CheckVerdict::Planar {
                        faces: get_uvarint(&mut buf)?,
                        genus: get_uvarint(&mut buf)? as i64,
                    },
                    0 => {
                        let k5 = get_uvarint(&mut buf)? != 0;
                        let count = get_uvarint(&mut buf)? as usize;
                        if count > 6 {
                            return Err(protocol("too many branch nodes"));
                        }
                        let mut branch_nodes = Vec::with_capacity(count);
                        for _ in 0..count {
                            branch_nodes.push(get_uvarint(&mut buf)? as u32);
                        }
                        CheckVerdict::NonPlanar {
                            k5,
                            branch_nodes,
                            witness_edges: get_uvarint(&mut buf)?,
                        }
                    }
                    2 => CheckVerdict::Member {
                        scheme: decode_string(&mut buf)?,
                    },
                    3 => CheckVerdict::NonMember {
                        scheme: decode_string(&mut buf)?,
                        reason: decode_string(&mut buf)?,
                    },
                    v => return Err(protocol(format!("unknown check verdict {v}"))),
                };
                Response::Checked(verdict)
            }
            RESP_GENERATED => Response::Generated(decode_graph(&mut buf)?),
            RESP_SOUNDNESS => {
                let count = get_uvarint(&mut buf)? as usize;
                if count > 1024 {
                    return Err(protocol("too many soundness rows"));
                }
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    let attack = decode_string(&mut buf)?;
                    let rejects = match get_uvarint(&mut buf)? {
                        0 => None,
                        r => Some(r - 1),
                    };
                    rows.push(SoundnessLine { attack, rejects });
                }
                Response::Soundness(rows)
            }
            RESP_STATS => Response::Stats(Box::new(StatsSnapshot::decode_from(&mut buf)?)),
            RESP_SLOWLOG => {
                let count = get_uvarint(&mut buf)? as usize;
                if count > MAX_SLOWLOG_ROWS {
                    return Err(protocol("too many slow-log rows"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(SlowLogEntry::decode_from(&mut buf)?);
                }
                Response::SlowLog(entries)
            }
            RESP_STOREKEYS => {
                let count = get_uvarint(&mut buf)?;
                // each key is exactly 16 bytes, so the count is
                // bounded by the remaining frame before allocating
                if count > buf.len() as u64 / 16 {
                    return Err(protocol("key list longer than the frame"));
                }
                let mut keys = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let raw = get_bytes(&mut buf, 16)?;
                    keys.push(u128::from_le_bytes(
                        raw.try_into().expect("get_bytes returned 16 bytes"),
                    ));
                }
                Response::StoreKeys(keys)
            }
            RESP_STOREPUSHED => Response::StorePushed {
                merged: get_uvarint(&mut buf)?,
                duplicates: get_uvarint(&mut buf)?,
            },
            RESP_CERTIFIED_SUMMARY => Response::CertifiedSummary {
                cached: get_uvarint(&mut buf)? != 0,
                outcome: Outcome::decode_from(&mut buf)?,
            },
            RESP_CHUNK_ACK => Response::ChunkAck {
                session: get_uvarint(&mut buf)?,
                received: get_uvarint(&mut buf)?,
            },
            RESP_CHALLENGE => Response::Challenge {
                session: get_uvarint(&mut buf)?,
                challenge: get_uvarint(&mut buf)?,
            },
            RESP_VERDICT => Response::Verdict {
                session: get_uvarint(&mut buf)?,
                challenge: get_uvarint(&mut buf)?,
                accept: get_uvarint(&mut buf)? != 0,
                reject_count: get_uvarint(&mut buf)?,
                nodes: get_uvarint(&mut buf)?,
                max_commit_bits: get_uvarint(&mut buf)?,
                max_response_bits: get_uvarint(&mut buf)?,
                soundness_ppm: get_uvarint(&mut buf)?,
            },
            RESP_AUDIT_REPORT => Response::AuditReport {
                sampled: get_uvarint(&mut buf)?,
                failed: get_uvarint(&mut buf)?,
                quarantined: get_uvarint(&mut buf)?,
            },
            k => return Err(protocol(format!("unknown response kind {k}"))),
        };
        if !buf.is_empty() {
            return Err(protocol(format!("{} trailing bytes", buf.len())));
        }
        Ok(resp)
    }
}

/// Structural graph equality (nodes, canonical edges, identifiers) —
/// what the wire codec preserves.
pub fn graphs_equal(a: &Graph, b: &Graph) -> bool {
    a.node_count() == b.node_count()
        && a.ids() == b.ids()
        && canon::canonical_edges(a) == canon::canonical_edges(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_graph::generators;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn graph_roundtrip_with_and_without_ids() {
        for g in [
            generators::grid(5, 7),
            generators::shuffle_ids(&generators::random_planar(40, 0.5, 3), 9),
            generators::path(1),
            generators::complete(5),
        ] {
            let mut out = Vec::new();
            encode_graph(&mut out, &g);
            let mut cursor = out.as_slice();
            let h = decode_graph(&mut cursor).unwrap();
            assert!(cursor.is_empty());
            assert!(graphs_equal(&g, &h));
        }
    }

    #[test]
    fn default_ids_are_not_transmitted() {
        let g = generators::grid(10, 10);
        let relabelled = generators::shuffle_ids(&g, 1);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_graph(&mut a, &g);
        encode_graph(&mut b, &relabelled);
        assert!(a.len() < b.len(), "custom ids cost wire bytes");
    }

    #[test]
    fn malformed_graphs_rejected() {
        // edge endpoint out of range: n = 2, 1 edge with huge gap
        let mut out = Vec::new();
        put_uvarint(&mut out, 2); // n
        put_uvarint(&mut out, 0); // default ids
        put_uvarint(&mut out, 1); // m
        put_uvarint(&mut out, 0); // du
        put_uvarint(&mut out, 5); // dv -> v = 6 out of range
        assert!(decode_graph(&mut out.as_slice()).is_err());

        // duplicate ids
        let mut out = Vec::new();
        put_uvarint(&mut out, 2);
        put_uvarint(&mut out, 1); // custom ids
        put_uvarint(&mut out, 9);
        put_uvarint(&mut out, 9);
        put_uvarint(&mut out, 0);
        assert!(decode_graph(&mut out.as_slice()).is_err());

        // impossible edge count
        let mut out = Vec::new();
        put_uvarint(&mut out, 3);
        put_uvarint(&mut out, 0);
        put_uvarint(&mut out, 100);
        assert!(decode_graph(&mut out.as_slice()).is_err());
    }

    #[test]
    fn request_tags_are_stable() {
        let req = Request::Certify {
            graph: generators::cycle(4),
            bypass_cache: true,
            cached_only: false,
            summary: false,
            scheme: SchemeId::PLANARITY,
        };
        let body = req.encode();
        assert_eq!(body[0] as u64, REQ_CERTIFY);
        match Request::decode(&body).unwrap() {
            Request::Certify {
                bypass_cache: true, ..
            } => {}
            other => panic!("bad decode: {other:?}"),
        }
        assert!(Request::decode(&[42]).is_err(), "unknown kind");
        let mut trailing = Request::Stats.encode();
        trailing.push(0);
        assert!(Request::decode(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn scheme_id_rides_the_extension_block() {
        let g = generators::cycle(6);
        // default scheme: byte-identical to the v1 encoding (no block)
        let v1 = encode_certify_request(&g, false, SchemeId::PLANARITY);
        let req = Request::decode(&v1).unwrap();
        assert_eq!(req.scheme(), Some(SchemeId::PLANARITY));
        // explicit scheme: a trailing block old planarity bytes lack
        let v2 = encode_certify_request(&g, false, SchemeId::BIPARTITE);
        assert_eq!(&v2[..v1.len()], &v1[..], "extension is strictly trailing");
        assert_eq!(
            Request::decode(&v2).unwrap().scheme(),
            Some(SchemeId::BIPARTITE)
        );
        // every graph-carrying kind round-trips its scheme
        for body in [
            encode_check_request(&g, SchemeId::TREE),
            encode_gen_request("grid", 9, 1, SchemeId::SPANNING_TREE),
            encode_soundness_request(&g, 7, SchemeId::MOD_COUNTER),
        ] {
            let req = Request::decode(&body).unwrap();
            assert_ne!(req.scheme(), Some(SchemeId::PLANARITY));
        }
    }

    #[test]
    fn unknown_extensions_are_skipped_malformed_rejected() {
        let g = generators::path(3);
        let mut body = encode_check_request(&g, SchemeId::PLANARITY);
        // unknown extension tag 99 with a 2-byte payload: skipped
        put_uvarint(&mut body, 99);
        put_uvarint(&mut body, 2);
        body.extend_from_slice(&[0xde, 0xad]);
        // followed by a scheme id, still honored
        put_uvarint(&mut body, EXT_SCHEME_ID);
        put_uvarint(&mut body, 1);
        put_uvarint(&mut body, SchemeId::BIPARTITE.0 as u64);
        assert_eq!(
            Request::decode(&body).unwrap().scheme(),
            Some(SchemeId::BIPARTITE)
        );

        // duplicate scheme-id extension: protocol error
        let mut dup = encode_check_request(&g, SchemeId::BIPARTITE);
        put_uvarint(&mut dup, EXT_SCHEME_ID);
        put_uvarint(&mut dup, 1);
        put_uvarint(&mut dup, 2);
        assert!(Request::decode(&dup).is_err());

        // out-of-range scheme id: protocol error
        let mut big = encode_check_request(&g, SchemeId::PLANARITY);
        put_uvarint(&mut big, EXT_SCHEME_ID);
        let mut payload = Vec::new();
        put_uvarint(&mut payload, u16::MAX as u64 + 1);
        put_uvarint(&mut big, payload.len() as u64);
        big.extend_from_slice(&payload);
        assert!(Request::decode(&big).is_err());

        // truncated extension: error, not a panic
        let mut cut = encode_check_request(&g, SchemeId::PLANARITY);
        put_uvarint(&mut cut, EXT_SCHEME_ID);
        put_uvarint(&mut cut, 5); // promises 5 payload bytes, has none
        assert!(Request::decode(&cut).is_err());
    }

    #[test]
    fn slowlog_frames_roundtrip() {
        let body = encode_slowlog_request();
        assert_eq!(body, vec![REQ_SLOWLOG as u8], "bare one-byte request");
        assert!(matches!(Request::decode(&body).unwrap(), Request::SlowLog));
        assert_eq!(Request::SlowLog.scheme(), None);
        assert_eq!(Request::SlowLog.kind_tag(), REQ_SLOWLOG as u8);

        let entries = vec![
            SlowLogEntry {
                trace_id: (3 << 32) | 7,
                kind: REQ_CERTIFY as u8,
                scheme: 2,
                age_us: 5_000_000,
                total_us: 61_000,
                read_decode_us: 14,
                queue_wait_us: 420,
                service_us: 59_000,
                reorder_wait_us: 66,
                write_flush_us: 1_500,
            },
            SlowLogEntry::default(),
        ];
        let resp = Response::SlowLog(entries.clone());
        match Response::decode(&resp.encode()).unwrap() {
            Response::SlowLog(back) => assert_eq!(back, entries),
            other => panic!("{other:?}"),
        }

        // hostile row count: rejected by the bound, not allocated
        let mut hostile = Vec::new();
        put_uvarint(&mut hostile, RESP_SLOWLOG);
        put_uvarint(&mut hostile, 1 << 30);
        assert!(Response::decode(&hostile).is_err());
    }

    #[test]
    fn cached_only_probe_frames() {
        let g = generators::cycle(5);
        let body = encode_certify_probe_request(&g, SchemeId::BIPARTITE);
        match Request::decode(&body).unwrap() {
            Request::Certify {
                bypass_cache: false,
                cached_only: true,
                scheme,
                ..
            } => assert_eq!(scheme, SchemeId::BIPARTITE),
            other => panic!("bad decode: {other:?}"),
        }
        // plain certify stays byte-identical to the pre-v6 encoding:
        // flags byte 0, no new fields
        let plain = encode_certify_request(&g, false, SchemeId::PLANARITY);
        assert_eq!(plain[1], 0, "flags byte");

        // bypass + cached-only contradict each other: rejected
        let mut both = Vec::new();
        put_uvarint(&mut both, REQ_CERTIFY);
        put_uvarint(
            &mut both,
            CERTIFY_FLAG_BYPASS_CACHE | CERTIFY_FLAG_CACHED_ONLY,
        );
        encode_graph(&mut both, &g);
        assert!(Request::decode(&both).is_err());
    }

    #[test]
    fn store_push_frames_roundtrip_and_reject_corruption() {
        use crate::store::RecordKind;

        let body = encode_store_list_request();
        assert_eq!(body, vec![REQ_STORELIST as u8], "bare one-byte request");
        assert!(matches!(
            Request::decode(&body).unwrap(),
            Request::StoreList
        ));
        assert_eq!(Request::StoreList.scheme(), None);

        let records = vec![
            StoreRecord {
                kind: RecordKind::Declined,
                keyed: vec![0x00],
                suffix: vec![0x02, b'n', b'o'],
            },
            StoreRecord {
                kind: RecordKind::Certified,
                keyed: vec![1, 2, 3, 4],
                suffix: vec![9; 40],
            },
        ];
        let body = encode_store_push_request(&records);
        match Request::decode(&body).unwrap() {
            Request::StorePush { records: back } => {
                assert_eq!(back.len(), 2);
                assert_eq!(back[0].keyed, records[0].keyed);
                assert_eq!(back[1].suffix, records[1].suffix);
                assert_eq!(back[0].key(), records[0].key());
            }
            other => panic!("bad decode: {other:?}"),
        }

        // flip one certificate byte: the CRC catches it
        let mut corrupt = body.clone();
        let last = corrupt.len() - 5; // inside record 2's body, before its CRC
        corrupt[last] ^= 0x01;
        assert!(Request::decode(&corrupt).is_err(), "corruption detected");

        // hostile record count: rejected by the bound, not allocated
        let mut hostile = Vec::new();
        put_uvarint(&mut hostile, REQ_STOREPUSH);
        put_uvarint(&mut hostile, 1 << 40);
        assert!(Request::decode(&hostile).is_err());
    }

    #[test]
    fn store_keys_and_pushed_responses_roundtrip() {
        let keys = vec![0u128, 1, u128::MAX, 0xdead_beef];
        match Response::decode(&Response::StoreKeys(keys.clone()).encode()).unwrap() {
            Response::StoreKeys(back) => assert_eq!(back, keys),
            other => panic!("{other:?}"),
        }
        match Response::decode(
            &Response::StorePushed {
                merged: 7,
                duplicates: 3,
            }
            .encode(),
        )
        .unwrap()
        {
            Response::StorePushed { merged, duplicates } => {
                assert_eq!((merged, duplicates), (7, 3));
            }
            other => panic!("{other:?}"),
        }

        // hostile key count: bounded by the remaining frame bytes
        let mut hostile = Vec::new();
        put_uvarint(&mut hostile, RESP_STOREKEYS);
        put_uvarint(&mut hostile, 1 << 40);
        assert!(Response::decode(&hostile).is_err());
    }

    #[test]
    fn summary_certify_frames() {
        let g = generators::grid(3, 4);
        let body = encode_certify_summary_request(&g, true, SchemeId::BIPARTITE);
        match Request::decode(&body).unwrap() {
            Request::Certify {
                bypass_cache: true,
                cached_only: false,
                summary: true,
                scheme,
                ..
            } => assert_eq!(scheme, SchemeId::BIPARTITE),
            other => panic!("bad decode: {other:?}"),
        }

        // summary + cached-only contradict each other: rejected
        let mut both = Vec::new();
        put_uvarint(&mut both, REQ_CERTIFY);
        put_uvarint(&mut both, CERTIFY_FLAG_SUMMARY | CERTIFY_FLAG_CACHED_ONLY);
        encode_graph(&mut both, &g);
        assert!(Request::decode(&both).is_err());

        // a summary response carries the outcome and nothing else
        let outcome = Outcome {
            verdicts: vec![true, true, false, true],
            rounds: 1,
            max_message_bits: 12,
            total_message_bits: 48,
            max_cert_bits: 9,
            total_cert_bits: 36,
            avg_cert_bits: 9.0,
        };
        let resp = Response::CertifiedSummary {
            cached: true,
            outcome: outcome.clone(),
        };
        match Response::decode(&resp.encode()).unwrap() {
            Response::CertifiedSummary { cached, outcome: o } => {
                assert!(cached);
                assert_eq!(o, outcome);
            }
            other => panic!("{other:?}"),
        }

        // summary_body_from_suffix drops the assignment bytes but
        // preserves the outcome exactly
        let assignment = Assignment::empty(4);
        let suffix = encode_certified_suffix(&outcome, &assignment);
        let body = summary_body_from_suffix(false, &suffix).unwrap();
        match Response::decode(&body).unwrap() {
            Response::CertifiedSummary {
                cached: false,
                outcome: o,
            } => assert_eq!(o, outcome),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chunk_frames_roundtrip_and_reject_corruption() {
        let begin = encode_chunk_begin_request(7, true, SchemeId::TREE);
        match Request::decode(&begin).unwrap() {
            Request::GraphChunkBegin {
                session: 7,
                bypass_cache: true,
                scheme,
            } => assert_eq!(scheme, SchemeId::TREE),
            other => panic!("bad decode: {other:?}"),
        }
        assert_eq!(Request::decode(&begin).unwrap().kind_tag(), 9);

        let chunk = encode_chunk_request(7, 3, b"edge bytes");
        match Request::decode(&chunk).unwrap() {
            Request::GraphChunk {
                session: 7,
                seq: 3,
                payload,
            } => assert_eq!(payload, b"edge bytes"),
            other => panic!("bad decode: {other:?}"),
        }

        // flip one payload byte: the CRC catches it
        let mut corrupt = chunk.clone();
        let idx = chunk.len() - 6; // inside the payload, before the CRC
        corrupt[idx] ^= 0x40;
        assert!(Request::decode(&corrupt).is_err(), "corruption detected");

        // hostile payload length: rejected before allocation
        let mut hostile = Vec::new();
        put_uvarint(&mut hostile, REQ_CHUNK);
        put_uvarint(&mut hostile, 7);
        put_uvarint(&mut hostile, 0);
        put_uvarint(&mut hostile, (MAX_CHUNK_BYTES as u64) + 1);
        assert!(Request::decode(&hostile).is_err());

        let end = encode_chunk_end_request(7, 4, 40_000, 0xdead_beef);
        match Request::decode(&end).unwrap() {
            Request::GraphChunkEnd {
                session: 7,
                total_chunks: 4,
                total_bytes: 40_000,
                crc: 0xdead_beef,
            } => {}
            other => panic!("bad decode: {other:?}"),
        }

        let ack = Response::ChunkAck {
            session: 7,
            received: 4,
        };
        match Response::decode(&ack.encode()).unwrap() {
            Response::ChunkAck { session, received } => assert_eq!((session, received), (7, 4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_decoder_matches_single_frame_decode() {
        let graphs = [
            generators::shuffle_ids(&generators::grid(9, 11), 5),
            generators::random_planar(60, 0.4, 2),
            generators::path(1),
            generators::grid(1, 1),
        ];
        for g in &graphs {
            let mut enc = Vec::new();
            encode_graph(&mut enc, g);
            // every chunk size, down to one byte at a time, lands on
            // the same graph and re-encodes byte-identically
            for chunk_size in [1usize, 2, 3, 7, enc.len().max(1)] {
                let mut dec = GraphStreamDecoder::new();
                for chunk in enc.chunks(chunk_size) {
                    dec.feed(chunk).unwrap();
                    assert!(dec.carry_len() < 10, "carry is a partial varint at most");
                }
                let h = dec.finish().unwrap();
                assert!(graphs_equal(g, &h));
                let mut re = Vec::new();
                encode_graph(&mut re, &h);
                assert_eq!(re, enc, "stream decode is canonical");
            }
        }
    }

    #[test]
    fn stream_decoder_rejects_malformed_streams() {
        let g = generators::grid(4, 4);
        let mut enc = Vec::new();
        encode_graph(&mut enc, &g);

        // truncated: grammar incomplete at finish
        let mut dec = GraphStreamDecoder::new();
        dec.feed(&enc[..enc.len() - 1]).unwrap();
        assert!(dec.finish().is_err());

        // trailing garbage after the last edge
        let mut dec = GraphStreamDecoder::new();
        let mut long = enc.clone();
        long.push(0x00);
        assert!(dec.feed(&long).is_err());

        // an unterminated varint can never complete
        let mut dec = GraphStreamDecoder::new();
        assert!(dec.feed(&[0x80; 16]).is_err());

        // node count beyond the stream cap
        let mut dec = GraphStreamDecoder::new();
        let mut big = Vec::new();
        put_uvarint(&mut big, MAX_STREAM_NODES + 1);
        assert!(dec.feed(&big).is_err());

        // duplicate ids, split across feeds
        let mut bad = Vec::new();
        put_uvarint(&mut bad, 2);
        put_uvarint(&mut bad, 1);
        put_uvarint(&mut bad, 9);
        put_uvarint(&mut bad, 9);
        let mut dec = GraphStreamDecoder::new();
        let (a, b) = bad.split_at(2);
        dec.feed(a).unwrap();
        assert!(dec.feed(b).is_err());
    }

    #[test]
    fn interactive_frames_roundtrip() {
        use dpc_runtime::Payload;

        let g = generators::cycle(4);
        let commit = Assignment {
            certs: vec![Payload::from_bytes(vec![0xab], 8); 4],
        };
        let begin = encode_interactive_begin_request(9, 77, &g, &commit, SchemeId::PLANARITY);
        assert_eq!(begin[0] as u64, REQ_INTERACTIVE_BEGIN);
        match Request::decode(&begin).unwrap() {
            Request::InteractiveBegin {
                session: 9,
                seed: 77,
                graph,
                commit: back,
                scheme: SchemeId::PLANARITY,
            } => {
                assert!(graphs_equal(&graph, &g));
                assert_eq!(back.certs.len(), commit.certs.len());
            }
            other => panic!("bad decode: {other:?}"),
        }
        assert_eq!(Request::decode(&begin).unwrap().kind_tag(), 12);
        assert_eq!(
            Request::decode(&begin).unwrap().scheme(),
            Some(SchemeId::PLANARITY)
        );

        // a commitment sized for the wrong graph is rejected
        let short = Assignment {
            certs: vec![Payload::from_bytes(vec![0x01], 8); 3],
        };
        let bad = encode_interactive_begin_request(9, 77, &g, &short, SchemeId::PLANARITY);
        assert!(Request::decode(&bad).is_err(), "commit/graph size mismatch");

        let respond = encode_interactive_respond_request(9, &commit);
        match Request::decode(&respond).unwrap() {
            Request::InteractiveRespond {
                session: 9,
                response,
            } => {
                assert_eq!(response.certs.len(), 4);
            }
            other => panic!("bad decode: {other:?}"),
        }
        assert_eq!(Request::decode(&respond).unwrap().scheme(), None);

        let challenge = Response::Challenge {
            session: 9,
            challenge: u64::MAX,
        };
        match Response::decode(&challenge.encode()).unwrap() {
            Response::Challenge { session, challenge } => {
                assert_eq!((session, challenge), (9, u64::MAX));
            }
            other => panic!("{other:?}"),
        }

        let verdict = Response::Verdict {
            session: 9,
            challenge: 42,
            accept: false,
            reject_count: 2,
            nodes: 4,
            max_commit_bits: 160,
            max_response_bits: 80,
            soundness_ppm: 500_000,
        };
        match Response::decode(&verdict.encode()).unwrap() {
            Response::Verdict {
                session: 9,
                challenge: 42,
                accept: false,
                reject_count: 2,
                nodes: 4,
                max_commit_bits: 160,
                max_response_bits: 80,
                soundness_ppm: 500_000,
            } => {}
            other => panic!("{other:?}"),
        }

        // trailing bytes after a verdict are rejected
        let mut trailing = verdict.encode();
        trailing.push(0);
        assert!(Response::decode(&trailing).is_err());
    }

    #[test]
    fn audit_frames_roundtrip() {
        let body = encode_audit_request(32, 1234);
        assert_eq!(body[0] as u64, REQ_AUDIT);
        match Request::decode(&body).unwrap() {
            Request::Audit {
                samples: 32,
                seed: 1234,
            } => {}
            other => panic!("bad decode: {other:?}"),
        }
        assert_eq!(Request::decode(&body).unwrap().kind_tag(), 14);
        assert_eq!(Request::decode(&body).unwrap().scheme(), None);

        let report = Response::AuditReport {
            sampled: 32,
            failed: 1,
            quarantined: 1,
        };
        match Response::decode(&report.encode()).unwrap() {
            Response::AuditReport {
                sampled: 32,
                failed: 1,
                quarantined: 1,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn member_verdicts_roundtrip() {
        for verdict in [
            CheckVerdict::Member {
                scheme: "bipartite".into(),
            },
            CheckVerdict::NonMember {
                scheme: "tree".into(),
                reason: "instance is not in the class: trees".into(),
            },
        ] {
            let resp = Response::Checked(verdict.clone());
            match Response::decode(&resp.encode()).unwrap() {
                Response::Checked(back) => assert_eq!(back, verdict),
                other => panic!("{other:?}"),
            }
        }
    }
}
