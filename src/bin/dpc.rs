//! `dpc` — command-line front end.
//!
//! Graphs are exchanged in graph6 format (nauty / House of Graphs).
//!
//! ```text
//! dpc check <graph6>        planarity verdict with a certificate
//!                           (faces/genus, or the Kuratowski witness)
//! dpc certify <graph6>      run the Theorem 1 PLS end to end
//! dpc embed <graph6>        print the rotation system and faces
//! dpc kuratowski <graph6>   extract a subdivided K5/K3,3
//! dpc soundness <graph6> [seed]  attack battery on a no-instance
//! dpc gen <family> <n> [seed]   emit a generated graph as graph6
//!                           (families: dpc_service::gen::FAMILIES)
//!
//! dpc schemes               list the scheme registry (ids, classes,
//!                           certificate bounds, capabilities)
//! dpc serve <addr> [workers] [cache-mb] [--schemes a,b,c]
//!           [--store-dir <path>] [--store-budget-bytes <n>]
//!                           long-running service (default: all
//!                           schemes, no persistence); with a store
//!                           dir the certificate cache survives
//!                           restarts
//! dpc store stat|compact|verify <dir>
//!                           offline tools for a --store-dir (do not
//!                           run against a live server)
//! dpc query <addr> certify [--no-cache] [--scheme <name>] <graph6>
//! dpc query <addr> check [--scheme <name>] <graph6>
//! dpc query <addr> gen <family> <n> [seed] [--scheme <name>]
//!                           family "default" routes to the scheme's
//!                           canonical yes-instance generator
//! dpc query <addr> soundness [--scheme <name>] <graph6> [seed]
//! dpc query <addr> stats
//! dpc bench-serve <addr>|self [hits] [side] load generator; reports
//!                           cache-hit vs cache-miss latency (plus a
//!                           machine-readable JSON summary line)
//! ```

use dpc::core::harness::run_pls;
use dpc::core::scheme::ProofLabelingScheme;
use dpc::graph::{graph6, Graph};
use dpc::planar::kuratowski::extract_kuratowski;
use dpc::planar::lr::{planarity, Planarity};
use dpc::prelude::*;
use dpc_service::cache::CacheConfig;
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::wire::{CheckVerdict, Response};
use dpc_service::{Client, SegmentConfig, SegmentStore, ServeConfig};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&refs) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Dispatches a command line; returns the output text.
fn run(args: &[&str]) -> Result<String, String> {
    match args {
        ["check", s] => check(parse(s)?),
        ["certify", s] => certify(parse(s)?),
        ["embed", s] => embed(parse(s)?),
        ["kuratowski", s] => kuratowski(parse(s)?),
        ["soundness", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            soundness(parse(s)?, seed)
        }
        ["gen", family, n, rest @ ..] => {
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            gen(family, n, seed)
        }
        ["schemes"] => schemes_cmd(),
        ["serve", addr, rest @ ..] => serve_cmd(addr, rest),
        ["store", sub, dir] => store_cmd(sub, dir),
        ["query", addr, rest @ ..] => query_cmd(addr, rest),
        ["bench-serve", addr, rest @ ..] => bench_serve_cmd(addr, rest),
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: dpc check|certify|embed|kuratowski|soundness <graph6>  |  \
     dpc gen <family> <n> [seed]  |  dpc schemes  |  \
     dpc serve <addr> [workers] [cache-mb] [--schemes a,b,c] \
     [--store-dir <path>] [--store-budget-bytes <n>]  |  \
     dpc store stat|compact|verify <dir>  |  \
     dpc query <addr> certify|check|gen|soundness|stats [--scheme <name>] ...  |  \
     dpc bench-serve <addr>|self [hits] [side]"
        .to_string()
}

/// Resolves a `--scheme <name>` CLI handle against the standard
/// registry (the server answers with its own error if it registers a
/// smaller set).
fn scheme_by_name(name: &str) -> Result<SchemeId, String> {
    let reg = SchemeRegistry::standard();
    reg.by_name(name)
        .map(|e| e.id)
        .ok_or_else(|| format!("unknown scheme {name:?} (see `dpc schemes`)"))
}

fn schemes_cmd() -> Result<String, String> {
    let reg = SchemeRegistry::standard();
    let mut out = format!(
        "{:>3}  {:<18} {:<44} {:<34} {:<16} {}\n",
        "id", "name", "class", "certificates", "soundness-probe", "needs-ids"
    );
    for e in reg.entries() {
        out.push_str(&format!(
            "{:>3}  {:<18} {:<44} {:<34} {:<16} {}\n",
            e.id,
            e.name,
            e.caps.class,
            e.caps.cert_bound,
            if e.caps.soundness_probe { "yes" } else { "no" },
            if e.caps.needs_ids {
                "yes (binary wire only)"
            } else {
                "no"
            },
        ));
    }
    out.push_str("\nid 0 (planarity) is the wire default: requests without a scheme-id extension route there.\n");
    Ok(out)
}

fn parse(s: &str) -> Result<Graph, String> {
    graph6::decode(s).map_err(|e| format!("bad graph6 input: {e}"))
}

fn check(g: Graph) -> Result<String, String> {
    let mut out = format!(
        "graph: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    );
    match planarity(&g) {
        Planarity::Planar(rot) => {
            rot.euler_check().map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "PLANAR (certified: {} faces, Euler genus {})\n",
                rot.face_count(),
                rot.genus()
            ));
        }
        Planarity::NonPlanar => {
            let w = extract_kuratowski(&g).ok_or("inconsistent planarity result")?;
            out.push_str(&format!(
                "NOT PLANAR (certified: subdivided {:?} on {} edges, branch nodes {:?})\n",
                w.kind,
                w.edges.len(),
                w.branch_nodes
            ));
        }
    }
    Ok(out)
}

fn certify(g: Graph) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let scheme = PlanarityScheme::new();
    match run_pls(&scheme, &g) {
        Ok(outcome) => Ok(format!(
            "scheme: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nverdict: {}\n",
            scheme.name(),
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Err(e) => Ok(format!(
            "prover declines: {e}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n"
        )),
    }
}

fn embed(g: Graph) -> Result<String, String> {
    match planarity(&g) {
        Planarity::Planar(rot) => {
            let mut out = String::new();
            for v in 0..g.node_count() as u32 {
                out.push_str(&format!("rotation({v}): {:?}\n", rot.rotation(v)));
            }
            for (i, f) in rot.faces().iter().enumerate() {
                let cycle: Vec<u32> = f.iter().map(|&(u, _)| u).collect();
                out.push_str(&format!("face {i}: {cycle:?}\n"));
            }
            Ok(out)
        }
        Planarity::NonPlanar => Err("graph is not planar; no embedding".to_string()),
    }
}

fn kuratowski(g: Graph) -> Result<String, String> {
    match extract_kuratowski(&g) {
        Some(w) => {
            let mut out = format!(
                "{:?} subdivision, branch nodes {:?}\n",
                w.kind, w.branch_nodes
            );
            for (u, v) in &w.edges {
                out.push_str(&format!("  {u} -- {v}\n"));
            }
            Ok(out)
        }
        None => Err("graph is planar; no Kuratowski subgraph".to_string()),
    }
}

fn gen(family: &str, n: u32, seed: u64) -> Result<String, String> {
    // the local subcommand has no --scheme flag, so "default" routes
    // to the wire default scheme (planarity)
    let g = dpc_service::gen::make_scheme(family, n, seed, SchemeId::PLANARITY)?;
    Ok(format!("{}\n", graph6::encode(&g)))
}

fn soundness(g: Graph, seed: u64) -> Result<String, String> {
    if !g.is_connected() {
        return Err("the network must be connected".to_string());
    }
    let planar = dpc::planar::lr::is_planar(&g);
    let rows = dpc::core::adversary::soundness_report(&PlanarityScheme::new(), &g, seed);
    let mut out = format!(
        "graph: {} nodes, {} edges ({})\n",
        g.node_count(),
        g.edge_count(),
        if planar {
            "planar — attacks are expected to succeed; soundness only \
             quantifies over no-instances"
        } else {
            "non-planar no-instance"
        }
    );
    let fooled: Vec<&str> = rows
        .iter()
        .filter(|r| r.rejects == Some(0))
        .map(|r| r.attack)
        .collect();
    out.push_str(&soundness_table(
        rows.iter()
            .map(|r| (r.attack.to_string(), r.rejects.map(|x| x as u64))),
    ));
    if !planar {
        if fooled.is_empty() {
            out.push_str("soundness holds for this sample: every applicable attack left at least one rejecting node\n");
        } else {
            out.push_str(&format!(
                "SOUNDNESS VIOLATION: attack(s) {} fooled every node on a no-instance (bug!)\n",
                fooled.join(", ")
            ));
        }
    }
    Ok(out)
}

fn soundness_table(rows: impl Iterator<Item = (String, Option<u64>)>) -> String {
    let mut out = format!("{:<20} {:>10}\n", "attack", "rejects");
    for (attack, rejects) in rows {
        match rejects {
            Some(r) => out.push_str(&format!("{attack:<20} {r:>10}\n")),
            None => out.push_str(&format!("{attack:<20} {:>10}\n", "n/a")),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Service subcommands.

fn serve_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    let mut cfg = ServeConfig::default();
    let mut registry = SchemeRegistry::standard();
    let mut store_dir: Option<&str> = None;
    let mut store_budget: Option<u64> = None;
    let mut positional = Vec::new();
    let mut args = rest.iter();
    while let Some(&arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "--schemes" => {
                let list = value("--schemes")?;
                registry = SchemeRegistry::with_schemes(&list.split(',').collect::<Vec<_>>())?;
            }
            "--store-dir" => store_dir = Some(value("--store-dir")?),
            "--store-budget-bytes" => {
                store_budget = Some(
                    value("--store-budget-bytes")?
                        .parse()
                        .map_err(|_| "store-budget-bytes must be a number".to_string())?,
                );
            }
            flag if flag.starts_with("--") => return Err(usage()),
            p => positional.push(p),
        }
    }
    match positional.as_slice() {
        [] => {}
        [workers] => {
            cfg.workers = workers
                .parse()
                .map_err(|_| "workers must be a number".to_string())?;
        }
        [workers, cache_mb] => {
            cfg.workers = workers
                .parse()
                .map_err(|_| "workers must be a number".to_string())?;
            let mb: usize = cache_mb
                .parse()
                .map_err(|_| "cache-mb must be a number".to_string())?;
            cfg.cache = CacheConfig {
                byte_budget: mb << 20,
                ..CacheConfig::default()
            };
        }
        _ => return Err(usage()),
    }
    match (store_dir, store_budget) {
        (Some(dir), budget) => {
            let mut sc = SegmentConfig::new(dir);
            sc.byte_budget = budget;
            cfg.store = Some(sc);
        }
        (None, Some(_)) => {
            return Err("--store-budget-bytes requires --store-dir".to_string());
        }
        (None, None) => {}
    }
    let handle = dpc_service::serve_with_registry(addr, cfg.clone(), registry)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "dpc serve: listening on {} ({} workers, {} MiB cache, batch {} max, store: {}, schemes: {})",
        handle.addr(),
        cfg.workers,
        cfg.cache.byte_budget >> 20,
        cfg.batch_max,
        cfg.store
            .as_ref()
            .map(|s| s.dir.display().to_string())
            .unwrap_or_else(|| "none".to_string()),
        handle
            .registry()
            .entries()
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(","),
    );
    handle.wait();
    Ok(String::new())
}

/// Offline tools over a `--store-dir`: `stat` summarizes, `compact`
/// folds live records into fresh segments, `verify` re-checks every
/// record's CRC and scheme id against the standard registry. Not
/// safe against a concurrently serving store.
fn store_cmd(sub: &str, dir: &str) -> Result<String, String> {
    use dpc_service::store::CertStore;
    let store = SegmentStore::open(SegmentConfig::new(dir))
        .map_err(|e| format!("cannot open store at {dir}: {e}"))?;
    let reg = SchemeRegistry::standard();
    match sub {
        "stat" => {
            let s = store.stats();
            let mut by_scheme: std::collections::BTreeMap<Option<u16>, u64> =
                std::collections::BTreeMap::new();
            for record in store.iter().flatten() {
                *by_scheme.entry(record.scheme_id()).or_default() += 1;
            }
            let mut out = format!(
                "store at {dir}: {} records, {} live bytes, {} file bytes, {} segments\n",
                s.records, s.live_bytes, s.file_bytes, s.segments
            );
            if s.read_errors > 0 {
                out.push_str(&format!(
                    "WARNING: {} unreadable records skipped by the startup scan\n",
                    s.read_errors
                ));
            }
            for (id, count) in by_scheme {
                let name = id
                    .and_then(|id| reg.get(SchemeId(id)).map(|e| e.name))
                    .unwrap_or("<unknown>");
                out.push_str(&format!(
                    "  scheme {:>3} {:<18} {count} records\n",
                    id.map(|i| i.to_string()).unwrap_or_else(|| "?".into()),
                    name,
                ));
            }
            Ok(out)
        }
        "compact" => {
            let (before, after) = store
                .compact()
                .map_err(|e| format!("compaction failed: {e}"))?;
            store.flush().map_err(|e| format!("fsync failed: {e}"))?;
            Ok(format!(
                "compacted {dir}: {before} -> {after} file bytes ({} records live)\n",
                store.len()
            ))
        }
        "verify" => {
            let report = store.verify(&reg);
            if report.problems.is_empty() {
                Ok(format!(
                    "store at {dir} verifies clean: {} records ({} certified, {} declined), {} payload bytes, every CRC and scheme id checked\n",
                    report.records, report.certified, report.declined, report.bytes
                ))
            } else {
                Err(format!(
                    "store at {dir} has {} problem(s):\n  {}",
                    report.problems.len(),
                    report.problems.join("\n  ")
                ))
            }
        }
        _ => Err(usage()),
    }
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn query_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    // `--scheme <name>` may appear after the subcommand of any
    // graph-carrying query; strip it here so the match below stays flat
    let mut args: Vec<&str> = rest.to_vec();
    let mut scheme = SchemeId::PLANARITY;
    let mut scheme_name = "planarity".to_string();
    if let Some(pos) = args.iter().position(|&a| a == "--scheme") {
        let name = args
            .get(pos + 1)
            .ok_or_else(|| "--scheme needs a name".to_string())?;
        scheme = scheme_by_name(name)?;
        scheme_name = name.to_string();
        args.drain(pos..pos + 2);
    }
    // id-reading schemes cannot travel through this subcommand's
    // graph exchange format — inbound (certify/check/soundness parse
    // graph6, which has no id field) or outbound (gen prints graph6,
    // which would silently drop the load-bearing ids): fail fast,
    // before touching the network
    let needs_ids = SchemeRegistry::standard()
        .get(scheme)
        .is_some_and(|e| e.caps.needs_ids);
    if needs_ids
        && matches!(
            args.first(),
            Some(&"certify") | Some(&"check") | Some(&"soundness") | Some(&"gen")
        )
    {
        return Err(format!(
            "scheme {scheme_name} reads network identifiers, which graph6 cannot carry \
             (encoding a graph drops its ids) — use the binary wire protocol instead \
             (dpc_service::Client::certify_scheme, or the `blocks` family in \
             crates/service/tests/registry_e2e.rs)"
        ));
    }
    let mut client = connect(addr)?;
    let response = match args.as_slice() {
        ["certify", s] => client.certify_scheme(&parse(s)?, false, scheme),
        ["certify", "--no-cache", s] => client.certify_scheme(&parse(s)?, true, scheme),
        ["check", s] => client.check_scheme(&parse(s)?, scheme),
        ["gen", family, n, rest @ ..] => {
            let n: u32 = n.parse().map_err(|_| "n must be a number".to_string())?;
            let seed: u64 = match rest {
                [] => 1,
                [s] => s.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            let g = client
                .gen_scheme(family, n, seed, scheme)
                .map_err(|e| e.to_string())?;
            return Ok(format!("{}\n", graph6::encode(&g)));
        }
        ["soundness", s, rest @ ..] => {
            let seed: u64 = match rest {
                [] => 1,
                [x] => x.parse().map_err(|_| "seed must be a number".to_string())?,
                _ => return Err(usage()),
            };
            client.soundness_scheme(&parse(s)?, seed, scheme)
        }
        ["stats"] => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            return Ok(format!("{stats}\n"));
        }
        _ => return Err(usage()),
    };
    render_response(response.map_err(|e| e.to_string())?, &scheme_name)
}

fn render_response(resp: Response, scheme: &str) -> Result<String, String> {
    match resp {
        Response::Error(e) => Err(e),
        Response::Certified {
            cached,
            outcome,
            assignment,
        } => Ok(format!(
            "scheme: {scheme}\ncache: {}\nrounds: {}\nmax certificate: {} bits (avg {:.1})\nassignment: {} certificates, {} bytes\nverdict: {}\n",
            if cached { "hit" } else { "miss" },
            outcome.rounds,
            outcome.max_cert_bits,
            outcome.avg_cert_bits,
            assignment.certs.len(),
            assignment.byte_size(),
            if outcome.all_accept() {
                "all nodes accept".to_string()
            } else {
                format!("{} nodes reject (bug!)", outcome.reject_count())
            }
        )),
        Response::Declined { cached, reason } => Ok(format!(
            "prover declines ({}): {reason}\n(the graph is outside the certified class; by soundness no certificate assignment exists)\n",
            if cached { "cached" } else { "fresh" },
        )),
        Response::Checked(CheckVerdict::Planar { faces, genus }) => Ok(format!(
            "PLANAR (certified: {faces} faces, Euler genus {genus})\n"
        )),
        Response::Checked(CheckVerdict::NonPlanar {
            k5,
            branch_nodes,
            witness_edges,
        }) => Ok(format!(
            "NOT PLANAR (certified: subdivided {} on {witness_edges} edges, branch nodes {branch_nodes:?})\n",
            if k5 { "K5" } else { "K33" },
        )),
        Response::Checked(CheckVerdict::Member { scheme }) => {
            Ok(format!("IN CLASS ({scheme}: the honest prover certifies this instance)\n"))
        }
        Response::Checked(CheckVerdict::NonMember { scheme, reason }) => {
            Ok(format!("NOT IN CLASS ({scheme}): {reason}\n"))
        }
        Response::Generated(g) => Ok(format!("{}\n", graph6::encode(&g))),
        Response::Soundness(rows) => Ok(soundness_table(
            rows.into_iter().map(|r| (r.attack, r.rejects)),
        )),
        Response::Stats(s) => Ok(format!("{s}\n")),
    }
}

fn bench_serve_cmd(addr: &str, rest: &[&str]) -> Result<String, String> {
    let (hits, side) = match rest {
        [] => (32usize, 100u32),
        [hits] => (
            hits.parse()
                .map_err(|_| "hits must be a number".to_string())?,
            100,
        ),
        [hits, side] => (
            hits.parse()
                .map_err(|_| "hits must be a number".to_string())?,
            side.parse()
                .map_err(|_| "side must be a number".to_string())?,
        ),
        _ => return Err(usage()),
    };
    // at least one sample on each side, or the percentiles (and the
    // reported speedup) would be fabricated from zero measurements
    let hits = hits.max(1);
    let own_server = if addr == "self" {
        Some(
            dpc_service::serve("127.0.0.1:0", ServeConfig::default())
                .map_err(|e| format!("cannot bind loopback: {e}"))?,
        )
    } else {
        None
    };
    let target = own_server
        .as_ref()
        .map(|h| h.addr().to_string())
        .unwrap_or_else(|| addr.to_string());
    let mut client = connect(&target)?;
    let g = dpc::graph::generators::grid(side, side);

    let expect_certified = |resp: Response, want_cached: bool| -> Result<(), String> {
        match resp {
            Response::Certified { cached, .. } if cached == want_cached => Ok(()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    };

    // cold misses: bypass the cache so every query is a fresh prove
    let misses = 3usize.min(hits.max(1));
    let mut miss_lat = Vec::with_capacity(misses);
    for _ in 0..misses {
        let start = Instant::now();
        expect_certified(client.certify(&g, true).map_err(|e| e.to_string())?, false)?;
        miss_lat.push(start.elapsed());
    }

    // one caching query (a miss on a cold server; a long-running
    // server may already hold the graph, which is fine), then the
    // measured hit loop
    match client.certify(&g, false).map_err(|e| e.to_string())? {
        Response::Certified { .. } => {}
        other => return Err(format!("unexpected response: {other:?}")),
    }
    let mut hit_lat = Vec::with_capacity(hits);
    let hit_wall = Instant::now();
    for _ in 0..hits {
        let start = Instant::now();
        expect_certified(client.certify(&g, false).map_err(|e| e.to_string())?, true)?;
        hit_lat.push(start.elapsed());
    }
    let hit_wall = hit_wall.elapsed();

    let stats = client.stats().map_err(|e| e.to_string())?;
    let miss_p50 = percentile(&mut miss_lat, 0.50);
    let hit_p50 = percentile(&mut hit_lat, 0.50);
    let hit_p99 = percentile(&mut hit_lat, 0.99);
    let speedup = miss_p50.as_secs_f64() / hit_p50.as_secs_f64().max(1e-9);
    let hit_rps = hits as f64 / hit_wall.as_secs_f64().max(1e-9);
    // machine-readable trailer (one JSON object per run, on its own
    // line) so benchmark trajectories can be scraped into BENCH_*.json
    let json = format!(
        "{{\"bench\":\"serve\",\"graph\":\"grid({side},{side})\",\"nodes\":{},\
         \"miss_queries\":{misses},\"miss_p50_us\":{},\"hit_queries\":{hits},\
         \"hit_p50_us\":{},\"hit_p99_us\":{},\"hit_rps\":{hit_rps:.0},\
         \"speedup\":{speedup:.2},\"cache_hits\":{},\"cache_misses\":{},\
         \"proves\":{},\"cache_bytes\":{},\"store_records\":{},\"store_segments\":{}}}",
        g.node_count(),
        miss_p50.as_micros(),
        hit_p50.as_micros(),
        hit_p99.as_micros(),
        stats.cache_hits,
        stats.cache_misses,
        stats.proves,
        stats.cache_bytes,
        stats.store_records,
        stats.store_segments,
    );
    let out = format!(
        "bench-serve against {target} on grid({side},{side}) ({} nodes)\n\
         cache-miss (fresh prove): {} queries, p50 {:.3} ms\n\
         cache-hit: {} queries, p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s\n\
         speedup (miss p50 / hit p50): {speedup:.1}x {}\n\
         server: {} hits, {} misses, {} proves, {} cache bytes\n\
         {json}\n",
        g.node_count(),
        misses,
        miss_p50.as_secs_f64() * 1e3,
        hits,
        hit_p50.as_secs_f64() * 1e3,
        hit_p99.as_secs_f64() * 1e3,
        hit_rps,
        if speedup >= 10.0 {
            "(>= 10x: cache pays for itself)"
        } else {
            "(WARNING: below the 10x acceptance bar)"
        },
        stats.cache_hits,
        stats.cache_misses,
        stats.proves,
        stats.cache_bytes,
    );
    if let Some(handle) = own_server {
        handle.shutdown();
    }
    Ok(out)
}

fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_planar_and_nonplanar() {
        let out = run(&["check", "Bw"]).unwrap(); // K3
        assert!(out.contains("PLANAR"));
        let out = run(&["check", "D~{"]).unwrap(); // K5
        assert!(out.contains("NOT PLANAR"));
        assert!(out.contains("K5"));
    }

    #[test]
    fn certify_round_trip() {
        let g6 = run(&["gen", "triangulation", "40", "7"]).unwrap();
        let out = run(&["certify", g6.trim()]).unwrap();
        assert!(out.contains("all nodes accept"));
        assert!(out.contains("rounds: 1"));
        let out = run(&["certify", "D~{"]).unwrap();
        assert!(out.contains("prover declines"));
    }

    #[test]
    fn embed_lists_faces() {
        let out = run(&["embed", "Bw"]).unwrap(); // triangle: two faces
        assert_eq!(out.matches("face ").count(), 2);
        assert!(run(&["embed", "D~{"]).is_err());
    }

    #[test]
    fn kuratowski_extraction() {
        let g6 = run(&["gen", "k33sub", "2", "1"]).unwrap();
        let out = run(&["kuratowski", g6.trim()]).unwrap();
        assert!(out.contains("K33"));
        assert!(run(&["kuratowski", "Bw"]).is_err());
    }

    #[test]
    fn usage_and_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["gen", "nosuch", "5"]).is_err());
        assert!(run(&["check", "\u{1}"]).is_err());
        assert!(
            run(&["query", "127.0.0.1:1", "stats"]).is_err(),
            "nothing listens there"
        );
        assert!(run(&["serve", "definitely:not:an:addr"]).is_err());
    }

    #[test]
    fn soundness_subcommand_prints_the_attack_table() {
        let g6 = run(&["gen", "planted-k5", "20", "3"]).unwrap();
        let out = run(&["soundness", g6.trim(), "1"]).unwrap();
        assert!(out.contains("non-planar no-instance"));
        assert!(out.contains("attack"));
        assert!(out.contains("replay-planarized"));
        assert!(out.contains("soundness holds"));
        // planar instances get the caveat instead
        let out = run(&["soundness", "Bw"]).unwrap();
        assert!(out.contains("attacks are expected to succeed"));
    }

    #[test]
    fn gen_covers_the_service_families() {
        for family in dpc_service::gen::FAMILIES {
            let out = run(&["gen", family, "20", "2"]).unwrap();
            assert!(graph6::decode(out.trim()).is_ok(), "{family}");
        }
    }

    #[test]
    fn query_round_trip_against_a_live_server() {
        let handle = dpc_service::serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let g6 = run(&["gen", "grid", "49", "1"]).unwrap();
        let g6 = g6.trim();

        let first = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(first.contains("cache: miss"));
        assert!(first.contains("all nodes accept"));
        let second = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(second.contains("cache: hit"));

        let checked = run(&["query", &addr, "check", "D~{"]).unwrap();
        assert!(checked.contains("NOT PLANAR"));
        let declined = run(&["query", &addr, "certify", "D~{"]).unwrap();
        assert!(declined.contains("prover declines"));

        let generated = run(&["query", &addr, "gen", "cycle", "12"]).unwrap();
        assert_eq!(graph6::decode(generated.trim()).unwrap().node_count(), 12);

        let stats = run(&["query", &addr, "stats"]).unwrap();
        assert!(stats.contains("1 hits"), "{stats}");

        handle.shutdown();
    }

    #[test]
    fn schemes_lists_the_registry() {
        let out = run(&["schemes"]).unwrap();
        for name in [
            "planarity",
            "bipartite",
            "tree",
            "spanning-tree",
            "path-outerplanar",
            "non-planarity",
            "universal",
            "mod-counter",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("O(log n) bits (Theorem 1)"));
        assert!(out.contains("wire default"));
    }

    #[test]
    fn query_scheme_flag_routes_and_isolates() {
        let handle = dpc_service::serve("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let g6 = run(&["gen", "grid", "36", "1"]).unwrap();
        let g6 = g6.trim();

        // same graph, two schemes: two cache entries, each with its
        // own miss-then-hit sequence
        let plan = run(&["query", &addr, "certify", g6]).unwrap();
        assert!(plan.contains("scheme: planarity"), "{plan}");
        assert!(plan.contains("cache: miss"));
        let bip = run(&["query", &addr, "certify", "--scheme", "bipartite", g6]).unwrap();
        assert!(bip.contains("scheme: bipartite"), "{bip}");
        assert!(bip.contains("cache: miss"), "no cross-scheme hit: {bip}");
        assert!(bip.contains("all nodes accept"));
        let bip2 = run(&["query", &addr, "certify", "--scheme", "bipartite", g6]).unwrap();
        assert!(bip2.contains("cache: hit"), "{bip2}");

        // generic membership verdicts
        let member = run(&["query", &addr, "check", "--scheme", "bipartite", g6]).unwrap();
        assert!(member.contains("IN CLASS"), "{member}");
        let non = run(&["query", &addr, "check", "--scheme", "tree", g6]).unwrap();
        assert!(non.contains("NOT IN CLASS"), "{non}");

        // spanning-tree certifies any connected graph
        let st = run(&["query", &addr, "certify", "--scheme", "spanning-tree", g6]).unwrap();
        assert!(st.contains("scheme: spanning-tree"), "{st}");
        assert!(st.contains("all nodes accept"), "{st}");

        // per-scheme stats rows over the wire
        let stats = run(&["query", &addr, "stats"]).unwrap();
        assert!(stats.contains("bipartite"), "{stats}");
        assert!(stats.contains("mod-counter"), "{stats}");

        // unknown scheme name fails client-side with a pointer
        let err = run(&["query", &addr, "certify", "--scheme", "nosuch", g6]).unwrap_err();
        assert!(err.contains("dpc schemes"), "{err}");

        // gen accepts --scheme now: "default" routes to the scheme's
        // canonical yes-instance family
        let bip_gen = run(&[
            "query",
            &addr,
            "gen",
            "default",
            "25",
            "--scheme",
            "bipartite",
        ])
        .unwrap();
        let g = graph6::decode(bip_gen.trim()).unwrap();
        let member = run(&[
            "query",
            &addr,
            "check",
            "--scheme",
            "bipartite",
            bip_gen.trim(),
        ])
        .unwrap();
        assert!(member.contains("IN CLASS"), "{member}");
        assert!(g.node_count() >= 25);

        handle.shutdown();
    }

    #[test]
    fn mod_counter_over_graph6_declines_with_a_pointer_to_the_wire() {
        // the guard fires client-side, before any connection: the
        // address below has nothing listening, and must not matter
        let blocks = run(&["gen", "blocks", "30", "4"]).unwrap();
        for sub in ["certify", "check", "soundness"] {
            let err = run(&[
                "query",
                "127.0.0.1:1",
                sub,
                "--scheme",
                "mod-counter",
                blocks.trim(),
            ])
            .unwrap_err();
            assert!(!err.contains('\n'), "one-line error: {err:?}");
            assert!(err.contains("graph6"), "{err}");
            assert!(err.contains("identifiers"), "{err}");
            assert!(err.contains("binary wire"), "{err}");
        }
        // gen is guarded too: its graph6 *output* would silently drop
        // the load-bearing identifiers
        let err = run(&[
            "query",
            "127.0.0.1:1",
            "gen",
            "default",
            "30",
            "--scheme",
            "mod-counter",
        ])
        .unwrap_err();
        assert!(err.contains("graph6"), "{err}");
        // id-free schemes still pass the guard (and then fail on the
        // dead address, proving the guard came first above)
        let err = run(&[
            "query",
            "127.0.0.1:1",
            "certify",
            "--scheme",
            "bipartite",
            blocks.trim(),
        ])
        .unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn gen_default_family_routes_by_scheme() {
        // local subcommand: "default" means the wire-default scheme
        let out = run(&["gen", "default", "30", "1"]).unwrap();
        let g = graph6::decode(out.trim()).unwrap();
        assert!(dpc::planar::lr::is_planar(&g), "planarity default family");
    }

    #[test]
    fn serve_schemes_flag_validates_names() {
        assert!(run(&["serve", "127.0.0.1:1", "--schemes", "nosuch"]).is_err());
        // store flags validate before binding anything
        assert!(run(&["serve", "127.0.0.1:1", "--store-budget-bytes", "4096"]).is_err());
        assert!(run(&["serve", "127.0.0.1:1", "--store-dir"]).is_err());
        assert!(run(&["serve", "127.0.0.1:1", "--bogus-flag", "x"]).is_err());
    }

    #[test]
    fn schemes_lists_the_needs_ids_capability() {
        let out = run(&["schemes"]).unwrap();
        assert!(out.contains("needs-ids"), "{out}");
        let mc_line = out
            .lines()
            .find(|l| l.contains("mod-counter"))
            .expect("mod-counter row");
        assert!(mc_line.contains("binary wire only"), "{mc_line}");
    }

    #[test]
    fn store_subcommands_stat_compact_verify() {
        use dpc_service::store::CertStore;
        let dir = std::env::temp_dir().join(format!("dpc-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();
        // seed a store with two certified planarity records
        {
            let store = SegmentStore::open(SegmentConfig::new(&dir)).unwrap();
            for seed in 0..2u64 {
                let g = dpc::graph::generators::stacked_triangulation(18, seed);
                let certified =
                    dpc::core::harness::certify_pls(&PlanarityScheme::new(), &g).unwrap();
                let mut keyed = Vec::new();
                dpc_runtime::put_uvarint(&mut keyed, 0);
                dpc_service::wire::encode_graph(&mut keyed, &g);
                let entry = dpc_service::cache::CacheEntry::new(
                    dpc_service::cache::ProveResult::Certified {
                        assignment: certified.assignment,
                        outcome: certified.outcome,
                    },
                    keyed,
                );
                store.put(&entry.record()).unwrap();
            }
            store.flush().unwrap();
        }
        let stat = run(&["store", "stat", &dir_s]).unwrap();
        assert!(stat.contains("2 records"), "{stat}");
        assert!(stat.contains("planarity"), "{stat}");
        let verify = run(&["store", "verify", &dir_s]).unwrap();
        assert!(verify.contains("verifies clean"), "{verify}");
        assert!(verify.contains("2 records"), "{verify}");
        let compact = run(&["store", "compact", &dir_s]).unwrap();
        assert!(compact.contains("2 records live"), "{compact}");
        assert!(run(&["store", "nosuch", &dir_s]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_serve_reports_the_speedup() {
        // small grid keeps the test fast; the 10x acceptance bar on
        // grid(100,100) is asserted in crates/service/tests/service_e2e.rs
        let out = run(&["bench-serve", "self", "8", "40"]).unwrap();
        assert!(out.contains("cache-hit"));
        assert!(out.contains("cache-miss"));
        assert!(out.contains("speedup"));
        // the machine-readable trailer: one JSON object on its own line
        let json = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("JSON summary line");
        assert!(json.ends_with('}'), "{json}");
        for key in [
            "\"bench\":\"serve\"",
            "\"hit_p50_us\":",
            "\"miss_p50_us\":",
            "\"speedup\":",
            "\"hit_rps\":",
            "\"store_records\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
