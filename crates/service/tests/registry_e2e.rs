//! End-to-end tests of the scheme registry over the wire: one server,
//! many schemes, isolated caches.

use dpc_graph::generators;
use dpc_lowerbounds::blocks::path_of_blocks;
use dpc_service::client::Client;
use dpc_service::registry::{SchemeId, SchemeRegistry};
use dpc_service::server::{serve, serve_with_registry, ServeConfig};
use dpc_service::wire::{self, CheckVerdict, Request, Response};
use dpc_service::{CertifyOptions, CheckOptions, SoundnessOptions};

fn test_server() -> dpc_service::ServerHandle {
    serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback")
}

/// The acceptance gate: at least four distinct schemes certified over
/// the wire by one server — planarity, bipartite, spanning-tree, and
/// mod-counter — each with a fresh prove and then a cache hit under
/// its own key space.
#[test]
fn four_schemes_certify_over_the_wire() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let grid = generators::grid(6, 6); // planar, bipartite, connected
    let blocks = path_of_blocks(4, &[2, 1, 3]).graph;
    let cases = [
        (SchemeId::PLANARITY, "planarity", &grid),
        (SchemeId::BIPARTITE, "bipartite", &grid),
        (SchemeId::SPANNING_TREE, "spanning-tree", &grid),
        (SchemeId::MOD_COUNTER, "mod-counter", &blocks),
    ];
    let mut max_bits = Vec::new();
    for (id, name, g) in &cases {
        match client
            .certify(g, CertifyOptions::new().scheme(*id))
            .unwrap()
        {
            Response::Certified {
                cached: false,
                outcome,
                assignment,
            } => {
                assert!(outcome.all_accept(), "{name}");
                assert_eq!(assignment.certs.len(), g.node_count(), "{name}");
                max_bits.push(assignment.max_bits());
            }
            other => panic!("{name}: {other:?}"),
        }
        match client
            .certify(g, CertifyOptions::new().scheme(*id))
            .unwrap()
        {
            Response::Certified { cached: true, .. } => {}
            other => panic!("{name} repeat must hit its cache: {other:?}"),
        }
    }
    // the certificates really are different schemes' artifacts: the
    // 1-bit bipartite certificates vs O(log n) planarity vs 8-bit
    // counters
    assert_eq!(max_bits[1], 1, "bipartite certificates are one bit");
    assert!(max_bits[0] > 8, "planarity certificates are O(log n)");
    assert_eq!(max_bits[3], 8, "mod-counter certificates are g bits");

    let stats = client.stats().unwrap();
    assert_eq!(stats.certify, 8);
    assert_eq!(stats.cache_entries, 4, "four isolated entries");
    for (_, name, _) in &cases {
        let row = stats.scheme(name).unwrap_or_else(|| panic!("{name} row"));
        assert_eq!((row.certify, row.hits, row.misses), (2, 1, 1), "{name}");
        assert_eq!(row.proves, 1, "{name}");
        assert!(row.latency.count() >= 2, "{name}");
    }
    handle.shutdown();
}

/// A Certify under scheme A never returns a cache entry written under
/// scheme B: for every registered scheme the *same* graph is a fresh
/// miss, even after every other scheme has cached its result for it.
#[test]
fn per_scheme_cache_isolation_over_every_registered_scheme() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    // grid(4,4): planarity/universal certify it, bipartite certifies
    // it, tree/path/path-outerplanar/non-planarity/mod-counter decline
    // it — and declines are cached too, so isolation is observable for
    // every scheme through the cached flag
    let g = generators::grid(4, 4);
    let ids: Vec<SchemeId> = SchemeRegistry::standard()
        .entries()
        .iter()
        .map(|e| e.id)
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let first = client
            .certify(&g, CertifyOptions::new().scheme(id))
            .unwrap();
        match first {
            Response::Certified { cached, .. } | Response::Declined { cached, .. } => {
                assert!(
                    !cached,
                    "scheme {id}: first certify served from another scheme's entry \
                     ({i} entries already cached)"
                );
            }
            other => panic!("scheme {id}: {other:?}"),
        }
    }
    // and every scheme's own repeat *is* a hit
    for &id in &ids {
        match client
            .certify(&g, CertifyOptions::new().scheme(id))
            .unwrap()
        {
            Response::Certified { cached, .. } | Response::Declined { cached, .. } => {
                assert!(cached, "scheme {id}: repeat must hit its own entry");
            }
            other => panic!("scheme {id}: {other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_entries, ids.len() as u64);
    assert_eq!(stats.cache_hits, ids.len() as u64);
    assert_eq!(stats.cache_misses, ids.len() as u64);
    handle.shutdown();
}

/// Unknown scheme ids are a clean wire-level error response — never a
/// panic or a dropped connection — on every request kind that carries
/// one.
#[test]
fn unknown_scheme_id_is_a_clean_error() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::grid(3, 3);
    let bogus = SchemeId(999);
    let bodies = [
        wire::encode_certify_request(&g, false, bogus),
        wire::encode_check_request(&g, bogus),
        wire::encode_soundness_request(&g, 1, bogus),
    ];
    for body in &bodies {
        client.send_body(body).unwrap();
        match client.recv().unwrap() {
            Response::Error(e) => {
                assert!(e.contains("unknown scheme id 999"), "{e}");
                assert!(e.contains("planarity"), "error lists the registry: {e}");
            }
            other => panic!("{other:?}"),
        }
    }
    // Gen is scheme-independent: its (reserved) scheme id is carried
    // opaquely, so generation works whatever id rides along
    client
        .send_body(&wire::encode_gen_request("grid", 9, 1, bogus))
        .unwrap();
    match client.recv().unwrap() {
        Response::Generated(g) => assert_eq!(g.node_count(), 9),
        other => panic!("{other:?}"),
    }
    // the connection survives: a well-formed request still works
    match client
        .certify(&g, CertifyOptions::new().scheme(SchemeId::BIPARTITE))
        .unwrap()
    {
        Response::Certified { .. } => {}
        other => panic!("{other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, bodies.len() as u64);
    handle.shutdown();
}

/// Corrupted extension blocks (truncated payloads, duplicate ids,
/// out-of-range ids) get error responses and leave the stream usable.
#[test]
fn corrupt_extension_blocks_get_error_responses() {
    use dpc_runtime::put_uvarint;
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::grid(3, 3);
    let base = wire::encode_check_request(&g, SchemeId::PLANARITY);

    // truncated extension: tag promises bytes that never come
    let mut truncated = base.clone();
    put_uvarint(&mut truncated, wire::EXT_SCHEME_ID);
    put_uvarint(&mut truncated, 9);
    // duplicate scheme id
    let mut duplicate = wire::encode_check_request(&g, SchemeId::TREE);
    put_uvarint(&mut duplicate, wire::EXT_SCHEME_ID);
    put_uvarint(&mut duplicate, 1);
    put_uvarint(&mut duplicate, 2);
    // scheme id beyond u16
    let mut oversized = base.clone();
    put_uvarint(&mut oversized, wire::EXT_SCHEME_ID);
    let mut payload = Vec::new();
    put_uvarint(&mut payload, 1 << 20);
    put_uvarint(&mut oversized, payload.len() as u64);
    oversized.extend_from_slice(&payload);

    for body in [truncated, duplicate, oversized] {
        client.send_body(&body).unwrap();
        match client.recv().unwrap() {
            Response::Error(_) => {}
            other => panic!("{other:?}"),
        }
    }
    // stream still in sync
    match client.check(&g, CheckOptions::new()).unwrap() {
        Response::Checked(CheckVerdict::Planar { .. }) => {}
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}

/// Check and SoundnessProbe route by scheme: generic membership
/// verdicts, and capability-gated probes.
#[test]
fn check_and_soundness_route_by_scheme() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // planarity keeps the rich verdict
    match client
        .check(&generators::grid(4, 4), CheckOptions::new())
        .unwrap()
    {
        Response::Checked(CheckVerdict::Planar { genus: 0, .. }) => {}
        other => panic!("{other:?}"),
    }
    // bipartite: generic membership
    match client
        .check(&generators::cycle(8), SchemeId::BIPARTITE)
        .unwrap()
    {
        Response::Checked(CheckVerdict::Member { scheme }) => assert_eq!(scheme, "bipartite"),
        other => panic!("{other:?}"),
    }
    match client
        .check(&generators::cycle(9), SchemeId::BIPARTITE)
        .unwrap()
    {
        Response::Checked(CheckVerdict::NonMember { scheme, reason }) => {
            assert_eq!(scheme, "bipartite");
            assert!(reason.contains("not in the class"), "{reason}");
        }
        other => panic!("{other:?}"),
    }
    // mod-counter membership through the generic prover
    let blocks = path_of_blocks(4, &[1, 2]).graph;
    match client.check(&blocks, SchemeId::MOD_COUNTER).unwrap() {
        Response::Checked(CheckVerdict::Member { scheme }) => assert_eq!(scheme, "mod-counter"),
        other => panic!("{other:?}"),
    }
    // soundness probes: planarity supports them ...
    let bad = generators::planted_kuratowski(16, true, 1, 3);
    match client.soundness(&bad, 1).unwrap() {
        Response::Soundness(rows) => assert!(rows.len() >= 5),
        other => panic!("{other:?}"),
    }
    // ... spanning-tree (a class with no no-instances) does not
    match client
        .soundness(
            &bad,
            SoundnessOptions::new()
                .seed(1)
                .scheme(SchemeId::SPANNING_TREE),
        )
        .unwrap()
    {
        Response::Error(e) => assert!(e.contains("does not support soundness probes"), "{e}"),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}

/// A restricted registry (`dpc serve --schemes`) answers unregistered
/// ids — including the planarity default — with clean errors.
#[test]
fn restricted_registry_rejects_unregistered_schemes() {
    let registry = SchemeRegistry::with_schemes(&["bipartite", "tree"]).unwrap();
    let handle = serve_with_registry("127.0.0.1:0", ServeConfig::default(), registry).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let g = generators::grid(4, 4);
    match client
        .certify(&g, CertifyOptions::new().scheme(SchemeId::BIPARTITE))
        .unwrap()
    {
        Response::Certified { .. } => {}
        other => panic!("{other:?}"),
    }
    // the default (planarity) is not registered on this server
    match client.certify(&g, false).unwrap() {
        Response::Error(e) => assert!(e.contains("unknown scheme id 0"), "{e}"),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}

/// Same-scheme batching still works under the registry: pipelined
/// certifies for two schemes interleaved come back in order with the
/// right payloads.
#[test]
fn interleaved_schemes_keep_request_order() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let sizes = [20u32, 8, 14, 6, 18, 10];
    for (i, &n) in sizes.iter().enumerate() {
        let scheme = if i % 2 == 0 {
            SchemeId::PLANARITY
        } else {
            SchemeId::BIPARTITE
        };
        client
            .send(&Request::Certify {
                graph: generators::grid(2, n),
                bypass_cache: true,
                cached_only: false,
                summary: false,
                scheme,
            })
            .unwrap();
    }
    for (i, &n) in sizes.iter().enumerate() {
        match client.recv().unwrap() {
            Response::Certified {
                outcome,
                assignment,
                ..
            } => {
                assert_eq!(outcome.verdicts.len(), (2 * n) as usize, "order violated");
                if i % 2 == 1 {
                    assert_eq!(assignment.max_bits(), 1, "bipartite cert expected");
                }
            }
            other => panic!("{other:?}"),
        }
    }
    handle.shutdown();
}
