//! Connection-storm load generator (`dpc bench-serve
//! --connections`).
//!
//! Holds N concurrent connections open against one server and drives
//! a fixed number of pipelined requests down each, using the same
//! epoll readiness loop as the server's reactor — one thread
//! multiplexing every socket, so a single bench process can model
//! 10k+ clients without 10k threads. Each connection:
//!
//! 1. dials (blocking, with a brief retry for listen-backlog
//!    overflow), then goes nonblocking;
//! 2. writes `requests_per_conn` copies of the request frame,
//!    pipelined — all bytes queued before any response is read;
//! 3. reads frames until every response arrived, decoding each and
//!    counting `Response::Error` separately from transport failures.
//!
//! The report's wall-clock spans first write to last response
//! (connect time excluded), and [`StormReport::failed`] is the
//! number of expected responses that never arrived well-formed — the
//! quantity the CI smoke gate asserts to be zero.

use crate::wire::{self, Response};
use epoll::{Epoll, Events, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Sizing of one storm run.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Pipelined requests sent down each connection.
    pub requests_per_conn: usize,
    /// The request frame *body* every request sends.
    pub body: Vec<u8>,
    /// Safety valve: give up (counting what is missing as failed)
    /// after this long.
    pub deadline: Duration,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            connections: 64,
            requests_per_conn: 4,
            body: Vec::new(),
            deadline: Duration::from_secs(120),
        }
    }
}

/// What one storm run measured.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Connections the run was asked to open.
    pub connections: usize,
    /// Requests the run was asked to send (`connections ×
    /// requests_per_conn`).
    pub requests: u64,
    /// Well-formed, non-`Error` responses received.
    pub ok: u64,
    /// `Response::Error` bodies received (the server answered; the
    /// answer was a refusal).
    pub errors: u64,
    /// Dials that never produced a connection.
    pub connect_failures: u64,
    /// Connections that died (EOF or I/O error) before delivering
    /// every response.
    pub io_failures: u64,
    /// First write to last response.
    pub elapsed: Duration,
}

impl StormReport {
    /// Expected responses that did not arrive as well-formed
    /// responses (transport losses; server refusals count separately
    /// in [`StormReport::errors`]).
    pub fn failed(&self) -> u64 {
        self.requests.saturating_sub(self.ok + self.errors)
    }

    /// Well-formed responses per second of storm wall-clock.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }
}

struct StormConn {
    stream: TcpStream,
    /// Remaining bytes to write (suffix of the pipelined burst).
    wbuf: Vec<u8>,
    woff: usize,
    rbuf: Vec<u8>,
    roff: usize,
    got: u64,
}

/// Runs one storm. Fails only on setup errors (no epoll, no target);
/// per-connection failures are *reported*, not raised, so a partial
/// outage shows up as numbers instead of aborting the measurement.
pub fn storm(addr: SocketAddr, cfg: &StormConfig) -> io::Result<StormReport> {
    let epoll = Epoll::new()?;
    let per_conn = cfg.requests_per_conn.max(1);
    let mut frame = Vec::with_capacity(4 + cfg.body.len());
    frame.extend_from_slice(&(cfg.body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&cfg.body);
    let burst: Vec<u8> = frame.repeat(per_conn);

    let mut report = StormReport {
        connections: cfg.connections,
        requests: (cfg.connections * per_conn) as u64,
        ok: 0,
        errors: 0,
        connect_failures: 0,
        io_failures: 0,
        elapsed: Duration::ZERO,
    };

    // dial everyone first so the measured window is all request
    // traffic; a refused dial (listen backlog overflow under the
    // initial thundering herd) gets two quick retries
    let mut conns: HashMap<u64, StormConn> = HashMap::new();
    for token in 0..cfg.connections as u64 {
        let mut dialed = None;
        for attempt in 0..3 {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    dialed = Some(s);
                    break;
                }
                Err(_) if attempt < 2 => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => {}
            }
        }
        let Some(stream) = dialed else {
            report.connect_failures += 1;
            continue;
        };
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err()
            || epoll
                .add(&stream, token, EPOLLIN | EPOLLOUT | EPOLLRDHUP)
                .is_err()
        {
            report.connect_failures += 1;
            continue;
        }
        conns.insert(
            token,
            StormConn {
                stream,
                wbuf: burst.clone(),
                woff: 0,
                rbuf: Vec::new(),
                roff: 0,
                got: 0,
            },
        );
    }

    let started = Instant::now();
    let deadline = started + cfg.deadline;
    let mut events = Events::with_capacity(1024);
    let mut done: Vec<u64> = Vec::new();
    while !conns.is_empty() {
        let now = Instant::now();
        if now >= deadline {
            // whatever is still open never delivered: failed
            report.io_failures += conns.len() as u64;
            break;
        }
        let timeout = (deadline - now).min(Duration::from_millis(200));
        epoll.wait(&mut events, Some(timeout))?;
        done.clear();
        for ev in events.iter() {
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            match pump(conn, per_conn as u64, &mut report) {
                Pump::Keep => {
                    // writes drained: stop asking for writability
                    if conn.woff == conn.wbuf.len() {
                        let _ = epoll.modify(&conn.stream, ev.token, EPOLLIN | EPOLLRDHUP);
                    }
                }
                Pump::Done => done.push(ev.token),
            }
        }
        for token in done.drain(..) {
            conns.remove(&token);
        }
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

enum Pump {
    Keep,
    Done,
}

/// Advances one connection: flush pending writes, read and decode
/// every complete response frame. Returns [`Pump::Done`] when the
/// connection finished (all responses in) or died (counted).
fn pump(conn: &mut StormConn, expect: u64, report: &mut StormReport) -> Pump {
    // write side
    while conn.woff < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => {
                report.io_failures += 1;
                return Pump::Done;
            }
            Ok(n) => conn.woff += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                report.io_failures += 1;
                return Pump::Done;
            }
        }
    }
    // read side
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                report.io_failures += 1;
                return Pump::Done;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                report.io_failures += 1;
                return Pump::Done;
            }
        }
    }
    // frame + decode
    loop {
        let avail = conn.rbuf.len() - conn.roff;
        if avail < 4 {
            break;
        }
        let header: [u8; 4] = conn.rbuf[conn.roff..conn.roff + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(header) as usize;
        if len > wire::MAX_FRAME_BYTES {
            report.io_failures += 1;
            return Pump::Done;
        }
        if avail < 4 + len {
            break;
        }
        let body = &conn.rbuf[conn.roff + 4..conn.roff + 4 + len];
        match Response::decode(body) {
            Ok(Response::Error(_)) => report.errors += 1,
            Ok(_) => report.ok += 1,
            Err(_) => report.errors += 1,
        }
        conn.roff += 4 + len;
        conn.got += 1;
        if conn.got == expect {
            return Pump::Done;
        }
    }
    if conn.roff > 0 {
        conn.rbuf.drain(..conn.roff);
        conn.roff = 0;
    }
    Pump::Keep
}
