//! Model-level guarantees: every PLS in the workspace verifies in
//! exactly one round, and the paper's schemes keep messages logarithmic
//! (the CONGEST regime); the dMAM uses exactly three interactions.

use dpc::core::harness::run_pls;
use dpc::core::schemes::path::PathScheme;
use dpc::core::schemes::spanning_tree::SpanningTreeScheme;
use dpc::graph::generators;
use dpc::interactive::dmam::{run_dmam, DmamPlanarity};
use dpc::prelude::*;

/// Generous constant for "O(log n) bits" at these sizes.
fn log_budget(n: usize) -> usize {
    let logn = (n as f64).log2().ceil() as usize;
    120 * logn
}

/// A named measurement returning `(rounds, max_message_bits)`.
type Case = (&'static str, Box<dyn Fn() -> (usize, usize)>);

#[test]
fn all_log_schemes_fit_the_congest_budget() {
    let sizes = [64u32, 1024, 16384];
    for &n in &sizes {
        let cases: Vec<Case> = vec![
            (
                "planarity",
                Box::new(move || {
                    let g = generators::stacked_triangulation(n, 1);
                    let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
                    assert!(out.all_accept());
                    (out.rounds, out.max_message_bits)
                }),
            ),
            (
                "path-outerplanar",
                Box::new(move || {
                    let g = generators::random_path_outerplanar(n, n / 3, 2);
                    let out = run_pls(&PathOuterplanarScheme::new(), &g).unwrap();
                    assert!(out.all_accept());
                    (out.rounds, out.max_message_bits)
                }),
            ),
            (
                "spanning-tree",
                Box::new(move || {
                    let g = generators::random_planar(n, 0.5, 3);
                    let out = run_pls(&SpanningTreeScheme::new(), &g).unwrap();
                    assert!(out.all_accept());
                    (out.rounds, out.max_message_bits)
                }),
            ),
            (
                "path",
                Box::new(move || {
                    let g = generators::path(n);
                    let out = run_pls(&PathScheme::new(), &g).unwrap();
                    assert!(out.all_accept());
                    (out.rounds, out.max_message_bits)
                }),
            ),
        ];
        for (name, run) in cases {
            let (rounds, bits) = run();
            assert_eq!(rounds, 1, "{name}: a PLS verifies in one round");
            assert!(
                bits <= log_budget(n as usize),
                "{name} at n={n}: {bits} bits exceed the O(log n) budget"
            );
        }
    }
}

#[test]
fn non_planarity_scheme_is_logarithmic_too() {
    for &n in &[100u32, 1000, 5000] {
        let g = generators::planted_kuratowski(n, n % 2 == 0, 2, 5);
        let out = run_pls(&NonPlanarityScheme::new(), &g).unwrap();
        assert!(out.all_accept());
        assert_eq!(out.rounds, 1);
        assert!(out.max_message_bits <= log_budget(g.node_count()));
    }
}

#[test]
fn universal_scheme_blows_the_budget() {
    // the contrast that motivates the paper: the universal baseline is
    // NOT logarithmic
    let g = generators::stacked_triangulation(1024, 1);
    let uni = dpc::core::schemes::universal::UniversalScheme::new();
    let out = run_pls(&uni, &g).unwrap();
    assert!(out.all_accept());
    assert!(
        out.max_message_bits > log_budget(g.node_count()),
        "universal certificates are Θ(m log n)"
    );
}

#[test]
fn dmam_uses_three_interactions_and_log_messages() {
    for &n in &[256u32, 4096] {
        let g = generators::stacked_triangulation(n, 4);
        let out = run_dmam(&DmamPlanarity::new(), &g, 8).unwrap();
        assert!(out.all_accept());
        assert_eq!(out.interactions, 3);
        assert!(out.max_commit_bits + out.max_response_bits <= log_budget(n as usize));
        assert_eq!(out.challenge_bits, 64);
    }
}

#[test]
fn message_bits_grow_sublinearly() {
    // doubling n repeatedly must not double message size (log growth)
    let mut prev_bits = None;
    for &n in &[512u32, 2048, 8192, 32768] {
        let g = generators::stacked_triangulation(n, 9);
        let out = run_pls(&PlanarityScheme::new(), &g).unwrap();
        if let Some(p) = prev_bits {
            assert!(
                out.max_message_bits < 2 * p,
                "4x nodes must cost < 2x bits: {} -> {}",
                p,
                out.max_message_bits
            );
        }
        prev_bits = Some(out.max_message_bits);
    }
}
