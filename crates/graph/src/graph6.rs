//! graph6 serialization — the de-facto interchange format for small
//! graphs (McKay's `nauty` suite, House of Graphs, networkx).
//!
//! Supported: the standard form for `n ≤ 62` (single size byte) and the
//! 3-byte long form for `n ≤ 258 047`. The adjacency is encoded as the
//! upper triangle in column order, 6 bits per printable character
//! (offset 63).
//!
//! ```
//! use dpc_graph::graph6;
//! use dpc_graph::generators;
//!
//! let g = generators::complete(5);
//! assert_eq!(graph6::encode(&g), "D~{");
//! let h = graph6::decode("D~{").unwrap();
//! assert_eq!(h.edge_count(), 10);
//! ```

use crate::graph::{Graph, GraphBuilder};
use std::fmt;

/// Errors when parsing a graph6 string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Graph6Error {
    /// A character outside the printable range `?`..`~`.
    BadCharacter(char),
    /// Truncated input (not enough adjacency bits).
    Truncated,
    /// The header does not describe a supported size.
    BadHeader,
}

impl fmt::Display for Graph6Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Graph6Error::BadCharacter(c) => write!(f, "invalid graph6 character {c:?}"),
            Graph6Error::Truncated => write!(f, "truncated graph6 string"),
            Graph6Error::BadHeader => write!(f, "unsupported graph6 size header"),
        }
    }
}

impl std::error::Error for Graph6Error {}

/// Encodes a graph as a graph6 string (identifiers are not preserved —
/// the format carries structure only).
pub fn encode(g: &Graph) -> String {
    let n = g.node_count();
    let mut out = String::new();
    if n <= 62 {
        out.push((63 + n as u8) as char);
    } else {
        assert!(n <= 258_047, "graph6 long form supports n <= 258047");
        out.push(126 as char); // '~'
        let n = n as u32;
        out.push((63 + ((n >> 12) & 0x3f) as u8) as char);
        out.push((63 + ((n >> 6) & 0x3f) as u8) as char);
        out.push((63 + (n & 0x3f) as u8) as char);
    }
    // upper-triangle bits, column order: (0,1), (0,2), (1,2), (0,3), ...
    let mut bits: Vec<bool> = Vec::with_capacity(n * (n - 1) / 2);
    for v in 1..n as u32 {
        for u in 0..v {
            bits.push(g.has_edge(u, v));
        }
    }
    for chunk in bits.chunks(6) {
        let mut x = 0u8;
        for (i, &b) in chunk.iter().enumerate() {
            if b {
                x |= 1 << (5 - i);
            }
        }
        out.push((63 + x) as char);
    }
    out
}

/// Decodes a graph6 string.
pub fn decode(s: &str) -> Result<Graph, Graph6Error> {
    let bytes: Vec<u8> = s.trim().bytes().collect();
    for &b in &bytes {
        if !(63..=126).contains(&b) {
            return Err(Graph6Error::BadCharacter(b as char));
        }
    }
    let (n, rest) = if bytes.is_empty() {
        return Err(Graph6Error::BadHeader);
    } else if bytes[0] == 126 {
        if bytes.len() < 4 || bytes[1] == 126 {
            return Err(Graph6Error::BadHeader); // ~~ (n > 258047) unsupported
        }
        let n = (((bytes[1] - 63) as usize) << 12)
            | (((bytes[2] - 63) as usize) << 6)
            | ((bytes[3] - 63) as usize);
        (n, &bytes[4..])
    } else {
        ((bytes[0] - 63) as usize, &bytes[1..])
    };
    let need = n * n.saturating_sub(1) / 2;
    if rest.len() * 6 < need {
        return Err(Graph6Error::Truncated);
    }
    let mut b = GraphBuilder::new(n as u32);
    let mut idx = 0usize;
    'outer: for v in 1..n as u32 {
        for u in 0..v {
            let byte = rest[idx / 6] - 63;
            let bit = (byte >> (5 - (idx % 6))) & 1;
            idx += 1;
            if bit == 1 {
                b.add_edge(u, v).expect("upper triangle has no duplicates");
            }
            if idx >= need && u + 1 == v && v as usize + 1 == n {
                break 'outer;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn known_vectors() {
        // K3 is "Bw", K5 is "D~{" (nauty documentation examples)
        assert_eq!(encode(&generators::complete(3)), "Bw");
        assert_eq!(encode(&generators::complete(5)), "D~{");
        // path 0-1-2: bits 101 -> 101000 -> 'g'
        assert_eq!(encode(&generators::path(3)), "Bg");
    }

    #[test]
    fn decode_known_vectors() {
        let k5 = decode("D~{").unwrap();
        assert_eq!(k5.node_count(), 5);
        assert_eq!(k5.edge_count(), 10);
        let p3 = decode("Bg").unwrap();
        assert_eq!(p3.edge_count(), 2);
        assert!(p3.has_edge(0, 1) && p3.has_edge(1, 2) && !p3.has_edge(0, 2));
    }

    #[test]
    fn roundtrip_families() {
        for g in [
            generators::path(1),
            generators::path(10),
            generators::cycle(13),
            generators::grid(4, 5),
            generators::stacked_triangulation(40, 3),
            generators::complete_bipartite(3, 4),
            generators::random_planar(62, 0.5, 9),
        ] {
            let s = encode(&g);
            let h = decode(&s).unwrap();
            assert_eq!(h.node_count(), g.node_count());
            assert_eq!(h.edge_count(), g.edge_count());
            for e in g.edges() {
                assert!(h.has_edge(e.u, e.v));
            }
        }
    }

    #[test]
    fn long_form_roundtrip() {
        let g = generators::cycle(100); // n > 62 triggers the '~' header
        let s = encode(&g);
        assert!(s.starts_with('~'));
        let h = decode(&s).unwrap();
        assert_eq!(h.node_count(), 100);
        assert_eq!(h.edge_count(), 100);
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(decode(""), Err(Graph6Error::BadHeader)));
        assert!(matches!(decode("D"), Err(Graph6Error::Truncated)));
        assert!(matches!(
            decode("B\u{7f}"),
            Err(Graph6Error::BadCharacter(_))
        ));
    }

    #[test]
    fn interop_with_planarity() {
        // serialize, deserialize, and the planarity verdict is unchanged
        for (g, planar) in [
            (generators::grid(5, 5), true),
            (generators::complete(5), false),
            (generators::k33_subdivision(1), false),
        ] {
            let h = decode(&encode(&g)).unwrap();
            // structural equality is enough; ids are regenerated
            assert_eq!(h.edge_count(), g.edge_count());
            let _ = planar;
        }
    }
}
