//! The universal `O(m log n)`-bit baseline: ship the entire graph to
//! every node.
//!
//! Works for *any* decidable graph class (here instantiated for
//! planarity): the certificate is one canonical encoding of the whole
//! graph; each node checks (a) its neighbors carry the bit-identical
//! certificate, (b) its own row in the encoded graph matches its actual
//! neighborhood, and (c) the encoded graph is in the class. With the
//! network connected, all nodes accepting forces the encoding to be a
//! supergraph of the real network that agrees on every real node's row,
//! so class membership (for subgraph-closed classes like planarity)
//! transfers. This is the baseline the paper's `O(log n)` result should
//! be compared against (experiment E10).

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::{Graph, GraphBuilder};
use dpc_runtime::bits::BitWriter;
use dpc_runtime::{NodeCtx, Payload};

/// Universal PLS instantiated for the class of planar graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalScheme;

impl UniversalScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        UniversalScheme
    }
}

fn encode_graph(g: &Graph) -> Payload {
    // canonical encoding: n, m, sorted ids, then edges as index pairs
    // (sorted lexicographically)
    let mut ids: Vec<u64> = g.ids().to_vec();
    ids.sort_unstable();
    let index_of = |id: u64| ids.binary_search(&id).unwrap() as u64;
    let mut edges: Vec<(u64, u64)> = g
        .edges()
        .iter()
        .map(|e| {
            let (a, b) = (index_of(g.id_of(e.u)), index_of(g.id_of(e.v)));
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    let mut w = BitWriter::new();
    w.write_varint(g.node_count() as u64);
    w.write_varint(g.edge_count() as u64);
    for &id in &ids {
        w.write_varint(id);
    }
    for &(a, b) in &edges {
        w.write_varint(a);
        w.write_varint(b);
    }
    Payload::from_writer(w)
}

fn decode_graph(p: &Payload) -> Option<(Vec<u64>, Graph)> {
    let mut r = p.reader();
    let n = r.read_varint().ok()?;
    let m = r.read_varint().ok()?;
    if n > 1_000_000 || m > 10_000_000 {
        return None;
    }
    let mut ids = Vec::with_capacity(n as usize);
    for _ in 0..n {
        ids.push(r.read_varint().ok()?);
    }
    // ids must be sorted and distinct (canonical form)
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        return None;
    }
    let mut b = GraphBuilder::new(n as u32);
    for _ in 0..m {
        let x = r.read_varint().ok()?;
        let y = r.read_varint().ok()?;
        if x >= n || y >= n {
            return None;
        }
        if !b.add_edge_if_absent(x as u32, y as u32).ok()? {
            return None; // duplicate edge: not canonical
        }
    }
    if r.remaining() != 0 {
        return None;
    }
    b.with_ids(ids.clone());
    Some((ids, b.build()))
}

impl ProofLabelingScheme for UniversalScheme {
    fn name(&self) -> &'static str {
        "universal"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        if !dpc_planar::lr::is_planar(g) {
            return Err(ProveError::NotInClass("planar graphs"));
        }
        let cert = encode_graph(g);
        Ok(Assignment {
            certs: vec![cert; g.node_count()],
        })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        // (a) all neighbors carry the identical certificate
        for nb in neighbors {
            if nb.bit_len != own.bit_len || nb.bytes != own.bytes {
                return false;
            }
        }
        // (b) my row matches my actual neighborhood
        let Some((ids, h)) = decode_graph(own) else {
            return false;
        };
        let Ok(me) = ids.binary_search(&ctx.id) else {
            return false;
        };
        let mut claimed: Vec<u64> = h.neighbors(me as u32).map(|w| ids[w as usize]).collect();
        claimed.sort_unstable();
        let mut actual = ctx.neighbor_ids.clone();
        actual.sort_unstable();
        if claimed != actual {
            return false;
        }
        // (c) the encoded graph is planar
        dpc_planar::lr::is_planar(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_planar() {
        for g in [
            generators::grid(4, 4),
            generators::stacked_triangulation(25, 1),
            generators::random_tree(30, 2),
        ] {
            let out = run_pls(&UniversalScheme, &g).unwrap();
            assert!(out.all_accept());
        }
    }

    #[test]
    fn declines_nonplanar() {
        assert!(UniversalScheme.prove(&generators::complete(5)).is_err());
    }

    #[test]
    fn certificate_is_linear_size() {
        let small = UniversalScheme
            .prove(&generators::stacked_triangulation(50, 3))
            .unwrap();
        let large = UniversalScheme
            .prove(&generators::stacked_triangulation(500, 3))
            .unwrap();
        // ~10x nodes => ~10x bits (linear, unlike the paper's scheme)
        assert!(large.max_bits() > 5 * small.max_bits());
    }

    #[test]
    fn soundness_replay_subgraph() {
        // certificates of the planarized graph replayed on the non-planar
        // one: some node's row no longer matches its neighborhood
        let g = generators::planted_kuratowski(15, true, 1, 2);
        let planar = {
            // remove witness edges greedily until planar (simple variant)
            let mut mask: Vec<bool> = vec![true; g.edge_count()];
            for e in 0..g.edge_count() {
                if dpc_planar::lr::is_planar(&g.edge_subgraph(|id, _| mask[id as usize])) {
                    break;
                }
                mask[e] = false;
                let sub = g.edge_subgraph(|id, _| mask[id as usize]);
                if !sub.is_connected() {
                    mask[e] = true;
                }
            }
            g.edge_subgraph(|id, _| mask[id as usize])
        };
        assert!(dpc_planar::lr::is_planar(&planar));
        let a = UniversalScheme.prove(&planar).unwrap();
        let out = run_with_assignment(&UniversalScheme, &g, &a);
        assert!(!out.all_accept());
    }

    #[test]
    fn forged_extra_edge_in_encoding_rejected() {
        // the certificate encodes a graph with an edge the network lacks
        let g = generators::path(5);
        let mut b = dpc_graph::GraphBuilder::new(5);
        for e in g.edges() {
            b.add_edge(e.u, e.v).unwrap();
        }
        b.add_edge(0, 4).unwrap(); // pretend a cycle
        let h = b.build().with_ids(g.ids().to_vec());
        let cert = encode_graph(&h);
        let a = Assignment {
            certs: vec![cert; 5],
        };
        let out = run_with_assignment(&UniversalScheme, &g, &a);
        assert!(!out.all_accept(), "nodes 0 and 4 see a phantom edge");
    }
}
