//! Determinism guard for the parallel batch engine: running the scheme
//! zoo over the small-graph generator families in parallel must produce
//! per-instance results and aggregate stats byte-identical to a
//! sequential fold, at every thread count.

use dpc_bench::families::{nonplanar_families, planar_families};
use dpc_core::batch::BatchRunner;
use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::non_planarity::NonPlanarityScheme;
use dpc_core::schemes::path_outerplanar::PathOuterplanarScheme;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_core::schemes::spanning_tree::SpanningTreeScheme;
use dpc_core::schemes::universal::UniversalScheme;
use dpc_graph::{generators, Graph};

/// ≥ 100 graphs across every family (planar and non-planar alike, so
/// batches mix proofs and prover declines).
fn family_batch() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for f in planar_families() {
        for seed in 0..12u64 {
            graphs.push((f.make)(20 + 3 * seed as u32, seed));
        }
    }
    for f in nonplanar_families() {
        for seed in 0..8u64 {
            graphs.push((f.make)(24, seed));
        }
    }
    assert!(graphs.len() >= 100, "zoo batch must cover >= 100 graphs");
    graphs
}

fn assert_parallel_matches_sequential<S>(scheme: &S, graphs: &[Graph])
where
    S: ProofLabelingScheme + Sync,
{
    let seq = BatchRunner::run_sequential(scheme, graphs.iter().cloned());
    for threads in [2usize, 4, 16] {
        let par = BatchRunner::with_threads(threads).run_slice(scheme, graphs);
        assert_eq!(
            par.results,
            seq.results,
            "{}: per-instance results diverged at {threads} threads",
            scheme.name()
        );
        assert_eq!(
            par.summary,
            seq.summary,
            "{}: aggregate stats diverged at {threads} threads",
            scheme.name()
        );
    }
}

#[test]
fn scheme_zoo_batches_are_deterministic() {
    let graphs = family_batch();
    assert_parallel_matches_sequential(&PlanarityScheme::new(), &graphs);
    assert_parallel_matches_sequential(&SpanningTreeScheme::new(), &graphs);
    assert_parallel_matches_sequential(&UniversalScheme::new(), &graphs);
    assert_parallel_matches_sequential(&NonPlanarityScheme::new(), &graphs);
}

#[test]
fn path_outerplanar_batches_are_deterministic() {
    // this scheme wants path-outerplanar inputs; give it its own family
    let graphs: Vec<Graph> = (0..100u64)
        .map(|seed| generators::random_path_outerplanar(30, 10, seed))
        .collect();
    assert_parallel_matches_sequential(&PathOuterplanarScheme::new(), &graphs);
}

#[test]
fn summary_is_a_pure_function_of_results() {
    let graphs = family_batch();
    let scheme = PlanarityScheme::new();
    let report = BatchRunner::with_threads(8).run_slice(&scheme, &graphs);
    let refolded = dpc_core::batch::BatchSummary::from_results(&report.results);
    assert_eq!(report.summary, refolded);
}
