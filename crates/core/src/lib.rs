//! Proof-labeling schemes (PLS) for the PODC 2020 paper, with the
//! framework to run and attack them.
//!
//! A proof-labeling scheme is a prover/verifier pair: a non-trustable
//! prover assigns each node an `O(log n)`-bit certificate; the verifier
//! is a 1-round distributed algorithm in which nodes exchange
//! certificates with their neighbors and accept or reject. Completeness:
//! on yes-instances the honest prover makes everyone accept. Soundness:
//! on no-instances every assignment leaves at least one rejecting node.
//!
//! Modules:
//!
//! * [`scheme`] — the [`scheme::ProofLabelingScheme`] trait, certificate
//!   assignments, prover errors;
//! * [`harness`] — run a scheme on a graph through the CONGEST simulator
//!   ([`harness::run_pls`]), including with adversarial assignments;
//! * [`batch`] — the parallel batch execution engine
//!   ([`batch::BatchRunner`]): one scheme over many graphs across worker
//!   threads, with deterministic aggregate statistics;
//! * [`adversary`] — certificate-forgery strategies for soundness tests;
//! * [`alg1`] — the paper's Algorithm 1 (path-outerplanarity check at one
//!   spine node), shared by two schemes;
//! * [`schemes`] — the schemes themselves:
//!   [`schemes::path::PathScheme`] (§2 warm-up),
//!   [`schemes::spanning_tree`] (folklore substrate),
//!   [`schemes::path_outerplanar::PathOuterplanarScheme`] (Lemma 2),
//!   [`schemes::planarity::PlanarityScheme`] (Theorem 1 — the paper's
//!   main contribution),
//!   [`schemes::non_planarity::NonPlanarityScheme`] (§2 folklore),
//!   [`schemes::universal::UniversalScheme`] (O(m log n) baseline).

#![warn(missing_docs)]

pub mod adversary;
pub mod alg1;
pub mod batch;
pub mod distributed;
pub mod harness;
pub mod scheme;
pub mod schemes;
