//! Standalone spanning-tree scheme: certifies "these certificates
//! describe a spanning tree of the network rooted at the node with the
//! agreed identifier, and `n` is the number of nodes".
//!
//! Completeness holds on every connected graph (the class is all
//! connected networks); the value of the scheme is that *forged* tree
//! data is always caught — which the paper's schemes rely on (Phase 2 of
//! Algorithm 2).

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use crate::schemes::tree_base::{build_tree_certs, check_tree, TreeCert};
use dpc_graph::Graph;
use dpc_runtime::bits::BitWriter;
use dpc_runtime::{NodeCtx, Payload};

/// Scheme wrapping the [`tree_base`](crate::schemes::tree_base)
/// component.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanningTreeScheme;

impl SpanningTreeScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        SpanningTreeScheme
    }
}

impl ProofLabelingScheme for SpanningTreeScheme {
    fn name(&self) -> &'static str {
        "spanning-tree"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        let tree = dpc_graph::traversal::bfs_spanning_tree(g, 0);
        let certs = build_tree_certs(g, &tree)
            .into_iter()
            .map(|c| {
                let mut w = BitWriter::new();
                c.encode(&mut w);
                Payload::from_writer(w)
            })
            .collect();
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        let parse = |p: &Payload| -> Option<TreeCert> {
            let mut r = p.reader();
            TreeCert::decode(&mut r).ok()
        };
        let Some(own) = parse(own) else { return false };
        let nbs: Option<Vec<TreeCert>> = neighbors.iter().map(parse).collect();
        let Some(nbs) = nbs else { return false };
        check_tree(ctx, &own, &nbs).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_on_connected_graphs() {
        for g in [
            generators::path(9),
            generators::grid(4, 6),
            generators::complete(6),
            generators::random_tree(50, 4),
        ] {
            let out = run_pls(&SpanningTreeScheme, &g).unwrap();
            assert!(out.all_accept());
            assert_eq!(out.rounds, 1);
            // O(log n) certificates: generously below 200 bits here
            assert!(out.max_cert_bits < 200, "{}", out.max_cert_bits);
        }
    }

    #[test]
    fn rejects_disconnected() {
        let g = generators::path(4).disjoint_union(&generators::path(3));
        assert_eq!(
            SpanningTreeScheme.prove(&g).unwrap_err(),
            ProveError::NotConnected
        );
    }

    #[test]
    fn shuffled_certs_rejected() {
        let g = generators::grid(4, 4);
        let mut a = SpanningTreeScheme.prove(&g).unwrap();
        a.certs.rotate_left(1);
        let out = run_with_assignment(&SpanningTreeScheme, &g, &a);
        assert!(!out.all_accept());
    }

    #[test]
    fn garbage_certs_rejected() {
        let g = generators::cycle(8);
        let a = Assignment::empty(8);
        let out = run_with_assignment(&SpanningTreeScheme, &g, &a);
        assert_eq!(
            out.reject_count(),
            8,
            "unparseable certificates reject everywhere"
        );
    }
}
