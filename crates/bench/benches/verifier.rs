//! E13/E2 verifier-side bench: the 1-round distributed verification of
//! the planarity PLS and of the baselines, through the simulator.
//!
//! The `delivery` group is the zero-copy acceptance gate: on
//! `grid(100,100)` the production executor (O(1) reference-counted
//! payload sharing, reused inbox buffers) must beat the deep-copy
//! reference executor that clones certificate bytes once per incident
//! edge. The `batch` group measures the parallel batch engine against
//! a sequential fold over the same 100-graph workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpc_core::batch::BatchRunner;
use dpc_core::harness::{run_with_assignment, run_with_assignment_deepcopy};
use dpc_core::scheme::ProofLabelingScheme;
use dpc_core::schemes::planarity::PlanarityScheme;
use dpc_core::schemes::universal::UniversalScheme;
use dpc_graph::generators;
use dpc_runtime::{baseline, run_protocol, NodeCtx, Payload, Protocol, Step};

/// Minimal broadcast protocol with a fixed payload size: `receive`
/// touches one byte per neighbor, so the measurement is dominated by
/// the simulator's delivery path (payload cloning + inbox handling) —
/// exactly the code the zero-copy refactor changed.
struct FixedBlob {
    payload: Payload,
}

impl FixedBlob {
    fn new(bytes: usize) -> Self {
        FixedBlob {
            payload: Payload::from_bytes(vec![0xA5u8; bytes], bytes * 8),
        }
    }
}

impl Protocol for FixedBlob {
    type State = u8;

    fn init(&self, _ctx: &NodeCtx) -> u8 {
        0
    }

    fn message(&self, _state: &u8, _round: usize) -> Payload {
        self.payload.clone()
    }

    fn receive(&self, state: &mut u8, _ctx: &NodeCtx, inbox: &[Payload], _round: usize) -> Step {
        for p in inbox {
            *state ^= p.as_bytes()[0];
        }
        Step::Output(true)
    }
}

fn bench_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier");
    group.sample_size(10);
    for &n in &[1024u32, 8192] {
        let g = generators::stacked_triangulation(n, 9);
        let scheme = PlanarityScheme::new();
        let a = scheme.prove(&g).unwrap();
        group.bench_with_input(BenchmarkId::new("planarity_pls", n), &g, |b, g| {
            b.iter(|| {
                let out = run_with_assignment(&scheme, std::hint::black_box(g), &a);
                assert!(out.all_accept());
                out.rounds
            })
        });
    }
    // the universal baseline re-runs a sequential planarity test per node:
    // quadratic total work, benchmarked at a small size only
    let g = generators::stacked_triangulation(128, 9);
    let uni = UniversalScheme::new();
    let a = uni.prove(&g).unwrap();
    group.bench_with_input(BenchmarkId::new("universal_pls", 128u32), &g, |b, g| {
        b.iter(|| run_with_assignment(&uni, std::hint::black_box(g), &a).rounds)
    });
    group.finish();
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery");
    group.sample_size(10);
    let g = generators::grid(100, 100);
    let scheme = PlanarityScheme::new();
    let a = scheme.prove(&g).unwrap();
    group.bench_with_input(BenchmarkId::new("zero_copy", "grid_100x100"), &g, |b, g| {
        b.iter(|| {
            let out = run_with_assignment(&scheme, std::hint::black_box(g), &a);
            assert!(out.all_accept());
            out.total_message_bits
        })
    });
    group.bench_with_input(
        BenchmarkId::new("deep_copy_baseline", "grid_100x100"),
        &g,
        |b, g| {
            b.iter(|| {
                let out = run_with_assignment_deepcopy(&scheme, std::hint::black_box(g), &a);
                assert!(out.all_accept());
                out.total_message_bits
            })
        },
    );
    // raw delivery path, scheme logic out of the way: one round of
    // fixed-size broadcasts at certificate scale (64 B ~ O(log n) certs)
    // and at universal-baseline scale (4 KiB ~ O(m log n) certs)
    for &bytes in &[64usize, 4096] {
        let proto = FixedBlob::new(bytes);
        group.bench_with_input(
            BenchmarkId::new("raw_zero_copy", format!("{bytes}B")),
            &g,
            |b, g| b.iter(|| run_protocol(&proto, std::hint::black_box(g), 1).total_message_bits),
        );
        group.bench_with_input(
            BenchmarkId::new("raw_deep_copy", format!("{bytes}B")),
            &g,
            |b, g| {
                b.iter(|| {
                    baseline::run_protocol_deepcopy(&proto, std::hint::black_box(g), 1)
                        .total_message_bits
                })
            },
        );
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    let scheme = PlanarityScheme::new();
    let graphs: Vec<_> = (0..100u64)
        .map(|s| generators::random_planar(200, 0.5, s))
        .collect();
    // single-worker run_slice so both arms borrow the same graphs —
    // no clone cost inside the timed region
    let sequential = BatchRunner::with_threads(1);
    group.bench_with_input(
        BenchmarkId::new("sequential", graphs.len()),
        &graphs,
        |b, graphs| {
            b.iter(|| {
                sequential
                    .run_slice(&scheme, graphs)
                    .summary
                    .total_message_bits
            })
        },
    );
    let runner = BatchRunner::new();
    group.bench_with_input(
        BenchmarkId::new(
            format!("parallel_{}_threads", runner.threads()),
            graphs.len(),
        ),
        &graphs,
        |b, graphs| b.iter(|| runner.run_slice(&scheme, graphs).summary.total_message_bits),
    );
    group.finish();
}

criterion_group!(benches, bench_verifier, bench_delivery, bench_batch);
criterion_main!(benches);
