//! The Section 2 warm-up scheme: certifying that the network **is a
//! path**.
//!
//! The prover orders the path `v_1 … v_n` and gives node `v_i` its rank
//! `i`, the total `n`, and the identifiers of its predecessor and
//! successor. A node checks that its neighbors are exactly its
//! predecessor/successor with ranks `i∓1` and matching back-pointers.
//! With the network connected, all nodes accepting forces the graph to
//! be the path `1..n` (see the soundness discussion in §2).

use crate::scheme::{Assignment, ProofLabelingScheme, ProveError};
use dpc_graph::{Graph, NodeId};
use dpc_runtime::bits::{BitReader, BitWriter, DecodeError};
use dpc_runtime::{NodeCtx, Payload};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathCert {
    n: u64,
    rank: u64, // 1..=n
    pred_id: Option<u64>,
    succ_id: Option<u64>,
}

impl PathCert {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.n);
        w.write_varint(self.rank);
        w.write_bool(self.pred_id.is_some());
        if let Some(p) = self.pred_id {
            w.write_varint(p);
        }
        w.write_bool(self.succ_id.is_some());
        if let Some(s) = self.succ_id {
            w.write_varint(s);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, DecodeError> {
        let n = r.read_varint()?;
        let rank = r.read_varint()?;
        let pred_id = if r.read_bool()? {
            Some(r.read_varint()?)
        } else {
            None
        };
        let succ_id = if r.read_bool()? {
            Some(r.read_varint()?)
        } else {
            None
        };
        Ok(PathCert {
            n,
            rank,
            pred_id,
            succ_id,
        })
    }
}

/// PLS for the class of path graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathScheme;

impl PathScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        PathScheme
    }
}

impl ProofLabelingScheme for PathScheme {
    fn name(&self) -> &'static str {
        "path"
    }

    fn prove(&self, g: &Graph) -> Result<Assignment, ProveError> {
        if !g.is_connected() {
            return Err(ProveError::NotConnected);
        }
        let n = g.node_count();
        // a connected graph is a path iff it has n-1 edges and max degree ≤ 2
        if g.edge_count() != n - 1 || g.max_degree() > 2 {
            return Err(ProveError::NotInClass("path graphs"));
        }
        // order from one endpoint
        let order: Vec<NodeId> = if n == 1 {
            vec![0]
        } else {
            let start = g
                .nodes()
                .find(|&v| g.degree(v) == 1)
                .expect("path endpoint");
            let mut order = vec![start];
            let mut prev = None;
            let mut cur = start;
            while order.len() < n {
                let next = g
                    .neighbors(cur)
                    .find(|&w| Some(w) != prev)
                    .expect("path continues");
                order.push(next);
                prev = Some(cur);
                cur = next;
            }
            order
        };
        let mut certs = vec![Payload::empty(); n];
        for (i, &v) in order.iter().enumerate() {
            let cert = PathCert {
                n: n as u64,
                rank: (i + 1) as u64,
                pred_id: (i > 0).then(|| g.id_of(order[i - 1])),
                succ_id: (i + 1 < n).then(|| g.id_of(order[i + 1])),
            };
            let mut w = BitWriter::new();
            cert.encode(&mut w);
            certs[v as usize] = Payload::from_writer(w);
        }
        Ok(Assignment { certs })
    }

    fn verify(&self, ctx: &NodeCtx, own: &Payload, neighbors: &[Payload]) -> bool {
        let parse = |p: &Payload| -> Option<PathCert> {
            let mut r = p.reader();
            PathCert::decode(&mut r).ok()
        };
        let Some(own) = parse(own) else { return false };
        let nbs: Option<Vec<PathCert>> = neighbors.iter().map(parse).collect();
        let Some(nbs) = nbs else { return false };
        if own.rank < 1 || own.rank > own.n {
            return false;
        }
        // expected pointers by rank
        if (own.rank == 1) != own.pred_id.is_none() {
            return false;
        }
        if (own.rank == own.n) != own.succ_id.is_none() {
            return false;
        }
        // each neighbor must be exactly the pred or the succ
        let mut seen_pred = false;
        let mut seen_succ = false;
        for (p, nb) in nbs.iter().enumerate() {
            let nid = ctx.neighbor_ids[p];
            if nb.n != own.n {
                return false;
            }
            if Some(nid) == own.pred_id && !seen_pred {
                if nb.rank + 1 != own.rank || nb.succ_id != Some(ctx.id) {
                    return false;
                }
                seen_pred = true;
            } else if Some(nid) == own.succ_id && !seen_succ {
                if nb.rank != own.rank + 1 || nb.pred_id != Some(ctx.id) {
                    return false;
                }
                seen_succ = true;
            } else {
                return false; // extra edge: not a path
            }
        }
        seen_pred == own.pred_id.is_some() && seen_succ == own.succ_id.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_pls, run_with_assignment};
    use dpc_graph::generators;

    #[test]
    fn accepts_paths() {
        for n in [1u32, 2, 3, 10, 100] {
            let g = generators::path(n);
            let out = run_pls(&PathScheme, &g).unwrap();
            assert!(out.all_accept(), "path({n})");
            assert_eq!(out.rounds, 1);
        }
    }

    #[test]
    fn prover_declines_non_paths() {
        assert!(PathScheme.prove(&generators::cycle(5)).is_err());
        assert!(PathScheme.prove(&generators::star(5)).is_err());
        assert!(PathScheme.prove(&generators::grid(2, 3)).is_err());
    }

    #[test]
    fn certs_of_path_fail_on_cycle() {
        // strongest attack: take honest certificates of the path obtained
        // by removing one cycle edge, replayed on the cycle
        let cyc = generators::cycle(8);
        let sub = cyc.edge_subgraph(|e, _| e != 0);
        // `sub` keeps the same ids, so the assignment maps over directly
        let a = PathScheme.prove(&sub).unwrap();
        let out = run_with_assignment(&PathScheme, &cyc, &a);
        assert!(
            !out.all_accept(),
            "the two endpoints of the removed edge see an extra edge"
        );
    }

    #[test]
    fn shuffled_ranks_fail() {
        let g = generators::path(9);
        let mut a = PathScheme.prove(&g).unwrap();
        a.certs.swap(2, 6);
        let out = run_with_assignment(&PathScheme, &g, &a);
        assert!(!out.all_accept());
    }

    #[test]
    fn wrong_n_fails() {
        let g = generators::path(5);
        // hand-forge certificates claiming n=6 on a 5-path: rank-5 node
        // must have a successor it does not have
        let honest = PathScheme.prove(&g).unwrap();
        let out = run_with_assignment(&PathScheme, &g, &honest);
        assert!(out.all_accept());
        let mut forged = honest.clone();
        // bump n in every certificate by re-encoding
        for (v, c) in forged.certs.iter_mut().enumerate() {
            let mut r = c.reader();
            let mut pc = PathCert::decode(&mut r).unwrap();
            pc.n = 6;
            let _ = v;
            let mut w = BitWriter::new();
            pc.encode(&mut w);
            *c = Payload::from_writer(w);
        }
        let out = run_with_assignment(&PathScheme, &g, &forged);
        assert!(
            !out.all_accept(),
            "rank-5 node claims n=6 but has no successor"
        );
    }
}
